//! Token-level determinism-hazard analyzer for the SimBricks workspace.
//!
//! Deliberately dependency-free: no `syn`, no regex crate. Rust source is
//! stripped of comments and string literals by a small state machine, then
//! scanned line-by-line with identifier-level token matching. That is enough
//! to catch the hazard classes that have actually bitten this codebase
//! (hash-order iteration, wall-clock reads, incomplete snapshots, ambient
//! randomness) while staying fast and auditable.
//!
//! Rules:
//! - **R1 unordered-iteration** — iterating a `HashMap`/`HashSet` (`for`,
//!   `.iter()`, `.drain()`, `.retain()`, `.keys()`, `.values()`, ...) in a
//!   simulation-path crate. Hash iteration order differs per process
//!   (`RandomState`), so any observable effect diverges across runs, shards,
//!   and checkpoint/restore. Waive with `// det-ok: <reason>`.
//! - **R2 wall-clock** — `Instant::now` / `SystemTime` in a simulation-path
//!   crate. Virtual time must come from the event kernel; wall time is only
//!   legitimate in runner orchestration/transport (timeouts) and benches.
//!   Waive with `// det-ok: <reason>`.
//! - **R3 snapshot-coverage** — a field of a type with `impl Snapshot for T`
//!   that is never mentioned in the impl body. Unreferenced state silently
//!   escapes checkpoints and breaks restore bit-identity. Waive per field
//!   with `// snap-skip: <reason>`.
//! - **R4 nondeterministic primitives** — `thread_rng`, `RandomState`,
//!   `from_entropy`, or a float expression feeding a `SimTime::from_*`
//!   constructor (floats make timestamps platform/optimization sensitive).
//!   Waive with `// det-ok: <reason>`.
//! - **R5 io-panic** — `.unwrap()` / `.expect(...)` / `panic!(...)` in the
//!   distributed-orchestration I/O files (`runner/src/dist.rs`, `proxy.rs`,
//!   `shm.rs`). A panic on an I/O path takes down the orchestrator or a
//!   worker instead of surfacing a typed `DistError` the supervisor can
//!   classify and recover from. Waive with `// io-ok: <reason>`.

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose code executes inside the simulated world. R1/R2/R4 apply
/// here; runner (orchestration, transports, timeouts) and bench (wall-clock
/// measurement harness) are exempt by design.
pub const SIM_PATH_CRATES: &[&str] = &[
    "base", "core", "eth", "pcie", "proto", "netstack", "netsim", "nicsim", "nvmesim", "hostsim",
    "apps", "scenario", "replay",
];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_keys",
    "into_values",
];

/// Orchestration I/O files R5 applies to: the distributed-run control plane,
/// where an un-typed panic means a hung fleet or an orphaned worker instead
/// of a classified, recoverable `DistError`-shaped failure.
pub const IO_PANIC_FILES: &[&str] = &[
    "runner/src/dist.rs",
    "runner/src/proxy.rs",
    "runner/src/shm.rs",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    R1UnorderedIter,
    R2WallClock,
    R3SnapshotCoverage,
    R4NondetPrimitive,
    R5IoPanic,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1UnorderedIter => "R1",
            Rule::R2WallClock => "R2",
            Rule::R3SnapshotCoverage => "R3",
            Rule::R4NondetPrimitive => "R4",
            Rule::R5IoPanic => "R5",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Rule::R1UnorderedIter => "unordered-iteration",
            Rule::R2WallClock => "wall-clock",
            Rule::R3SnapshotCoverage => "snapshot-coverage",
            Rule::R4NondetPrimitive => "nondet-primitive",
            Rule::R5IoPanic => "io-panic",
        }
    }

    pub fn explain(self) -> &'static str {
        match self {
            Rule::R1UnorderedIter => {
                "R1 unordered-iteration\n\
                 \n\
                 Iterating a HashMap/HashSet in a simulation-path crate.\n\
                 std hash maps seed a per-instance RandomState, so iteration\n\
                 order differs between processes and between runs. Any\n\
                 observable effect of that order (event emission, snapshot\n\
                 bytes, eviction choice, timer firing) diverges across the\n\
                 sequential/sharded/distributed executors and across\n\
                 checkpoint/restore.\n\
                 \n\
                 Fix: use BTreeMap/BTreeSet (preferred: order becomes\n\
                 structural), or sort before iterating.\n\
                 Waive: `// det-ok: <reason>` on the line or the line above."
            }
            Rule::R2WallClock => {
                "R2 wall-clock\n\
                 \n\
                 Instant::now/SystemTime in a simulation-path crate. All\n\
                 simulated behavior must be a function of virtual time\n\
                 (SimTime from the event kernel); reading the host clock\n\
                 makes results depend on machine load. Wall time is\n\
                 legitimate only in runner orchestration/transport\n\
                 (connection timeouts), benches, and #[cfg(test)] code.\n\
                 \n\
                 Fix: thread virtual time through; or move the code to the\n\
                 runner. Waive: `// det-ok: <reason>`."
            }
            Rule::R3SnapshotCoverage => {
                "R3 snapshot-coverage\n\
                 \n\
                 A field of a type implementing Snapshot is never mentioned\n\
                 in its snapshot()/restore() bodies. State that escapes the\n\
                 checkpoint either breaks restore bit-identity or silently\n\
                 resurrects stale values. The check is name-based: a field\n\
                 is covered if its identifier appears anywhere in the impl\n\
                 block.\n\
                 \n\
                 Fix: encode the field (canonical order), or mark it\n\
                 reconstructed-by-design.\n\
                 Waive: `// snap-skip: <reason>` on the field declaration."
            }
            Rule::R4NondetPrimitive => {
                "R4 nondet-primitive\n\
                 \n\
                 thread_rng/from_entropy/RandomState in a simulation-path\n\
                 crate, or a float (f32/f64) expression feeding a\n\
                 SimTime::from_* constructor. Ambient randomness is seeded\n\
                 from the OS; float rounding differs across platforms and\n\
                 optimization levels — both poison virtual timestamps.\n\
                 \n\
                 Fix: use the seeded deterministic RNG (base::kernel LCG)\n\
                 and integer arithmetic for time.\n\
                 Waive: `// det-ok: <reason>`."
            }
            Rule::R5IoPanic => {
                "R5 io-panic\n\
                 \n\
                 .unwrap()/.expect(...)/panic!(...) in the distributed\n\
                 orchestration I/O files (runner/src/dist.rs, proxy.rs,\n\
                 shm.rs). Sockets close, peers die, and shm files vanish in\n\
                 normal operation; a panic on those paths kills the\n\
                 orchestrator or strands a worker instead of producing a\n\
                 typed DistError the supervision loop can classify, retry,\n\
                 and report. #[cfg(test)] code is exempt.\n\
                 \n\
                 Fix: return io::Result/DistError and let the supervisor\n\
                 decide; reserve panics for API-contract violations.\n\
                 Waive: `// io-ok: <reason>` on the line or the line above."
            }
        }
    }

    pub fn all() -> &'static [Rule] {
        &[
            Rule::R1UnorderedIter,
            Rule::R2WallClock,
            Rule::R3SnapshotCoverage,
            Rule::R4NondetPrimitive,
            Rule::R5IoPanic,
        ]
    }

    pub fn from_id(s: &str) -> Option<Rule> {
        Rule::all()
            .iter()
            .copied()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name() == s)
    }
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// `Some(reason)` when an inline waiver covers this finding.
    pub waiver: Option<String>,
}

impl Finding {
    pub fn waived(&self) -> bool {
        self.waiver.is_some()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}/{}] {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.rule.name(),
            self.message
        )?;
        if let Some(w) = &self.waiver {
            write!(f, " (waived: {w})")?;
        }
        Ok(())
    }
}

/// One source line after comment/string stripping.
#[derive(Debug, Default, Clone)]
struct Line {
    /// Code with comments removed and string/char literal *contents* blanked.
    code: String,
    /// Concatenated comment text on this line (for waiver detection).
    comment: String,
    /// Inside a `#[cfg(test)]` / `#[test]` item body.
    in_test: bool,
}

/// Strip comments and string literals, keeping comment text aside.
/// Handles line comments, nested block comments, string/char/byte literals,
/// raw strings (`r"…"`, `r#"…"#`), and distinguishes lifetimes from char
/// literals.
fn strip(src: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut lines = vec![Line::default()];
    let mut st = St::Code;
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            lines.push(Line::default());
            i += 1;
            continue;
        }
        let cur = lines.last_mut().unwrap();
        match st {
            St::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::LineComment;
                    i += 2;
                    continue;
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    st = St::Str;
                    cur.code.push('"');
                    i += 1;
                    continue;
                }
                if c == b'r' && !prev_is_ident(&cur.code) {
                    // r"…" / r#"…"# raw strings (also br"…").
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        st = St::RawStr(hashes);
                        cur.code.push('"');
                        i = j + 1;
                        continue;
                    }
                }
                if c == b'\'' {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_char = match b.get(i + 1) {
                        Some(b'\\') => true,
                        Some(_) => b.get(i + 2) == Some(&b'\''),
                        None => false,
                    };
                    if is_char {
                        st = St::Char;
                        cur.code.push('\'');
                        i += 1;
                        continue;
                    }
                }
                cur.code.push(c as char);
                i += 1;
            }
            St::LineComment => {
                cur.comment.push(c as char);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 { St::Code } else { St::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    cur.comment.push(c as char);
                    i += 1;
                }
            }
            St::Str => {
                if c == b'\\' {
                    i += 2;
                } else if c == b'"' {
                    st = St::Code;
                    cur.code.push('"');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && b.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        cur.code.push('"');
                        i = j;
                        continue;
                    }
                }
                i += 1;
            }
            St::Char => {
                if c == b'\\' {
                    i += 2;
                } else if c == b'\'' {
                    st = St::Code;
                    cur.code.push('\'');
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    mark_test_regions(&mut lines);
    lines
}

fn prev_is_ident(code: &str) -> bool {
    code.chars().next_back().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Mark lines inside `#[cfg(test)]` / `#[test]` item bodies: from the
/// attribute, find the item's opening brace and skip to its match.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.clone();
        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            // Find the first `{` at or after this line, then its match.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            'outer: while j < lines.len() {
                for ch in lines[j].code.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        // `#[cfg(test)] use …;` or a `;`-terminated item
                        // before any brace: nothing to skip.
                        ';' if !opened => break 'outer,
                        _ => {}
                    }
                }
                lines[j].in_test = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Split a code line into identifier and single-char punctuation tokens.
fn tokens(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in code.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if !c.is_whitespace() {
                out.push(c.to_string());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn waiver_on(lines: &[Line], idx: usize, tag: &str) -> Option<String> {
    for j in [Some(idx), idx.checked_sub(1)].into_iter().flatten() {
        if let Some(pos) = lines[j].comment.find(tag) {
            let reason = lines[j].comment[pos + tag.len()..].trim().trim_start_matches(':').trim();
            return Some(if reason.is_empty() { "(no reason given)".into() } else { reason.into() });
        }
    }
    None
}

/// Which crate (directory under `crates/`) a path belongs to, if any.
/// Paths inside a `fixtures` directory are rule playgrounds: classified as
/// no-crate so the full rule set applies regardless of where they live.
fn crate_of(path: &Path) -> Option<String> {
    let mut comps = path.components().map(|c| c.as_os_str().to_string_lossy().into_owned());
    if path.components().any(|c| c.as_os_str() == "fixtures") {
        return None;
    }
    while let Some(c) = comps.next() {
        if c == "crates" {
            return comps.next();
        }
    }
    None
}

/// Scan one file's source. `path` is used for crate classification and
/// reporting only. Files outside `crates/` (e.g. fixture dirs) get the full
/// rule set.
pub fn scan_source(path: &Path, src: &str) -> Vec<Finding> {
    let krate = crate_of(path);
    let sim_path = match &krate {
        Some(k) => SIM_PATH_CRATES.contains(&k.as_str()),
        None => true,
    };
    let lines = strip(src);
    let mut out = Vec::new();
    if sim_path {
        r1_unordered_iter(path, &lines, &mut out);
        r2_wall_clock(path, &lines, &mut out);
        r4_nondet(path, &lines, &mut out);
    }
    r3_snapshot_coverage(path, &lines, &mut out);
    if is_io_panic_file(path) {
        r5_io_panic(path, &lines, &mut out);
    }
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// Whether R5 applies: the path ends in one of [`IO_PANIC_FILES`] (compared
/// with `/` separators regardless of platform).
fn is_io_panic_file(path: &Path) -> bool {
    let p: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    IO_PANIC_FILES.iter().any(|f| {
        let suffix: Vec<&str> = f.split('/').collect();
        p.len() >= suffix.len() && p[p.len() - suffix.len()..] == suffix[..]
    })
}

fn r5_io_panic(path: &Path, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let toks = tokens(&l.code);
        let mut what: Option<&str> = None;
        for w in toks.windows(3) {
            if w[0] == "." && w[2] == "(" && (w[1] == "unwrap" || w[1] == "expect") {
                what = Some(if w[1] == "unwrap" { ".unwrap()" } else { ".expect(...)" });
                break;
            }
            if w[0] == "panic" && w[1] == "!" && w[2] == "(" {
                what = Some("panic!(...)");
                break;
            }
        }
        if let Some(what) = what {
            out.push(Finding {
                rule: Rule::R5IoPanic,
                file: path.to_path_buf(),
                line: idx + 1,
                message: format!(
                    "`{what}` on a distributed-orchestration I/O path; return a typed error \
                     the supervisor can classify and recover from"
                ),
                waiver: waiver_on(lines, idx, "io-ok"),
            });
        }
    }
}

fn r1_unordered_iter(path: &Path, lines: &[Line], out: &mut Vec<Finding>) {
    // Pass A: identifiers declared with a hash-table type.
    let mut hash_idents: Vec<String> = Vec::new();
    for l in lines.iter().filter(|l| !l.in_test) {
        let toks = tokens(&l.code);
        for (i, t) in toks.iter().enumerate() {
            if t != "HashMap" && t != "HashSet" {
                continue;
            }
            // `name: HashMap<…>` (field or typed let) — identifier before `:`.
            // Walk back over a path prefix (`std :: collections ::`).
            let mut j = i;
            while j >= 3 && toks[j - 1] == ":" && toks[j - 2] == ":" && is_ident(&toks[j - 3]) {
                j -= 3;
            }
            if j >= 2 && toks[j - 1] == ":" && is_ident(&toks[j - 2]) {
                push_unique(&mut hash_idents, &toks[j - 2]);
                continue;
            }
            // `let [mut] name = HashMap::new()` — identifier before `=`.
            if j >= 2 && toks[j - 1] == "=" && is_ident(&toks[j - 2]) {
                push_unique(&mut hash_idents, &toks[j - 2]);
            }
        }
    }
    // Pass B: flag iteration over those identifiers.
    for (idx, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let toks = tokens(&l.code);
        for name in &hash_idents {
            let mut hit: Option<String> = None;
            for w in toks.windows(4) {
                if &w[0] == name && w[1] == "." && ITER_METHODS.contains(&w[2].as_str()) && w[3] == "(" {
                    hit = Some(format!("`{}.{}()` iterates a hash table", name, w[2]));
                    break;
                }
            }
            if hit.is_none() {
                if let Some(fi) = toks.iter().position(|t| t == "for") {
                    if let Some(ii) = toks[fi..].iter().position(|t| t == "in") {
                        if toks[fi + ii..].iter().any(|t| t == name) {
                            hit = Some(format!("`for … in {name}` iterates a hash table"));
                        }
                    }
                }
            }
            if let Some(msg) = hit {
                out.push(Finding {
                    rule: Rule::R1UnorderedIter,
                    file: path.to_path_buf(),
                    line: idx + 1,
                    message: format!(
                        "{msg}; iteration order is per-process random — use BTreeMap/BTreeSet or sort first"
                    ),
                    waiver: waiver_on(lines, idx, "det-ok"),
                });
                break;
            }
        }
    }
}

fn r2_wall_clock(path: &Path, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let toks = tokens(&l.code);
        let instant_now = toks
            .windows(4)
            .any(|w| w[0] == "Instant" && w[1] == ":" && w[2] == ":" && w[3] == "now");
        let systime = toks.iter().any(|t| t == "SystemTime");
        if instant_now || systime {
            let what = if instant_now { "Instant::now" } else { "SystemTime" };
            out.push(Finding {
                rule: Rule::R2WallClock,
                file: path.to_path_buf(),
                line: idx + 1,
                message: format!(
                    "`{what}` reads the host clock in a simulation-path crate; use virtual time (SimTime)"
                ),
                waiver: waiver_on(lines, idx, "det-ok"),
            });
        }
    }
}

fn r4_nondet(path: &Path, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let toks = tokens(&l.code);
        let mut msg = None;
        for bad in ["thread_rng", "from_entropy", "RandomState"] {
            if toks.iter().any(|t| t == bad) {
                msg = Some(format!("`{bad}` is OS-seeded ambient randomness; use the seeded simulation RNG"));
                break;
            }
        }
        if msg.is_none() {
            let has_time_ctor = l.code.contains("SimTime::from_") || l.code.contains("TimePs::from_");
            // The float cast often sits on the constructor's continuation
            // line; look one line ahead as well.
            let float_on = |i: usize| {
                let Some(l) = lines.get(i) else { return false };
                let toks = tokens(&l.code);
                toks.iter().any(|t| t == "f32" || t == "f64")
                    // Float literals: `1000.0`, `17.5` → tokens [int, ., int].
                    || toks.windows(3).any(|w| {
                        w[0].chars().all(|c| c.is_ascii_digit())
                            && w[1] == "."
                            && w[2].chars().next().is_some_and(|c| c.is_ascii_digit())
                    })
            };
            // Only chase the continuation line when the constructor call is
            // still open (unbalanced parens) — otherwise a float on the next
            // line belongs to an unrelated expression.
            let unclosed = l.code.matches('(').count() > l.code.matches(')').count();
            let has_float = float_on(idx) || (unclosed && float_on(idx + 1));
            if has_time_ctor && has_float {
                msg = Some(
                    "float expression feeds a virtual-time constructor; float rounding is \
                     platform/optimization sensitive — use integer arithmetic"
                        .into(),
                );
            }
        }
        if let Some(message) = msg {
            out.push(Finding {
                rule: Rule::R4NondetPrimitive,
                file: path.to_path_buf(),
                line: idx + 1,
                message,
                waiver: waiver_on(lines, idx, "det-ok"),
            });
        }
    }
}

fn r3_snapshot_coverage(path: &Path, lines: &[Line], out: &mut Vec<Finding>) {
    // Find `impl Snapshot for T` sites (possibly `impl<…> Snapshot for T<…>`).
    let mut impls: Vec<(String, usize)> = Vec::new(); // (type name, line idx)
    for (idx, l) in lines.iter().enumerate() {
        let toks = tokens(&l.code);
        if !toks.iter().any(|t| t == "impl") {
            continue;
        }
        for w in 0..toks.len() {
            if toks[w] == "Snapshot"
                && w + 2 < toks.len()
                && toks[w + 1] == "for"
                && is_ident(&toks[w + 2])
            {
                impls.push((toks[w + 2].clone(), idx));
            }
        }
    }
    // Free/inherent functions defined in this file, for one-hop coverage:
    // a field is also covered when the impl body calls a same-file helper
    // whose body references it (e.g. snapshot() delegating to to_wire()).
    let mut fn_defs: Vec<(String, usize)> = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        let toks = tokens(&l.code);
        for w in toks.windows(2) {
            if w[0] == "fn" && is_ident(&w[1]) {
                fn_defs.push((w[1].clone(), idx));
            }
        }
    }
    for (ty, impl_line) in impls {
        let Some(fields) = struct_fields(lines, &ty) else {
            continue; // struct defined elsewhere (or tuple struct): can't check
        };
        let Some(mut body_idents) = brace_block_idents(lines, impl_line) else {
            continue;
        };
        // One hop through same-file helpers (no recursion): only calls
        // anchored to this type (`self.helper(…)`, `Ty::helper(…)`,
        // `Self::helper(…)`) count — a bare name match would leak coverage
        // through unrelated types' constructors in the same file.
        let calls = self_call_names(lines, impl_line, &ty).unwrap_or_default();
        for (name, fline) in &fn_defs {
            if name == "snapshot" || name == "restore" || !calls.contains(name) {
                continue;
            }
            if let Some(helper) = brace_block_idents(lines, *fline) {
                for id in helper {
                    push_unique(&mut body_idents, &id);
                }
            }
        }
        for (field, fline) in fields {
            if body_idents.contains(&field) {
                continue;
            }
            out.push(Finding {
                rule: Rule::R3SnapshotCoverage,
                file: path.to_path_buf(),
                line: fline + 1,
                message: format!(
                    "field `{ty}.{field}` is never referenced in its Snapshot impl \
                     (line {}); unsnapshotted state breaks restore bit-identity",
                    impl_line + 1
                ),
                waiver: waiver_on(lines, fline, "snap-skip"),
            });
        }
    }
}

/// Collect `(field_name, line_idx)` for `struct T { … }` in this file.
/// Returns None for tuple/unit structs or if the struct is not found.
fn struct_fields(lines: &[Line], ty: &str) -> Option<Vec<(String, usize)>> {
    let mut start = None;
    for (idx, l) in lines.iter().enumerate() {
        let toks = tokens(&l.code);
        for w in toks.windows(2) {
            if w[0] == "struct" && w[1] == *ty {
                start = Some(idx);
                break;
            }
        }
        if start.is_some() {
            break;
        }
    }
    let start = start?;
    // Walk from the struct keyword to its `{` (skip `;`/`(` forms), then
    // collect `name :` patterns at brace depth 1.
    let mut depth = 0i32;
    let mut opened = false;
    let mut fields = Vec::new();
    for (idx, l) in lines.iter().enumerate().skip(start) {
        let toks = tokens(&l.code);
        let mut k = 0;
        while k < toks.len() {
            let t = &toks[k];
            match t.as_str() {
                "{" => {
                    depth += 1;
                    opened = true;
                }
                "}" => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some(fields);
                    }
                }
                ";" | "(" if !opened => return None, // tuple/unit struct
                _ => {
                    if opened
                        && depth == 1
                        && is_ident(t)
                        && t != "pub"
                        && t != "crate"
                        && toks.get(k + 1).map(String::as_str) == Some(":")
                        && toks.get(k + 2).map(String::as_str) != Some(":")
                        // `name :` at the start of a field decl: previous
                        // token is a separator, not part of a type path.
                        && matches!(
                            k.checked_sub(1).map(|p| toks[p].as_str()),
                            None | Some("{") | Some(",") | Some(")") | Some("pub") | Some("]")
                        )
                    {
                        fields.push((t.clone(), idx));
                    }
                }
            }
            k += 1;
        }
    }
    Some(fields)
}

/// Method/associated-fn names invoked on this type inside the brace block
/// opening at/after `start`: `self.name(`, `Ty::name(`, `Self::name(`.
fn self_call_names(lines: &[Line], start: usize, ty: &str) -> Option<Vec<String>> {
    let mut depth = 0i32;
    let mut opened = false;
    let mut names = Vec::new();
    for l in lines.iter().skip(start) {
        let toks = tokens(&l.code);
        for w in toks.windows(4) {
            if w[0] == "self" && w[1] == "." && is_ident(&w[2]) && w[3] == "(" {
                push_unique(&mut names, &w[2]);
            }
        }
        for w in toks.windows(5) {
            if (w[0] == *ty || w[0] == "Self")
                && w[1] == ":"
                && w[2] == ":"
                && is_ident(&w[3])
                && w[4] == "("
            {
                push_unique(&mut names, &w[3]);
            }
        }
        for t in toks {
            match t.as_str() {
                "{" => {
                    depth += 1;
                    opened = true;
                }
                "}" => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some(names);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// All identifier tokens inside the brace block opening at/after `start`.
fn brace_block_idents(lines: &[Line], start: usize) -> Option<Vec<String>> {
    let mut depth = 0i32;
    let mut opened = false;
    let mut idents = Vec::new();
    for l in lines.iter().skip(start) {
        for t in tokens(&l.code) {
            match t.as_str() {
                "{" => {
                    depth += 1;
                    opened = true;
                }
                "}" => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some(idents);
                    }
                }
                _ => {
                    if opened && is_ident(&t) {
                        push_unique(&mut idents, &t);
                    }
                }
            }
        }
    }
    None
}

fn is_ident(t: &str) -> bool {
    t.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// Recursively scan every `.rs` file under `root`, skipping `target/`,
/// fixture directories, and integration-test trees (`tests/` directories are
/// host-side test code, exempt like `#[cfg(test)]`).
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(&f)?;
        let rel = f.strip_prefix(root).unwrap_or(&f).to_path_buf();
        // Report paths relative to the scan root when possible, but classify
        // by the absolute path (so `crates/<name>` is still visible).
        let mut findings = scan_source(&f, &src);
        for fi in &mut findings {
            fi.file = rel.clone();
        }
        out.append(&mut findings);
    }
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "tests" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render findings as a JSON array (hand-rolled; no serde in this crate).
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut o = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => o.push_str("\\\""),
                '\\' => o.push_str("\\\\"),
                '\n' => o.push_str("\\n"),
                c if (c as u32) < 0x20 => o.push_str(&format!("\\u{:04x}", c as u32)),
                c => o.push(c),
            }
        }
        o
    }
    let mut s = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"rule\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \"waived\": {}, \"message\": \"{}\"{}}}",
            f.rule.id(),
            f.rule.name(),
            esc(&f.file.display().to_string()),
            f.line,
            f.waived(),
            esc(&f.message),
            f.waiver
                .as_ref()
                .map(|w| format!(", \"waiver\": \"{}\"", esc(w)))
                .unwrap_or_default(),
        ));
        s.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines_of(src: &str) -> Vec<Line> {
        strip(src)
    }

    #[test]
    fn strip_removes_comments_and_strings() {
        let l = lines_of("let x = \"HashMap in a string\"; // HashMap comment");
        assert!(!l[0].code.contains("HashMap"));
        assert!(l[0].comment.contains("HashMap comment"));
    }

    #[test]
    fn strip_handles_nested_block_comments_and_raw_strings() {
        let src = "/* outer /* inner */ still comment */ let y = r#\"HashMap \"quoted\"\"#;";
        let l = lines_of(src);
        assert!(!l[0].code.contains("HashMap"));
        assert!(l[0].code.contains("let y"));
    }

    #[test]
    fn strip_distinguishes_lifetimes_from_char_literals() {
        let l = lines_of("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(l[0].code.contains("'a str"));
        // Char literal contents blanked, quotes kept.
        assert!(l[0].code.contains("''"));
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "struct S;\n#[cfg(test)]\nmod tests {\n    fn f() { x.drain(); }\n}\nfn g() {}\n";
        let l = lines_of(src);
        assert!(!l[0].in_test);
        assert!(l[2].in_test && l[3].in_test && l[4].in_test);
        assert!(!l[5].in_test);
    }

    #[test]
    fn r1_fires_on_hash_iteration_and_respects_waiver() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &mut S) {\n\
                   for (k, v) in s.m.iter() { let _ = (k, v); }\n\
                   // det-ok: order folded through a commutative sum\n\
                   s.m.retain(|_, v| *v > 0);\n\
                   }\n";
        let f = scan_source(Path::new("crates/base/src/x.rs"), src);
        let r1: Vec<_> = f.iter().filter(|f| f.rule == Rule::R1UnorderedIter).collect();
        assert_eq!(r1.len(), 2);
        assert!(!r1[0].waived() && r1[0].line == 3);
        assert!(r1[1].waived() && r1[1].line == 5);
    }

    #[test]
    fn r1_ignores_non_iterating_use_and_btreemap() {
        let src = "struct S { seen: HashSet<u64>, m: BTreeMap<u32, u32> }\n\
                   fn f(s: &mut S) {\n\
                   s.seen.insert(3); s.seen.contains(&3);\n\
                   for (k, _) in s.m.iter() { let _ = k; }\n\
                   }\n";
        let f = scan_source(Path::new("crates/base/src/x.rs"), src);
        assert!(f.iter().all(|f| f.rule != Rule::R1UnorderedIter));
    }

    #[test]
    fn r2_fires_outside_runner_only() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let sim = scan_source(Path::new("crates/base/src/x.rs"), src);
        assert!(sim.iter().any(|f| f.rule == Rule::R2WallClock));
        let runner = scan_source(Path::new("crates/runner/src/x.rs"), src);
        assert!(runner.iter().all(|f| f.rule != Rule::R2WallClock));
    }

    #[test]
    fn r3_flags_missing_field_and_respects_snap_skip() {
        let src = "struct S {\n\
                   a: u32,\n\
                   b: u32,\n\
                   // snap-skip: rebuilt from config on restore\n\
                   c: u32,\n\
                   }\n\
                   impl Snapshot for S {\n\
                   fn snapshot(&self, w: &mut W) { w.u32(self.a); }\n\
                   fn restore(&mut self, r: &mut R) { self.a = r.u32(); }\n\
                   }\n";
        let f = scan_source(Path::new("crates/base/src/x.rs"), src);
        let r3: Vec<_> = f.iter().filter(|f| f.rule == Rule::R3SnapshotCoverage).collect();
        assert_eq!(r3.len(), 2, "{r3:?}");
        assert!(r3.iter().any(|f| f.line == 3 && !f.waived()), "b unwaived");
        assert!(r3.iter().any(|f| f.line == 5 && f.waived()), "c waived");
    }

    #[test]
    fn r3_covers_fields_reached_through_same_type_helpers_only() {
        let src = "struct S { a: u32, b: u32 }\n\
                   impl S {\n\
                   fn to_wire(&self) -> u32 { self.a + self.b }\n\
                   }\n\
                   struct T { c: u32 }\n\
                   impl T {\n\
                   fn new(c: u32) -> T { T { c } }\n\
                   }\n\
                   impl Snapshot for S {\n\
                   fn snapshot(&self, w: &mut W) { w.u32(self.to_wire()); }\n\
                   fn restore(&mut self, r: &mut R) { let _ = r; }\n\
                   }\n\
                   impl Snapshot for T {\n\
                   fn snapshot(&self, w: &mut W) { let _ = (w, new); }\n\
                   fn restore(&mut self, r: &mut R) { let _ = r; }\n\
                   }\n";
        let f = scan_source(Path::new("crates/base/src/x.rs"), src);
        let r3: Vec<_> = f.iter().filter(|f| f.rule == Rule::R3SnapshotCoverage).collect();
        // S.a/S.b covered via self.to_wire(); T.c is NOT covered by the
        // bare `new` mention (never called as T::new/self.new).
        assert_eq!(r3.len(), 1, "{r3:?}");
        assert!(r3[0].message.contains("T.c"));
    }

    #[test]
    fn r4_fires_on_ambient_rng_and_float_time() {
        let src = "fn f() { let r = thread_rng(); }\n\
                   fn g(x: f64) -> SimTime { SimTime::from_ns((x * 2.0) as u64) }\n";
        let f = scan_source(Path::new("crates/base/src/x.rs"), src);
        let r4: Vec<_> = f.iter().filter(|f| f.rule == Rule::R4NondetPrimitive).collect();
        assert_eq!(r4.len(), 2, "{r4:?}");
    }

    #[test]
    fn r5_fires_only_in_io_files_and_respects_waiver() {
        let src = "fn f(s: TcpStream) {\n\
                   let n = s.read(&mut b).unwrap();\n\
                   // io-ok: API contract, not an I/O failure\n\
                   let e = exp.take().expect(\"init() must run first\");\n\
                   if n == 0 { panic!(\"eof\"); }\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { x.unwrap(); }\n\
                   }\n";
        let f = scan_source(Path::new("crates/runner/src/dist.rs"), src);
        let r5: Vec<_> = f.iter().filter(|f| f.rule == Rule::R5IoPanic).collect();
        assert_eq!(r5.len(), 3, "{r5:?}");
        assert!(!r5[0].waived() && r5[0].line == 2, "unwrap flagged");
        assert!(r5[1].waived() && r5[1].line == 4, "waived expect");
        assert!(!r5[2].waived() && r5[2].line == 5, "panic! flagged");
        // Same source in a non-I/O runner file: R5 does not apply.
        let elsewhere = scan_source(Path::new("crates/runner/src/experiment.rs"), src);
        assert!(elsewhere.iter().all(|f| f.rule != Rule::R5IoPanic));
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let f = vec![Finding {
            rule: Rule::R1UnorderedIter,
            file: PathBuf::from("a\"b.rs"),
            line: 7,
            message: "x \"y\"".into(),
            waiver: None,
        }];
        let j = to_json(&f);
        assert!(j.contains("\\\"y\\\""));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }
}
