//! CLI entry point: `cargo run -p simcheck [--] [DIR] [--json] [--explain RULE]`
//!
//! Scans the workspace `crates/` tree (or DIR when given) and exits nonzero
//! if any unwaived determinism-hazard finding remains — this is the blocking
//! CI gate.

use std::path::PathBuf;
use std::process::ExitCode;

use simcheck::{scan_tree, to_json, Rule};

fn usage() -> &'static str {
    "usage: simcheck [DIR] [--json] [--explain RULE]\n\
     \n\
     Scans DIR (default: the workspace root's crates/ tree) for determinism\n\
     hazards and exits 1 if any unwaived finding remains.\n\
     \n\
     options:\n\
       --json           machine-readable findings on stdout\n\
       --explain RULE   print the rationale for a rule (R1..R5) and exit\n\
       --help           this text\n\
     \n\
     rules: R1 unordered-iteration, R2 wall-clock, R3 snapshot-coverage,\n\
            R4 nondet-primitive, R5 io-panic\n\
     waivers: `// det-ok: <reason>` (R1/R2/R4), `// snap-skip: <reason>` (R3),\n\
              `// io-ok: <reason>` (R5)"
}

fn main() -> ExitCode {
    let mut json = false;
    let mut dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--explain" => {
                let Some(id) = args.next() else {
                    eprintln!("--explain needs a rule id (R1..R5)");
                    return ExitCode::from(2);
                };
                let Some(rule) = Rule::from_id(&id) else {
                    eprintln!("unknown rule `{id}`; known: R1, R2, R3, R4, R5");
                    return ExitCode::from(2);
                };
                println!("{}", rule.explain());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--" => {}
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = dir.unwrap_or_else(|| {
        // Default: the workspace's crates/ tree. Works both from a checkout
        // root (`cargo run -p simcheck`) and from anywhere via the
        // compile-time manifest location.
        let cwd_crates = PathBuf::from("crates");
        if cwd_crates.is_dir() {
            cwd_crates
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().map(PathBuf::from).unwrap_or(cwd_crates)
        }
    });

    let findings = match scan_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simcheck: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    let unwaived = findings.iter().filter(|f| !f.waived()).count();
    let waived = findings.len() - unwaived;
    if !json {
        println!(
            "simcheck: {} finding(s), {} waived, {} blocking",
            findings.len(),
            waived,
            unwaived
        );
    }
    if unwaived > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
