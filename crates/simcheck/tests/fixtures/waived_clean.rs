//! Same hazards as the bad_* fixtures, each carrying a waiver — simcheck
//! must report them as waived (non-blocking).
//! Not compiled — scanned by simcheck's integration tests.

use std::collections::HashMap;

struct Counters {
    hits: HashMap<u32, u64>,
}

fn total(c: &Counters) -> u64 {
    let mut sum = 0;
    // det-ok: summation is commutative; order cannot be observed
    for v in c.hits.values() {
        sum += v;
    }
    sum
}

fn pace() -> std::time::Instant {
    std::time::Instant::now() // det-ok: emulation pacing, never in sim mode
}

struct Cache {
    entries: u32,
    // snap-skip: rebuilt lazily from the backing store after restore
    warm_index: u32,
}

impl Snapshot for Cache {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.u32(self.entries);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.entries = r.u32()?;
        Ok(())
    }
}
