//! Known-bad: wall-clock reads in simulated code (R2).
//! Not compiled — scanned by simcheck's integration tests.

use std::time::{Instant, SystemTime};

fn simulate_step() -> u64 {
    // Host clock leaking into simulated behavior.
    let t0 = Instant::now();
    step();
    t0.elapsed().as_nanos() as u64
}

fn seed_from_epoch() -> u64 {
    // SystemTime is even worse: not monotonic.
    SystemTime::now().elapsed().unwrap().as_nanos() as u64
}

fn step() {}

#[cfg(test)]
mod tests {
    // Exempt: wall-clock in test code is fine (timeouts etc.).
    #[test]
    fn timing_guard() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 1);
    }
}
