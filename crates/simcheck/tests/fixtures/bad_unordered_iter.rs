//! Known-bad: every classic hash-iteration shape R1 must catch.
//! Not compiled — scanned by simcheck's integration tests.

use std::collections::{HashMap, HashSet};

struct Router {
    routes: HashMap<u32, u32>,
    peers: HashSet<u64>,
}

fn broadcast(r: &mut Router) {
    // for-loop over a hash map: emission order is per-process random.
    for (dst, hop) in r.routes.iter() {
        send(*dst, *hop);
    }
    // drain: removal order is random too.
    for p in r.peers.drain() {
        drop_peer(p);
    }
    // retain with an effectful closure observes visit order.
    r.routes.retain(|k, _| expensive_check(*k));
    // keys/values iteration.
    for k in r.routes.keys() {
        log(*k);
    }
}

fn local_temp() {
    let mut m = HashMap::new();
    m.insert(1u32, 2u32);
    for (a, b) in m.iter() {
        send(*a, *b);
    }
}

fn send(_d: u32, _h: u32) {}
fn drop_peer(_p: u64) {}
fn expensive_check(_k: u32) -> bool {
    true
}
fn log(_k: u32) {}
