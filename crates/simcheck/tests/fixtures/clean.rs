//! Determinism-clean code: ordered containers, virtual time, full snapshot
//! coverage. simcheck must report nothing here.
//! Not compiled — scanned by simcheck's integration tests.

use std::collections::{BTreeMap, HashMap};

struct Table {
    // Hash maps are fine as long as iteration order is never observed.
    index: HashMap<u64, usize>,
    rows: BTreeMap<u64, u32>,
}

fn lookup(t: &Table, k: u64) -> Option<usize> {
    t.index.get(&k).copied()
}

fn sweep(t: &mut Table, cutoff: u32) {
    t.rows.retain(|_, v| *v < cutoff);
}

struct Counter {
    value: u64,
}

impl Snapshot for Counter {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.u64(self.value);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.value = r.u64()?;
        Ok(())
    }
}
