//! Known-bad: a Snapshot impl that forgets a field (R3).
//! Not compiled — scanned by simcheck's integration tests.

struct Dev {
    ring_head: u32,
    ring_tail: u32,
    // This one silently escapes the checkpoint:
    irq_pending: bool,
}

impl Snapshot for Dev {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.u32(self.ring_head);
        w.u32(self.ring_tail);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.ring_head = r.u32()?;
        self.ring_tail = r.u32()?;
        Ok(())
    }
}
