//! Known-bad: ambient randomness and float-derived virtual time (R4).
//! Not compiled — scanned by simcheck's integration tests.

fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn hasher() -> std::collections::hash_map::RandomState {
    RandomState::new()
}

fn service_delay(load: f64) -> SimTime {
    // Float rounding differs across platforms/opt levels.
    SimTime::from_ns((1000.0 * load) as u64)
}

fn service_delay_multiline(load: f64) -> SimTime {
    SimTime::from_us(
        (17.5 * load) as u64,
    )
}
