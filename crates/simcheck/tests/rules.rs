//! Negative tests: run the analyzer over known-bad fixture snippets and
//! assert every rule fires where expected — and nowhere else — plus the
//! waiver round-trip (the same hazard with/without an inline waiver).

use std::path::{Path, PathBuf};

use simcheck::{scan_source, scan_tree, Rule};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = std::fs::read_to_string(&path).unwrap();
    (path, src)
}

#[test]
fn r1_catches_every_iteration_shape() {
    let (path, src) = fixture("bad_unordered_iter.rs");
    let f = scan_source(&path, &src);
    let r1: Vec<usize> =
        f.iter().filter(|f| f.rule == Rule::R1UnorderedIter && !f.waived()).map(|f| f.line).collect();
    // for/.iter(), .drain(), .retain(), .keys(), and the local-let map.
    assert_eq!(r1.len(), 5, "{f:#?}");
}

#[test]
fn r2_catches_wall_clock_but_not_in_tests() {
    let (path, src) = fixture("bad_wall_clock.rs");
    let f = scan_source(&path, &src);
    let r2: Vec<usize> =
        f.iter().filter(|f| f.rule == Rule::R2WallClock && !f.waived()).map(|f| f.line).collect();
    // The `use std::time::…` import, Instant::now, and SystemTime in sim
    // code; the #[cfg(test)] use is exempt.
    assert_eq!(r2.len(), 3, "{f:#?}");
    assert!(r2.iter().all(|&l| l < 19), "cfg(test) region must be exempt: {r2:?}");
}

#[test]
fn r3_catches_the_forgotten_field_only() {
    let (path, src) = fixture("bad_snapshot_gap.rs");
    let f = scan_source(&path, &src);
    let r3: Vec<&simcheck::Finding> =
        f.iter().filter(|f| f.rule == Rule::R3SnapshotCoverage).collect();
    assert_eq!(r3.len(), 1, "{f:#?}");
    assert!(r3[0].message.contains("Dev.irq_pending"));
    assert!(!r3[0].waived());
}

#[test]
fn r4_catches_rng_and_float_time_including_multiline() {
    let (path, src) = fixture("bad_nondet_primitives.rs");
    let f = scan_source(&path, &src);
    let r4: Vec<usize> =
        f.iter().filter(|f| f.rule == Rule::R4NondetPrimitive && !f.waived()).map(|f| f.line).collect();
    // thread_rng, RandomState (x2: return type + ctor), single-line float
    // time, multi-line float time.
    assert!(r4.len() >= 4, "{f:#?}");
}

#[test]
fn waived_fixture_blocks_nothing() {
    let (path, src) = fixture("waived_clean.rs");
    let f = scan_source(&path, &src);
    assert!(!f.is_empty(), "hazards must still be reported");
    assert!(f.iter().all(|f| f.waived()), "all must be waived: {f:#?}");
}

#[test]
fn clean_fixture_is_silent() {
    let (path, src) = fixture("clean.rs");
    let f = scan_source(&path, &src);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn waiver_round_trip() {
    // The same hazard, bare vs waived: the finding must flip from blocking
    // to waived without disappearing.
    let bare = "struct S { m: HashMap<u32, u32> }\n\
                fn f(s: &mut S) { s.m.retain(|_, v| *v > 0); }\n";
    let waived = "struct S { m: HashMap<u32, u32> }\n\
                  // det-ok: retained set is rebuilt before any ordered observation\n\
                  fn f(s: &mut S) { s.m.retain(|_, v| *v > 0); }\n";
    let p = Path::new("fixtures/roundtrip.rs");
    let fb = scan_source(p, bare);
    assert_eq!(fb.len(), 1);
    assert!(!fb[0].waived());
    let fw = scan_source(p, waived);
    assert_eq!(fw.len(), 1);
    assert!(fw[0].waived());
    assert_eq!(
        fw[0].waiver.as_deref(),
        Some("retained set is rebuilt before any ordered observation")
    );
}

#[test]
fn tree_scan_covers_all_fixtures() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let f = scan_tree(&dir).unwrap();
    let blocking = f.iter().filter(|f| !f.waived()).count();
    let waived = f.iter().filter(|f| f.waived()).count();
    assert!(blocking >= 9, "bad_* fixtures must block: {f:#?}");
    assert!(waived >= 3, "waived_clean.rs findings must be waived: {f:#?}");
    // Rule ids serialize into JSON for the CI annotation path.
    let json = simcheck::to_json(&f);
    assert!(json.contains("\"rule\": \"R1\"") && json.contains("\"rule\": \"R4\""));
}
