//! Discrete-event network simulator (the ns-3 / OMNeT++ stand-in).
//!
//! A [`DesNetwork`] is one SimBricks component that internally simulates an
//! arbitrary topology of switches, links and (optionally) end hosts:
//!
//! * **Internal switches** do MAC learning and forwarding.
//! * **Links** model bandwidth, propagation delay, and a queue discipline —
//!   drop-tail or a DCTCP-style ECN marking threshold K (the quantity swept
//!   in Fig. 1).
//! * **Internal endpoints** run the full [`simbricks_netstack`] TCP/UDP stack
//!   and an [`EndpointApp`] directly inside the network simulator. This is
//!   how network-only ("ns-3 alone") baselines are built: protocol behaviour
//!   is simulated but there is *no host, NIC, driver or OS model*, which is
//!   exactly the shortcoming the paper's Fig. 1 measures.
//! * **External ports** attach the internal topology to other SimBricks
//!   components (NIC simulators, other network simulators) through the
//!   Ethernet interface; this is the SimBricks adapter role ns-3 plays in the
//!   paper's end-to-end configurations, and also what lets a network be
//!   decomposed into several cooperating network simulators (§7.3.2).

use std::collections::{BTreeMap, VecDeque};

use simbricks_base::{Kernel, Model, OwnedMsg, PortId, SimTime, PktBuf};
use simbricks_eth::{send_packet, serialization_delay, EthPacket};
use simbricks_netstack::{NetStack, SocketEvent, StackConfig};
use simbricks_proto::{frame_dst, frame_src, Ecn, Ipv4Header, MacAddr, ETH_HEADER_LEN};

/// Identifier of a node inside a [`DesNetwork`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Queueing discipline of a link direction.
#[derive(Clone, Copy, Debug)]
pub enum QueueDiscipline {
    /// Plain FIFO with a byte capacity.
    DropTail { capacity_bytes: usize },
    /// FIFO that marks ECN-capable packets CE once the queue holds at least
    /// `threshold_pkts` packets (DCTCP-style step marking).
    EcnThreshold {
        threshold_pkts: usize,
        capacity_bytes: usize,
    },
    /// Random Early Detection: below `min_pkts` nothing happens; between
    /// `min_pkts` and `max_pkts` packets are marked (ECN-capable traffic) or
    /// dropped with a probability growing linearly up to `max_prob_percent`;
    /// at or above `max_pkts` every packet is marked/dropped. The decision
    /// uses a per-link deterministic generator so simulations stay
    /// reproducible (§7.6). This is the classic AQM of the ns-3/OMNeT++
    /// comparisons.
    Red {
        min_pkts: usize,
        max_pkts: usize,
        max_prob_percent: u8,
        capacity_bytes: usize,
    },
    /// CoDel: drop (or CE-mark, for ECN-capable traffic) at dequeue when the
    /// head packet's sojourn time stays above `target` for `interval`, then
    /// repeatedly at `interval / sqrt(n)` (the standard control law).
    CoDel {
        target: SimTime,
        interval: SimTime,
        capacity_bytes: usize,
    },
    /// DualPI2 (L4S): a PI controller yields a base probability `p'`;
    /// ECT(1) traffic is CE-marked at `2·p'`, classic traffic is marked
    /// (ECT(0)) or dropped (Not-ECT) at the squared-coupled `p'²`.
    DualPi2 {
        target: SimTime,
        tupdate: SimTime,
        capacity_bytes: usize,
    },
}

impl QueueDiscipline {
    fn capacity(&self) -> usize {
        match self {
            QueueDiscipline::DropTail { capacity_bytes } => *capacity_bytes,
            QueueDiscipline::EcnThreshold { capacity_bytes, .. } => *capacity_bytes,
            QueueDiscipline::Red { capacity_bytes, .. } => *capacity_bytes,
            QueueDiscipline::CoDel { capacity_bytes, .. } => *capacity_bytes,
            QueueDiscipline::DualPi2 { capacity_bytes, .. } => *capacity_bytes,
        }
    }
    fn threshold(&self) -> Option<usize> {
        match self {
            QueueDiscipline::EcnThreshold { threshold_pkts, .. } => Some(*threshold_pkts),
            _ => None,
        }
    }
}

/// Parameters of one link.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// Link rate in bits per second; 0 means an ideal link with no
    /// serialization delay (used e.g. for the receiver-side attachment when a
    /// topology is split across two network simulators, §7.5).
    pub bandwidth_bps: u64,
    pub delay: SimTime,
    pub queue: QueueDiscipline,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            bandwidth_bps: simbricks_base::bw::B10G,
            delay: SimTime::from_us(1),
            queue: QueueDiscipline::DropTail {
                capacity_bytes: 512 * 1024,
            },
        }
    }
}

/// Context handed to an [`EndpointApp`] callback.
pub struct EndpointCtx<'a> {
    pub now: SimTime,
    pub stack: &'a mut NetStack,
    /// Absolute-time timer requests (time, app-defined token < 2^24).
    pub timers: &'a mut Vec<(SimTime, u64)>,
    /// Set to true when the application has finished its workload.
    pub done: &'a mut bool,
}

/// An application running on an internal endpoint of the network simulator
/// (used by network-only baselines such as the "ns-3 alone" dctcp run).
pub trait EndpointApp: Send {
    fn start(&mut self, ctx: &mut EndpointCtx);
    fn on_event(&mut self, ctx: &mut EndpointCtx, ev: SocketEvent);
    fn on_timer(&mut self, ctx: &mut EndpointCtx, token: u64);
    /// One-line result summary for experiment reports.
    fn report(&self) -> String {
        String::new()
    }
}

#[allow(clippy::large_enum_variant)]
enum NodeKind {
    Switch {
        mac_table: BTreeMap<MacAddr, usize>,
    },
    Endpoint {
        stack: NetStack,
        app: Box<dyn EndpointApp>,
        done: bool,
    },
    /// A SimBricks Ethernet port of the enclosing kernel.
    External {
        kernel_port: usize,
    },
}

struct Node {
    kind: NodeKind,
    /// Attached link endpoints: (link index, side) where side 0 = `a`.
    ports: Vec<(usize, u8)>,
}

struct LinkDir {
    /// Queued frames with enqueue time (for sojourn-based disciplines).
    queue: VecDeque<(SimTime, PktBuf)>,
    queued_bytes: usize,
    busy_until: SimTime,
    departing: bool,
    /// Deterministic per-direction generator for RED/DualPI2 decisions.
    red_rng: u64,
    /// CoDel: when sojourn first exceeded target (ZERO = not above).
    first_above: SimTime,
    /// CoDel: next scheduled drop while in the dropping state.
    drop_next: SimTime,
    /// CoDel: drops in the current episode (control-law divisor).
    drop_count: u64,
    /// CoDel: currently in the dropping state.
    dropping: bool,
    /// DualPI2: base probability p' in parts per million.
    pi_prob_ppm: u64,
    /// DualPI2: virtual time of the last controller update.
    pi_last_update: SimTime,
    /// DualPI2: queue delay at the last update (derivative term).
    pi_prev_qdelay: SimTime,
}

impl LinkDir {
    fn new(seed: u64) -> Self {
        LinkDir {
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy_until: SimTime::ZERO,
            departing: false,
            red_rng: seed.wrapping_mul(0x9e3779b97f4a7c15) | 1,
            first_above: SimTime::ZERO,
            drop_next: SimTime::ZERO,
            drop_count: 0,
            dropping: false,
            pi_prob_ppm: 0,
            pi_last_update: SimTime::ZERO,
            pi_prev_qdelay: SimTime::ZERO,
        }
    }

    fn draw(&mut self) -> u64 {
        self.red_rng ^= self.red_rng >> 12;
        self.red_rng ^= self.red_rng << 25;
        self.red_rng ^= self.red_rng >> 27;
        self.red_rng.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Next value in [0, 100) from the per-direction xorshift generator.
    fn red_draw(&mut self) -> u64 {
        self.draw() % 100
    }

    /// Next value in [0, 1_000_000) (parts per million).
    fn draw_ppm(&mut self) -> u64 {
        self.draw() % 1_000_000
    }
}

/// The CoDel control law applied to the head of a link direction at dequeue
/// time `start`: non-ECT heads selected for drop are removed (possibly
/// several, per the sqrt schedule), an ECN-capable head is CE-marked instead
/// and left queued for transmission. Mirrors the switch implementation.
fn codel_head(
    q: &mut LinkDir,
    start: SimTime,
    target: SimTime,
    interval: SimTime,
    dropped: &mut u64,
    marked: &mut u64,
) {
    loop {
        let Some((enq, _)) = q.queue.front() else {
            q.dropping = false;
            return;
        };
        let sojourn = start.saturating_sub(*enq);
        let ok_to_drop = if sojourn < target {
            q.first_above = SimTime::ZERO;
            false
        } else if q.first_above == SimTime::ZERO {
            q.first_above = start.saturating_add(interval);
            false
        } else {
            start >= q.first_above
        };
        if q.dropping {
            if !ok_to_drop {
                q.dropping = false;
                return;
            }
            if start < q.drop_next {
                return;
            }
            q.drop_count += 1;
            q.drop_next = start
                .saturating_add(SimTime::from_ps(interval.as_ps() / crate::switch::isqrt(q.drop_count)));
        } else {
            if !ok_to_drop {
                return;
            }
            q.dropping = true;
            q.drop_count = if q.drop_count > 2 { q.drop_count - 2 } else { 1 };
            q.drop_next = start
                .saturating_add(SimTime::from_ps(interval.as_ps() / crate::switch::isqrt(q.drop_count)));
        }
        let head = &mut q.queue.front_mut().unwrap().1;
        let is_ect = Ipv4Header::parse(&head[ETH_HEADER_LEN.min(head.len())..])
            .map(|(h, _, _)| h.ecn.is_ect())
            .unwrap_or(false);
        if is_ect && Ipv4Header::set_ecn_in_place(head.make_mut(), ETH_HEADER_LEN, Ecn::Ce) {
            *marked += 1;
            return;
        }
        let (_, frame) = q.queue.pop_front().unwrap();
        q.queued_bytes -= frame.len();
        *dropped += 1;
    }
}

struct Link {
    a: NodeId,
    b: NodeId,
    params: LinkParams,
    /// dirs[0]: a -> b, dirs[1]: b -> a.
    dirs: [LinkDir; 2],
}

/// Aggregate statistics of a network simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct DesStats {
    pub forwarded: u64,
    pub dropped: u64,
    pub ecn_marked: u64,
    pub delivered_to_endpoints: u64,
    pub delivered_to_external: u64,
}

// Timer token layout: | kind (8 bits) | payload (56 bits) |
const TOK_LINK: u64 = 1 << 56;
const TOK_STACK: u64 = 2 << 56;
const TOK_APP: u64 = 3 << 56;

/// The discrete-event network component.
pub struct DesNetwork {
    nodes: Vec<Node>,
    links: Vec<Link>,
    external_ports: BTreeMap<usize, NodeId>,
    /// Frames that left a link and are propagating: (arrival time,
    /// destination node, ingress port at the destination, frame).
    pending_deliveries: VecDeque<(SimTime, NodeId, usize, PktBuf)>,
    stats: DesStats,
    started: bool,
}

impl Default for DesNetwork {
    fn default() -> Self {
        Self::new()
    }
}

impl DesNetwork {
    pub fn new() -> Self {
        DesNetwork {
            nodes: Vec::new(),
            links: Vec::new(),
            external_ports: BTreeMap::new(),
            pending_deliveries: VecDeque::new(),
            stats: DesStats::default(),
            started: false,
        }
    }

    /// Add an internal learning switch.
    pub fn add_switch(&mut self) -> NodeId {
        self.nodes.push(Node {
            kind: NodeKind::Switch {
                mac_table: BTreeMap::new(),
            },
            ports: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Add an internal endpoint running a network stack and application.
    pub fn add_endpoint(&mut self, cfg: StackConfig, app: Box<dyn EndpointApp>) -> NodeId {
        self.nodes.push(Node {
            kind: NodeKind::Endpoint {
                stack: NetStack::new(cfg),
                app,
                done: false,
            },
            ports: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Represent SimBricks Ethernet port `kernel_port` as a topology node.
    pub fn add_external_port(&mut self, kernel_port: usize) -> NodeId {
        self.nodes.push(Node {
            kind: NodeKind::External { kernel_port },
            ports: Vec::new(),
        });
        let id = NodeId(self.nodes.len() - 1);
        self.external_ports.insert(kernel_port, id);
        id
    }

    /// Connect two nodes with a bidirectional link.
    pub fn connect(&mut self, a: NodeId, b: NodeId, params: LinkParams) {
        let link_idx = self.links.len();
        self.links.push(Link {
            a,
            b,
            params,
            dirs: [
                LinkDir::new(link_idx as u64 * 2 + 1),
                LinkDir::new(link_idx as u64 * 2 + 2),
            ],
        });
        self.nodes[a.0].ports.push((link_idx, 0));
        self.nodes[b.0].ports.push((link_idx, 1));
    }

    pub fn stats(&self) -> DesStats {
        self.stats
    }

    /// Result line of an internal endpoint's application.
    pub fn endpoint_report(&self, node: NodeId) -> String {
        match &self.nodes[node.0].kind {
            NodeKind::Endpoint { app, .. } => app.report(),
            _ => String::new(),
        }
    }

    /// Whether every internal endpoint application reported completion.
    pub fn all_endpoints_done(&self) -> bool {
        self.nodes.iter().all(|n| match &n.kind {
            NodeKind::Endpoint { done, .. } => *done,
            _ => true,
        })
    }

    // ------------------------------------------------------------------
    // Frame movement
    // ------------------------------------------------------------------

    /// Send a frame out of `node` on its `port_idx`-th attachment.
    fn emit(&mut self, k: &mut Kernel, node: NodeId, port_idx: usize, frame: PktBuf) {
        let Some(&(link_idx, side)) = self.nodes[node.0].ports.get(port_idx) else {
            return;
        };
        self.enqueue_on_link(k, link_idx, side as usize, frame);
    }

    fn enqueue_on_link(&mut self, k: &mut Kernel, link_idx: usize, dir: usize, mut frame: PktBuf) {
        let link = &mut self.links[link_idx];
        let q = &mut link.dirs[dir];
        if q.queued_bytes + frame.len() > link.params.queue.capacity() {
            self.stats.dropped += 1;
            k.log("net_drop", link_idx as u64, frame.len() as u64);
            return;
        }
        let is_ect = Ipv4Header::parse(&frame[ETH_HEADER_LEN.min(frame.len())..])
            .map(|(h, _, _)| h.ecn.is_ect())
            .unwrap_or(false);
        match link.params.queue {
            QueueDiscipline::DropTail { .. } => {}
            QueueDiscipline::EcnThreshold { .. } => {
                let thresh = link.params.queue.threshold().unwrap_or(usize::MAX);
                if q.queue.len() >= thresh
                    && is_ect
                    && Ipv4Header::set_ecn_in_place(frame.make_mut(), ETH_HEADER_LEN, Ecn::Ce)
                {
                    self.stats.ecn_marked += 1;
                    k.log("net_mark", link_idx as u64, q.queue.len() as u64);
                }
            }
            QueueDiscipline::Red {
                min_pkts,
                max_pkts,
                max_prob_percent,
                ..
            } => {
                let depth = q.queue.len();
                let congested = if depth >= max_pkts {
                    true
                } else if depth >= min_pkts && max_pkts > min_pkts {
                    let prob = (depth - min_pkts) as u64 * max_prob_percent as u64
                        / (max_pkts - min_pkts) as u64;
                    q.red_draw() < prob
                } else {
                    false
                };
                if congested {
                    if is_ect
                        && Ipv4Header::set_ecn_in_place(frame.make_mut(), ETH_HEADER_LEN, Ecn::Ce)
                    {
                        self.stats.ecn_marked += 1;
                        k.log("net_mark", link_idx as u64, depth as u64);
                    } else {
                        // Not ECN-capable: RED falls back to an early drop.
                        self.stats.dropped += 1;
                        k.log("net_drop", link_idx as u64, frame.len() as u64);
                        return;
                    }
                }
            }
            // CoDel acts at dequeue (see schedule_departure).
            QueueDiscipline::CoDel { .. } => {}
            QueueDiscipline::DualPi2 { target, tupdate, .. } => {
                // Lazy PI update, bounded catch-up; queueing delay derived
                // from the backlog at the link rate.
                if tupdate > SimTime::ZERO
                    && k.now() >= q.pi_last_update.saturating_add(tupdate)
                    && link.params.bandwidth_bps > 0
                {
                    let steps =
                        ((k.now() - q.pi_last_update).as_ps() / tupdate.as_ps()).min(4) as u32;
                    let qdelay = SimTime::from_ps(
                        (q.queued_bytes as u128 * 8 * 1_000_000_000_000
                            / link.params.bandwidth_bps as u128) as u64,
                    );
                    for _ in 0..steps {
                        let err_ns =
                            qdelay.as_ps() as i64 / 1000 - target.as_ps() as i64 / 1000;
                        let diff_ns = qdelay.as_ps() as i64 / 1000
                            - q.pi_prev_qdelay.as_ps() as i64 / 1000;
                        let delta = err_ns / 16 + diff_ns / 4;
                        q.pi_prob_ppm =
                            (q.pi_prob_ppm as i64 + delta).clamp(0, 1_000_000) as u64;
                        q.pi_prev_qdelay = qdelay;
                    }
                    q.pi_last_update = SimTime::from_ps(
                        q.pi_last_update.as_ps() + steps as u64 * tupdate.as_ps(),
                    );
                }
                let p = q.pi_prob_ppm;
                let l4s = Ipv4Header::parse(&frame[ETH_HEADER_LEN.min(frame.len())..])
                    .map(|(h, _, _)| h.ecn == Ecn::Ect1)
                    .unwrap_or(false);
                let prob_ppm = if l4s { (2 * p).min(1_000_000) } else { p * p / 1_000_000 };
                if prob_ppm > 0 && q.draw_ppm() < prob_ppm {
                    if is_ect
                        && Ipv4Header::set_ecn_in_place(frame.make_mut(), ETH_HEADER_LEN, Ecn::Ce)
                    {
                        self.stats.ecn_marked += 1;
                        k.log("net_mark", link_idx as u64, q.queue.len() as u64);
                    } else {
                        self.stats.dropped += 1;
                        k.log("net_drop", link_idx as u64, frame.len() as u64);
                        return;
                    }
                }
            }
        }
        q.queued_bytes += frame.len();
        q.queue.push_back((k.now(), frame));
        self.schedule_departure(k, link_idx, dir);
    }

    fn schedule_departure(&mut self, k: &mut Kernel, link_idx: usize, dir: usize) {
        let now = k.now();
        let link = &mut self.links[link_idx];
        let q = &mut link.dirs[dir];
        if q.departing || q.queue.is_empty() {
            return;
        }
        let start = now.max(q.busy_until);
        // CoDel inspects (and may drop or mark) the head at the moment its
        // transmission would begin.
        if let QueueDiscipline::CoDel { target, interval, .. } = link.params.queue {
            let mut codel_dropped = 0u64;
            let mut codel_marked = 0u64;
            codel_head(q, start, target, interval, &mut codel_dropped, &mut codel_marked);
            self.stats.dropped += codel_dropped;
            self.stats.ecn_marked += codel_marked;
            for _ in 0..codel_dropped {
                k.log("net_drop", link_idx as u64, 0);
            }
            for _ in 0..codel_marked {
                k.log("net_mark", link_idx as u64, 0);
            }
            if q.queue.is_empty() {
                return;
            }
        }
        let len = q.queue.front().unwrap().1.len();
        let done = if link.params.bandwidth_bps == 0 {
            start
        } else {
            start + serialization_delay(len, link.params.bandwidth_bps)
        };
        q.busy_until = done;
        q.departing = true;
        k.schedule_at(done, TOK_LINK | ((link_idx as u64) << 1) | dir as u64);
    }

    fn link_departure(&mut self, k: &mut Kernel, link_idx: usize, dir: usize) {
        let (frame, dst_node, delay) = {
            let link = &mut self.links[link_idx];
            let q = &mut link.dirs[dir];
            q.departing = false;
            let Some((_, frame)) = q.queue.pop_front() else {
                return;
            };
            q.queued_bytes -= frame.len();
            let dst = if dir == 0 { link.b } else { link.a };
            (frame, dst, link.params.delay)
        };
        self.schedule_departure(k, link_idx, dir);
        // Which local port of the destination node does this link attach to?
        let dst_side = if dir == 0 { 1u8 } else { 0u8 };
        let ingress_port = self.nodes[dst_node.0]
            .ports
            .iter()
            .position(|&(l, s)| l == link_idx && s == dst_side)
            .unwrap_or(0);
        if delay == SimTime::ZERO {
            self.deliver_from(k, dst_node, ingress_port, frame);
        } else {
            // Propagation delay: park the frame until its arrival time.
            let at = k.now() + delay;
            self.pending_deliveries
                .push_back((at, dst_node, ingress_port, frame));
            k.schedule_at(at, TOK_DELIVER);
        }
    }

    fn deliver_from(&mut self, k: &mut Kernel, node: NodeId, ingress_port: usize, frame: PktBuf) {
        enum Action {
            External(usize),
            Endpoint,
            Forward(Option<usize>),
        }
        let action = match &mut self.nodes[node.0].kind {
            NodeKind::External { kernel_port } => Action::External(*kernel_port),
            NodeKind::Endpoint { .. } => Action::Endpoint,
            NodeKind::Switch { mac_table } => {
                if let Some(src) = frame_src(&frame) {
                    if !src.is_multicast() {
                        mac_table.insert(src, ingress_port);
                    }
                }
                let out = frame_dst(&frame).and_then(|d| {
                    if d.is_broadcast() || d.is_multicast() {
                        None
                    } else {
                        mac_table.get(&d).copied()
                    }
                });
                Action::Forward(out)
            }
        };
        match action {
            Action::External(p) => {
                self.stats.delivered_to_external += 1;
                k.log("net_to_ext", p as u64, frame.len() as u64);
                send_packet(k, PortId(p), &frame);
            }
            Action::Endpoint => {
                self.stats.delivered_to_endpoints += 1;
                self.endpoint_rx(k, node, frame);
            }
            Action::Forward(out) => {
                self.stats.forwarded += 1;
                match out {
                    Some(p) if p != ingress_port => self.emit(k, node, p, frame),
                    Some(_) => {}
                    None => {
                        let nports = self.nodes[node.0].ports.len();
                        for p in 0..nports {
                            if p != ingress_port {
                                self.emit(k, node, p, frame.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Endpoint plumbing
    // ------------------------------------------------------------------

    fn endpoint_rx(&mut self, k: &mut Kernel, node: NodeId, frame: PktBuf) {
        let now = k.now();
        // Timestamped per-endpoint packet log: this is what the §7.5 accuracy
        // check compares between a monolithic network simulation and the same
        // topology split across two network simulators.
        k.log("ep_rx", node.0 as u64, frame.len() as u64);
        if let NodeKind::Endpoint { stack, .. } = &mut self.nodes[node.0].kind {
            stack.handle_frame(now, &frame);
        }
        self.endpoint_pump(k, node);
    }

    /// Run application callbacks and flush stack output for one endpoint.
    fn endpoint_pump(&mut self, k: &mut Kernel, node: NodeId) {
        let now = k.now();
        let mut frames = Vec::new();
        let mut timer_reqs = Vec::new();
        if let NodeKind::Endpoint { stack, app, done } = &mut self.nodes[node.0].kind {
            // Application callbacks for pending socket events.
            loop {
                let events = stack.poll_events();
                if events.is_empty() {
                    break;
                }
                for ev in events {
                    let mut ctx = EndpointCtx {
                        now,
                        stack,
                        timers: &mut timer_reqs,
                        done,
                    };
                    app.on_event(&mut ctx, ev);
                }
            }
            while let Some(f) = stack.poll_transmit() {
                frames.push(f);
            }
            if let Some(t) = stack.poll_timeout() {
                timer_reqs.push((t.max(now), u64::MAX)); // stack timer sentinel
            }
        }
        for (at, tok) in timer_reqs {
            if tok == u64::MAX {
                k.schedule_at(at, TOK_STACK | node.0 as u64);
            } else {
                k.schedule_at(at, TOK_APP | ((node.0 as u64) << 24) | (tok & 0xff_ffff));
            }
        }
        for f in frames {
            // Endpoints have exactly one attachment (port 0).
            k.log("ep_tx", node.0 as u64, f.len() as u64);
            self.emit(k, node, 0, f);
        }
    }

    fn endpoint_app_timer(&mut self, k: &mut Kernel, node: NodeId, token: u64) {
        let now = k.now();
        let mut timer_reqs = Vec::new();
        if let NodeKind::Endpoint { stack, app, done } = &mut self.nodes[node.0].kind {
            let mut ctx = EndpointCtx {
                now,
                stack,
                timers: &mut timer_reqs,
                done,
            };
            app.on_timer(&mut ctx, token);
        }
        for (at, tok) in timer_reqs {
            if tok == u64::MAX {
                k.schedule_at(at, TOK_STACK | node.0 as u64);
            } else {
                k.schedule_at(at, TOK_APP | ((node.0 as u64) << 24) | (tok & 0xff_ffff));
            }
        }
        self.endpoint_pump(k, node);
    }

    fn endpoint_stack_timer(&mut self, k: &mut Kernel, node: NodeId) {
        let now = k.now();
        if let NodeKind::Endpoint { stack, .. } = &mut self.nodes[node.0].kind {
            stack.on_timer(now);
        }
        self.endpoint_pump(k, node);
    }
}

// Delivery of frames after a propagation delay needs per-frame storage; kept
// out of the main struct definition above for readability.
const TOK_DELIVER: u64 = 4 << 56;

impl DesNetwork {
    fn process_pending_deliveries(&mut self, k: &mut Kernel) {
        let now = k.now();
        // Delays differ per link, so the deque is not globally sorted: take
        // every due entry, preserving relative order of equal-time arrivals.
        let mut due = Vec::new();
        let mut rest = VecDeque::new();
        while let Some(entry) = self.pending_deliveries.pop_front() {
            if entry.0 <= now {
                due.push(entry);
            } else {
                rest.push_back(entry);
            }
        }
        self.pending_deliveries = rest;
        for (_, node, ingress, frame) in due {
            self.deliver_from(k, node, ingress, frame);
        }
    }
}

impl Model for DesNetwork {
    fn init(&mut self, k: &mut Kernel) {
        if self.started {
            return;
        }
        self.started = true;
        // Endpoint stacks allocate from this component's arena so pooled
        // transmit allocations land in its `KernelStats::pool_*` counters.
        for node in &mut self.nodes {
            if let NodeKind::Endpoint { stack, .. } = &mut node.kind {
                stack.set_pool(k.pool().clone());
            }
        }
        // Start all endpoint applications.
        let ids: Vec<NodeId> = (0..self.nodes.len()).map(NodeId).collect();
        for id in ids {
            let now = k.now();
            let mut timer_reqs = Vec::new();
            if let NodeKind::Endpoint { stack, app, done } = &mut self.nodes[id.0].kind {
                let mut ctx = EndpointCtx {
                    now,
                    stack,
                    timers: &mut timer_reqs,
                    done,
                };
                app.start(&mut ctx);
            } else {
                continue;
            }
            for (at, tok) in timer_reqs {
                if tok == u64::MAX {
                    k.schedule_at(at, TOK_STACK | id.0 as u64);
                } else {
                    k.schedule_at(at, TOK_APP | ((id.0 as u64) << 24) | (tok & 0xff_ffff));
                }
            }
            self.endpoint_pump(k, id);
        }
    }

    fn on_msg(&mut self, k: &mut Kernel, port: PortId, msg: OwnedMsg) {
        let Some(pkt) = EthPacket::decode_owned(msg) else {
            return;
        };
        k.log("net_from_ext", port.0 as u64, pkt.len() as u64);
        let Some(&node) = self.external_ports.get(&port.0) else {
            return;
        };
        // The frame enters the topology at the external node's single link.
        self.emit(k, node, 0, pkt.frame);
    }

    fn on_timer(&mut self, k: &mut Kernel, token: u64) {
        let kind = token & (0xff << 56);
        let payload = token & !(0xffu64 << 56);
        match kind {
            TOK_LINK => {
                let link_idx = (payload >> 1) as usize;
                let dir = (payload & 1) as usize;
                self.link_departure(k, link_idx, dir);
            }
            TOK_STACK => self.endpoint_stack_timer(k, NodeId(payload as usize)),
            TOK_APP => {
                let node = NodeId((payload >> 24) as usize);
                let tok = payload & 0xff_ffff;
                self.endpoint_app_timer(k, node, tok);
            }
            TOK_DELIVER => self.process_pending_deliveries(k),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, StepOutcome};
    use simbricks_eth::MSG_ETH_PACKET;
    use simbricks_proto::{Ecn, FrameBuilder, Ipv4Addr, MacAddr};

    /// A DES network with one external SimBricks port (port 0 of the kernel)
    /// driven directly through a channel end, so frames can be injected into
    /// and collected from arbitrary topologies.
    struct Harness {
        kernel: Kernel,
        net: DesNetwork,
        peer: simbricks_base::ChannelEnd,
    }

    impl Harness {
        fn new(net: DesNetwork) -> Self {
            let (a, b) = channel_pair(ChannelParams::default_sync().with_queue_len(512));
            let mut kernel = Kernel::new("des", SimTime::from_ms(100));
            kernel.enable_log();
            kernel.add_port(a);
            Harness {
                kernel,
                net,
                peer: b,
            }
        }

        fn inject(&mut self, frame: &[u8], at: SimTime) {
            self.peer.send_raw(at, MSG_ETH_PACKET, frame).unwrap();
        }

        fn run_until(&mut self, horizon: SimTime) {
            self.peer
                .send_raw(horizon, simbricks_base::MSG_SYNC, &[])
                .unwrap();
            loop {
                match self.kernel.step(&mut self.net, 512) {
                    StepOutcome::Blocked(_) | StepOutcome::Paused | StepOutcome::Finished => break,
                    StepOutcome::Progressed => {}
                }
            }
        }

    }

    fn udp_frame(ecn: Ecn, len: usize) -> Vec<u8> {
        FrameBuilder::udp(
            MacAddr::from_index(10),
            MacAddr::from_index(20),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            ecn,
            5555,
            6666,
            &vec![0u8; len],
        )
    }

    /// Topology: external port -> bottleneck link -> external port is not
    /// possible (one port), so tests use ext -> link -> second ext... instead
    /// a single external port connected to itself is meaningless; use
    /// ext -> switch -> ext loop-free alternative: ext(0) -> link -> switch,
    /// and a second external port for egress.
    fn two_port_net(bottleneck: LinkParams) -> (DesNetwork, NodeId) {
        let mut net = DesNetwork::new();
        let in_port = net.add_external_port(0);
        let sw = net.add_switch();
        // Only one kernel port exists in the harness; to observe egress the
        // tests read the link/drop/mark statistics instead of frames. The
        // bottleneck is the ingress link.
        net.connect(in_port, sw, bottleneck);
        (net, sw)
    }

    #[test]
    fn droptail_drops_when_capacity_exceeded() {
        let (net, _) = two_port_net(LinkParams {
            bandwidth_bps: simbricks_base::bw::GBPS,
            delay: SimTime::from_us(1),
            queue: QueueDiscipline::DropTail {
                capacity_bytes: 3000,
            },
        });
        let mut h = Harness::new(net);
        for _ in 0..10 {
            h.inject(&udp_frame(Ecn::NotEct, 1000), SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(10));
        let stats = h.net.stats();
        assert!(stats.dropped > 0, "overflow must drop");
        assert!(stats.forwarded > 0, "some frames still go through");
        assert_eq!(stats.dropped + stats.forwarded, 10);
    }

    #[test]
    fn ecn_threshold_marks_ect_traffic_beyond_k() {
        let (net, _) = two_port_net(LinkParams {
            bandwidth_bps: simbricks_base::bw::GBPS,
            delay: SimTime::from_us(1),
            queue: QueueDiscipline::EcnThreshold {
                threshold_pkts: 2,
                capacity_bytes: 1 << 20,
            },
        });
        let mut h = Harness::new(net);
        for _ in 0..8 {
            h.inject(&udp_frame(Ecn::Ect0, 1000), SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(10));
        let stats = h.net.stats();
        assert!(stats.ecn_marked > 0, "queue beyond K must mark");
        assert!(stats.ecn_marked < 8, "early packets stay unmarked");
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn red_marks_ect_and_drops_non_ect() {
        let red = |_| LinkParams {
            bandwidth_bps: simbricks_base::bw::GBPS,
            delay: SimTime::from_us(1),
            queue: QueueDiscipline::Red {
                min_pkts: 1,
                max_pkts: 4,
                max_prob_percent: 100,
                capacity_bytes: 1 << 20,
            },
        };
        // ECN-capable burst: marked, never dropped.
        let (net, _) = two_port_net(red(()));
        let mut h = Harness::new(net);
        for _ in 0..16 {
            h.inject(&udp_frame(Ecn::Ect0, 1000), SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(10));
        let s = h.net.stats();
        assert!(s.ecn_marked > 0, "RED marks ECT traffic under congestion");
        assert_eq!(s.dropped, 0, "ECT traffic is not dropped by RED");

        // Non-ECN burst: early-dropped instead.
        let (net, _) = two_port_net(red(()));
        let mut h = Harness::new(net);
        for _ in 0..16 {
            h.inject(&udp_frame(Ecn::NotEct, 1000), SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(10));
        let s = h.net.stats();
        assert!(s.dropped > 0, "RED early-drops non-ECT traffic");
        assert_eq!(s.ecn_marked, 0);
    }

    #[test]
    fn codel_drops_standing_queue_and_marks_ect() {
        let codel = || LinkParams {
            bandwidth_bps: simbricks_base::bw::GBPS,
            delay: SimTime::from_us(1),
            queue: QueueDiscipline::CoDel {
                target: SimTime::from_us(10),
                interval: SimTime::from_us(100),
                capacity_bytes: 1 << 20,
            },
        };
        // 100 × 1000 B at 1 Gbps = 8 us each: a standing queue of ~800 us,
        // far beyond target for longer than the interval.
        let (net, _) = two_port_net(codel());
        let mut h = Harness::new(net);
        for _ in 0..100 {
            h.inject(&udp_frame(Ecn::NotEct, 1000), SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(10));
        let s = h.net.stats();
        assert!(s.dropped > 0, "CoDel must drop a persistent non-ECT queue");
        assert_eq!(s.dropped + s.forwarded, 100);
        // The same burst with ECT(0): marked instead of dropped.
        let (net, _) = two_port_net(codel());
        let mut h = Harness::new(net);
        for _ in 0..100 {
            h.inject(&udp_frame(Ecn::Ect0, 1000), SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(10));
        let s = h.net.stats();
        assert!(s.ecn_marked > 0, "CoDel marks ECT instead of dropping");
        assert_eq!(s.dropped, 0);
        assert_eq!(s.forwarded, 100);
    }

    #[test]
    fn dualpi2_marks_scalable_traffic_under_load() {
        let (net, _) = two_port_net(LinkParams {
            bandwidth_bps: simbricks_base::bw::GBPS,
            delay: SimTime::from_us(1),
            queue: QueueDiscipline::DualPi2 {
                target: SimTime::from_us(5),
                tupdate: SimTime::from_us(20),
                capacity_bytes: 1 << 20,
            },
        });
        let mut h = Harness::new(net);
        // Sustained overload: arrivals every 4 us vs 8 us service, so the
        // backlog grows across many controller periods and p' ramps up.
        for i in 0..300u64 {
            h.inject(
                &udp_frame(Ecn::Ect1, 1000),
                SimTime::from_us(10) + SimTime::from_us(4 * i),
            );
        }
        h.run_until(SimTime::from_ms(20));
        let s = h.net.stats();
        assert!(s.ecn_marked > 0, "L4S queue must CE-mark under load");
        assert_eq!(s.dropped, 0, "ECT(1) traffic is never dropped by DualPI2");
        assert_eq!(s.forwarded, 300);
    }

    #[test]
    fn red_decisions_are_deterministic_across_runs() {
        let build = || {
            let (net, _) = two_port_net(LinkParams {
                bandwidth_bps: simbricks_base::bw::GBPS,
                delay: SimTime::from_us(1),
                queue: QueueDiscipline::Red {
                    min_pkts: 1,
                    max_pkts: 8,
                    max_prob_percent: 50,
                    capacity_bytes: 1 << 20,
                },
            });
            let mut h = Harness::new(net);
            for _ in 0..32 {
                h.inject(&udp_frame(Ecn::Ect0, 800), SimTime::from_us(10));
            }
            h.run_until(SimTime::from_ms(10));
            h.net.stats().ecn_marked
        };
        assert_eq!(build(), build(), "same seed, same marking decisions");
    }

    #[test]
    fn endpoints_exchange_traffic_inside_the_network() {
        // Two endpoints connected by one link; the client sends a burst of
        // UDP-free TCP traffic through the internal stacks.
        use crate::des::tests_support::OneShotSender;
        let mut net = DesNetwork::new();
        let a_cfg = simbricks_netstack::StackConfig {
            ip: Ipv4Addr::new(192, 168, 0, 1),
            mac: MacAddr::from_index(91),
            ..Default::default()
        };
        let b_cfg = simbricks_netstack::StackConfig {
            ip: Ipv4Addr::new(192, 168, 0, 2),
            mac: MacAddr::from_index(92),
            ..Default::default()
        };
        let b_ip = b_cfg.ip;
        let a = net.add_endpoint(a_cfg, Box::new(OneShotSender::new(b_ip, 4000, 50_000)));
        let b = net.add_endpoint(b_cfg, Box::new(OneShotSender::sink(4000)));
        net.connect(a, b, LinkParams::default());
        let mut h = Harness::new(net);
        h.run_until(SimTime::from_ms(50));
        let report = h.net.endpoint_report(b);
        let received: usize = report
            .strip_prefix("received=")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        assert_eq!(received, 50_000, "all bytes arrived: {report}");
        assert!(h.net.all_endpoints_done());
    }

    #[test]
    fn ideal_link_adds_no_serialization_delay() {
        // bandwidth 0 = ideal link: two back-to-back frames arrive with only
        // the propagation delay between injection and delivery.
        let mut net = DesNetwork::new();
        let in_port = net.add_external_port(0);
        let out_sw = net.add_switch();
        net.connect(
            in_port,
            out_sw,
            LinkParams {
                bandwidth_bps: 0,
                delay: SimTime::from_us(3),
                queue: QueueDiscipline::DropTail {
                    capacity_bytes: 1 << 20,
                },
            },
        );
        let mut h = Harness::new(net);
        h.inject(&udp_frame(Ecn::NotEct, 1500), SimTime::from_us(10));
        h.inject(&udp_frame(Ecn::NotEct, 1500), SimTime::from_us(10));
        h.run_until(SimTime::from_ms(1));
        // Both frames were forwarded (flooded back is impossible: only one
        // other port exists, the ingress) — check via stats and the mark/drop
        // counters staying zero.
        let s = h.net.stats();
        assert_eq!(s.dropped, 0);
        assert_eq!(s.forwarded, 2);
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! Minimal endpoint application used by the DES unit tests.

    use super::{EndpointApp, EndpointCtx};
    use simbricks_netstack::{SocketEvent, SocketId};
    use simbricks_proto::Ipv4Addr;

    pub(crate) struct OneShotSender {
        target: Option<(Ipv4Addr, u16)>,
        listen: Option<u16>,
        to_send: usize,
        sent: usize,
        pub received: usize,
        sock: Option<SocketId>,
    }

    impl OneShotSender {
        pub(crate) fn new(target: Ipv4Addr, port: u16, bytes: usize) -> Self {
            OneShotSender {
                target: Some((target, port)),
                listen: None,
                to_send: bytes,
                sent: 0,
                received: 0,
                sock: None,
            }
        }

        pub(crate) fn sink(port: u16) -> Self {
            OneShotSender {
                target: None,
                listen: Some(port),
                to_send: 0,
                sent: 0,
                received: 0,
                sock: None,
            }
        }

        fn pump(&mut self, ctx: &mut EndpointCtx) {
            if let Some(s) = self.sock {
                while self.sent < self.to_send {
                    let chunk = (self.to_send - self.sent).min(8192);
                    let n = ctx.stack.tcp_send(s, &vec![0x5a; chunk]);
                    self.sent += n;
                    if n < chunk {
                        break;
                    }
                }
                if self.sent >= self.to_send {
                    *ctx.done = true;
                }
            }
        }
    }

    impl EndpointApp for OneShotSender {
        fn start(&mut self, ctx: &mut EndpointCtx) {
            if let Some(port) = self.listen {
                ctx.stack.tcp_listen(port);
            }
            if let Some((ip, port)) = self.target {
                self.sock = Some(ctx.stack.tcp_connect(ctx.now, ip, port));
            }
        }
        fn on_event(&mut self, ctx: &mut EndpointCtx, ev: SocketEvent) {
            match ev {
                SocketEvent::Connected(_) | SocketEvent::SendSpace(_) if self.target.is_some() => {
                    self.pump(ctx)
                }
                SocketEvent::DataAvailable(s) | SocketEvent::Accepted { socket: s, .. }
                    if self.listen.is_some() =>
                {
                    self.received += ctx.stack.tcp_recv(s, usize::MAX).len();
                    if self.received > 0 {
                        *ctx.done = true;
                    }
                }
                _ => {}
            }
        }
        fn on_timer(&mut self, _ctx: &mut EndpointCtx, _token: u64) {}
        fn report(&self) -> String {
            format!("received={}", self.received)
        }
    }
}
