//! Cycle-driven RMT packet-processing pipeline (Menshen stand-in).
//!
//! The paper integrates the Menshen RMT pipeline Verilog through Verilator
//! (§6.4) to show RTL network components plug into the same Ethernet
//! interface. This module provides a cycle-level Rust model with the same
//! role: packets advance through the pipeline one stage per clock cycle at a
//! configurable frequency, which makes the component considerably more
//! expensive to simulate per packet than the behavioural switch — the
//! property that matters for the speed/accuracy trade-off experiments
//! (Tab. 1/3).

use std::collections::{BTreeMap, VecDeque};

use simbricks_base::{Kernel, Model, OwnedMsg, PortId, SimTime, PktBuf, SyncLookahead};
use simbricks_eth::{send_packet, EthPacket};
use simbricks_proto::{frame_dst, frame_src, MacAddr};

/// Configuration of the RMT pipeline.
#[derive(Clone, Copy, Debug)]
pub struct RmtConfig {
    pub ports: usize,
    /// Clock frequency in Hz (the paper runs RTL models at 250 MHz).
    pub clock_hz: u64,
    /// Pipeline depth in stages; a packet occupies one stage per cycle.
    pub stages: u32,
    /// Additional per-32-byte-word ingress cycles (bus width modelling).
    pub cycles_per_word: u32,
}

impl Default for RmtConfig {
    fn default() -> Self {
        RmtConfig {
            ports: 2,
            clock_hz: 250_000_000,
            stages: 16,
            cycles_per_word: 1,
        }
    }
}

struct InFlight {
    remaining_cycles: u64,
    in_port: usize,
    frame: PktBuf,
}

/// The cycle-driven pipeline model.
pub struct RmtPipeline {
    cfg: RmtConfig,
    cycle_len: SimTime,
    mac_table: BTreeMap<MacAddr, usize>,
    pipeline: VecDeque<InFlight>,
    clock_running: bool,
    pub cycles_simulated: u64,
    pub packets_processed: u64,
}

const TOK_CLOCK: u64 = 1;

impl RmtPipeline {
    pub fn new(cfg: RmtConfig) -> Self {
        let cycle_len = SimTime::from_ps(1_000_000_000_000u64 / cfg.clock_hz.max(1));
        RmtPipeline {
            cfg,
            cycle_len,
            mac_table: BTreeMap::new(),
            pipeline: VecDeque::new(),
            clock_running: false,
            cycles_simulated: 0,
            packets_processed: 0,
        }
    }

    /// Virtual duration of one clock cycle.
    pub fn cycle_time(&self) -> SimTime {
        self.cycle_len
    }

    fn packet_cycles(&self, len: usize) -> u64 {
        let words = len.div_ceil(32) as u64;
        self.cfg.stages as u64 + words * self.cfg.cycles_per_word as u64
    }

    fn start_clock(&mut self, k: &mut Kernel) {
        if !self.clock_running {
            self.clock_running = true;
            k.schedule_in(self.cycle_len, TOK_CLOCK);
        }
    }

    fn tick(&mut self, k: &mut Kernel) {
        self.cycles_simulated += 1;
        let mut emitted = Vec::new();
        for pkt in &mut self.pipeline {
            pkt.remaining_cycles = pkt.remaining_cycles.saturating_sub(1);
        }
        while let Some(front) = self.pipeline.front() {
            if front.remaining_cycles > 0 {
                break;
            }
            let done = self.pipeline.pop_front().unwrap();
            emitted.push(done);
        }
        for done in emitted {
            self.packets_processed += 1;
            self.forward(k, done.in_port, done.frame);
        }
        if self.pipeline.is_empty() {
            // No packets in flight: gate the clock off (idle cycles are
            // skipped analytically; this is what keeps a cycle model usable
            // inside long simulations, while still charging every active
            // cycle as an event).
            self.clock_running = false;
        } else {
            k.schedule_in(self.cycle_len, TOK_CLOCK);
        }
    }

    fn forward(&mut self, k: &mut Kernel, in_port: usize, frame: PktBuf) {
        if let Some(src) = frame_src(&frame) {
            if !src.is_multicast() {
                self.mac_table.insert(src, in_port);
            }
        }
        let out = frame_dst(&frame).and_then(|d| {
            if d.is_broadcast() || d.is_multicast() {
                None
            } else {
                self.mac_table.get(&d).copied()
            }
        });
        match out {
            Some(p) if p != in_port => send_packet(k, PortId(p), &frame),
            Some(_) => {}
            None => {
                for p in 0..self.cfg.ports {
                    if p != in_port {
                        send_packet(k, PortId(p), &frame);
                    }
                }
            }
        }
    }
}

impl Model for RmtPipeline {
    // Forwarding filters the ingress port for unicast and flood alike, and
    // all emissions happen from the clock timer, never directly from
    // `on_msg`; an input pending on port p cannot cause a send on p.
    fn sync_lookahead(&self) -> Option<SyncLookahead> {
        Some(SyncLookahead::ExcludeSelf(SimTime::ZERO))
    }

    fn on_msg(&mut self, k: &mut Kernel, port: PortId, msg: OwnedMsg) {
        let Some(pkt) = EthPacket::decode_owned(msg) else {
            return;
        };
        let cycles = self.packet_cycles(pkt.len());
        self.pipeline.push_back(InFlight {
            remaining_cycles: cycles,
            in_port: port.0,
            frame: pkt.frame,
        });
        self.start_clock(k);
    }

    fn on_timer(&mut self, k: &mut Kernel, token: u64) {
        if token == TOK_CLOCK {
            self.tick(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, StepOutcome, MSG_SYNC};
    use simbricks_eth::MSG_ETH_PACKET;
    use simbricks_proto::{EthHeader, EtherType};

    fn frame(src: u64, dst: u64, len: usize) -> Vec<u8> {
        EthHeader::new(
            MacAddr::from_index(dst),
            MacAddr::from_index(src),
            EtherType::Other(0x900),
        )
        .build_frame(&vec![0u8; len])
    }

    #[test]
    fn cycle_time_matches_frequency() {
        let p = RmtPipeline::new(RmtConfig::default());
        assert_eq!(p.cycle_time(), SimTime::from_ns(4)); // 250 MHz
    }

    #[test]
    fn packets_take_pipeline_cycles_and_forward() {
        let cfg = RmtConfig::default();
        let mut kernel = Kernel::new("rmt", SimTime::from_ms(1));
        let (a0, mut p0) = channel_pair(ChannelParams::default_sync());
        let (a1, mut p1) = channel_pair(ChannelParams::default_sync());
        kernel.add_port(a0);
        kernel.add_port(a1);
        let mut rmt = RmtPipeline::new(cfg);
        let t_in = SimTime::from_us(1);
        p0.send_raw(t_in, MSG_ETH_PACKET, &frame(1, 2, 200)).unwrap();
        p0.send_raw(SimTime::from_us(100), MSG_SYNC, &[]).unwrap();
        p1.send_raw(SimTime::from_us(100), MSG_SYNC, &[]).unwrap();
        while kernel.step(&mut rmt, 256) == StepOutcome::Progressed {}
        let mut got = Vec::new();
        while let Some(m) = p1.recv_raw() {
            if m.ty == MSG_ETH_PACKET {
                got.push(m);
            }
        }
        assert_eq!(got.len(), 1);
        // 16 stages + ceil(214/32)=7 words => 23 cycles of 4 ns = 92 ns, plus
        // the 500 ns channel latency on each side.
        assert!(got[0].timestamp >= t_in + SimTime::from_ns(92));
        assert!(rmt.cycles_simulated >= 23, "active cycles are simulated individually");
        assert_eq!(rmt.packets_processed, 1);
    }

    #[test]
    fn clock_gates_off_when_idle() {
        let mut kernel = Kernel::new("rmt", SimTime::from_us(50));
        let (a0, mut p0) = channel_pair(ChannelParams::default_sync());
        let (a1, mut p1) = channel_pair(ChannelParams::default_sync());
        kernel.add_port(a0);
        kernel.add_port(a1);
        let mut rmt = RmtPipeline::new(RmtConfig::default());
        p0.send_raw(SimTime::from_us(1), MSG_ETH_PACKET, &frame(1, 2, 64)).unwrap();
        p0.send_raw(SimTime::from_us(50), MSG_SYNC, &[]).unwrap();
        p1.send_raw(SimTime::from_us(50), MSG_SYNC, &[]).unwrap();
        while kernel.step(&mut rmt, 4096) == StepOutcome::Progressed {}
        // 50 us at 4 ns/cycle would be 12500 cycles if free-running; the
        // gated clock only simulates the active window.
        assert!(rmt.cycles_simulated < 100);
        let _ = p1.recv_raw();
    }
}
