//! Programmable match-action pipeline switch (Tofino stand-in).
//!
//! The paper integrates Intel's closed-source Tofino simulator to evaluate
//! in-network processing (§6.4, §8.2). This module provides an open
//! reimplementation of the part the evaluation depends on: a multi-stage
//! match-action pipeline with a per-stage latency and an egress queuing
//! model, programmable with either plain L2 forwarding or the NOPaxos
//! Ordered Unreliable Multicast (OUM) sequencer program: UDP packets sent to
//! the OUM group port receive a monotonically increasing sequence number
//! written into the first eight payload bytes and are then multicast to all
//! replica ports.

use std::collections::{BTreeMap, VecDeque};

use simbricks_base::{Kernel, Model, OwnedMsg, PortId, SimTime, PktBuf, SyncLookahead};
use simbricks_eth::{send_packet, serialization_delay, EthPacket};
use simbricks_proto::{
    frame_dst, frame_src, FrameBuilder, MacAddr, ParsedFrame, ParsedL4, UdpHeader,
};

/// Configuration of the OUM sequencer program.
#[derive(Clone, Debug)]
pub struct SequencerConfig {
    /// UDP destination port identifying OUM traffic.
    pub group_port: u16,
    /// Switch ports connected to the replicas that receive the multicast.
    pub replica_ports: Vec<usize>,
}

/// Tofino-style switch configuration.
#[derive(Clone, Debug)]
pub struct TofinoConfig {
    pub ports: usize,
    pub bandwidth_bps: u64,
    pub queue_capacity: usize,
    /// Number of match-action stages the pipeline applies to every packet.
    pub pipeline_stages: u32,
    /// Latency per pipeline stage.
    pub stage_latency: SimTime,
    /// Optional OUM sequencer program.
    pub sequencer: Option<SequencerConfig>,
}

impl Default for TofinoConfig {
    fn default() -> Self {
        TofinoConfig {
            ports: 4,
            bandwidth_bps: simbricks_base::bw::B10G,
            queue_capacity: 1024 * 1024,
            pipeline_stages: 12,
            stage_latency: SimTime::from_ns(50),
            sequencer: None,
        }
    }
}

/// Counters for experiment reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct TofinoStats {
    pub forwarded: u64,
    pub sequenced: u64,
    pub dropped: u64,
}

struct Egress {
    queue: VecDeque<PktBuf>,
    queued_bytes: usize,
    busy_until: SimTime,
    departing: bool,
}

/// The Tofino-style programmable switch model.
pub struct TofinoSwitch {
    cfg: TofinoConfig,
    mac_table: BTreeMap<MacAddr, usize>,
    egress: Vec<Egress>,
    /// Packets traversing the pipeline: ready time and (ingress, frame).
    in_pipeline: VecDeque<(SimTime, usize, PktBuf)>,
    next_seqno: u64,
    stats: TofinoStats,
}

const TOK_PIPE: u64 = 1 << 56;
const TOK_EGRESS: u64 = 2 << 56;

impl TofinoSwitch {
    pub fn new(cfg: TofinoConfig) -> Self {
        TofinoSwitch {
            egress: (0..cfg.ports)
                .map(|_| Egress {
                    queue: VecDeque::new(),
                    queued_bytes: 0,
                    busy_until: SimTime::ZERO,
                    departing: false,
                })
                .collect(),
            cfg,
            mac_table: BTreeMap::new(),
            in_pipeline: VecDeque::new(),
            next_seqno: 1,
            stats: TofinoStats::default(),
        }
    }

    pub fn stats(&self) -> TofinoStats {
        self.stats
    }

    fn pipeline_latency(&self) -> SimTime {
        self.cfg.stage_latency.mul(self.cfg.pipeline_stages as u64)
    }

    fn enqueue(&mut self, k: &mut Kernel, port: usize, frame: PktBuf) {
        if port >= self.egress.len() {
            return;
        }
        let q = &mut self.egress[port];
        if q.queued_bytes + frame.len() > self.cfg.queue_capacity {
            self.stats.dropped += 1;
            return;
        }
        q.queued_bytes += frame.len();
        q.queue.push_back(frame);
        self.schedule_departure(k, port);
    }

    fn schedule_departure(&mut self, k: &mut Kernel, port: usize) {
        let now = k.now();
        let q = &mut self.egress[port];
        if q.departing || q.queue.is_empty() {
            return;
        }
        let len = q.queue.front().unwrap().len();
        let start = now.max(q.busy_until);
        let done = start + serialization_delay(len, self.cfg.bandwidth_bps);
        q.busy_until = done;
        q.departing = true;
        k.schedule_at(done, TOK_EGRESS | port as u64);
    }

    /// The match-action program: returns the set of (port, frame) outputs.
    fn process(&mut self, k: &mut Kernel, in_port: usize, frame: PktBuf) -> Vec<(usize, PktBuf)> {
        // MAC learning happens regardless of the program.
        if let Some(src) = frame_src(&frame) {
            if !src.is_multicast() {
                self.mac_table.insert(src, in_port);
            }
        }

        // OUM sequencer: rewrite + multicast matching UDP packets.
        if let Some(seq_cfg) = self.cfg.sequencer.clone() {
            if let Ok(parsed) = ParsedFrame::parse(&frame) {
                if let ParsedL4::Udp { header, payload } = &parsed.l4 {
                    if header.dst_port == seq_cfg.group_port && payload.len() >= 8 {
                        let seqno = self.next_seqno;
                        self.next_seqno += 1;
                        self.stats.sequenced += 1;
                        k.log("oum_seq", seqno, payload.len() as u64);
                        // Rewrite the first 8 payload bytes with the sequence
                        // number and rebuild the datagram (fixes checksums).
                        let mut new_payload = payload.clone();
                        new_payload[..8].copy_from_slice(&seqno.to_le_bytes());
                        let ip = parsed.ipv4.unwrap();
                        let l4 = UdpHeader::new(header.src_port, header.dst_port, new_payload.len())
                            .build_datagram(ip.src, ip.dst, &new_payload);
                        let out_frame = FrameBuilder::ipv4(
                            parsed.eth.src,
                            parsed.eth.dst,
                            ip.src,
                            ip.dst,
                            simbricks_proto::IpProto::Udp,
                            ip.ecn,
                            &l4,
                        );
                        // Replicate by refcount bump: one shared buffer,
                        // one reference per replica port.
                        let out_frame = PktBuf::from_vec(out_frame);
                        return seq_cfg
                            .replica_ports
                            .iter()
                            .filter(|&&p| p != in_port)
                            .map(|&p| (p, out_frame.clone()))
                            .collect();
                    }
                }
            }
        }

        // Default program: L2 forwarding with flooding.
        let out = frame_dst(&frame).and_then(|d| {
            if d.is_broadcast() || d.is_multicast() {
                None
            } else {
                self.mac_table.get(&d).copied()
            }
        });
        self.stats.forwarded += 1;
        match out {
            Some(p) if p != in_port => vec![(p, frame)],
            Some(_) => vec![],
            None => (0..self.cfg.ports)
                .filter(|&p| p != in_port)
                .map(|p| (p, frame.clone()))
                .collect(),
        }
    }
}

impl Model for TofinoSwitch {
    // Both the default L2 program and the OUM sequencer replicate only to
    // ports other than the ingress port, and every emission goes through the
    // pipeline/egress timers, so sends on port p are never caused by inputs
    // on p. Zero lookahead is therefore safe to declare.
    fn sync_lookahead(&self) -> Option<SyncLookahead> {
        Some(SyncLookahead::ExcludeSelf(SimTime::ZERO))
    }

    fn on_msg(&mut self, k: &mut Kernel, port: PortId, msg: OwnedMsg) {
        let Some(pkt) = EthPacket::decode_owned(msg) else {
            return;
        };
        // Every packet spends the pipeline latency before egress queueing,
        // modelling the multi-stage match-action traversal.
        let ready = k.now() + self.pipeline_latency();
        self.in_pipeline.push_back((ready, port.0, pkt.frame));
        k.schedule_at(ready, TOK_PIPE);
    }

    fn on_timer(&mut self, k: &mut Kernel, token: u64) {
        let kind = token & (0xffu64 << 56);
        if kind == TOK_PIPE {
            let now = k.now();
            while let Some((ready, _, _)) = self.in_pipeline.front() {
                if *ready > now {
                    break;
                }
                let (_, in_port, frame) = self.in_pipeline.pop_front().unwrap();
                let outputs = self.process(k, in_port, frame);
                for (p, f) in outputs {
                    self.enqueue(k, p, f);
                }
            }
        } else if kind == TOK_EGRESS {
            let port = (token & 0xffff_ffff) as usize;
            let frame = {
                let q = &mut self.egress[port];
                q.departing = false;
                match q.queue.pop_front() {
                    Some(f) => {
                        q.queued_bytes -= f.len();
                        f
                    }
                    None => return,
                }
            };
            send_packet(k, PortId(port), &frame);
            self.schedule_departure(k, port);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, StepOutcome, MSG_SYNC};
    use simbricks_eth::MSG_ETH_PACKET;
    use simbricks_proto::{Ecn, Ipv4Addr};

    struct Harness {
        kernel: Kernel,
        switch: TofinoSwitch,
        peers: Vec<simbricks_base::ChannelEnd>,
    }

    impl Harness {
        fn new(cfg: TofinoConfig) -> Self {
            let mut kernel = Kernel::new("tofino", SimTime::from_ms(10));
            let mut peers = Vec::new();
            for _ in 0..cfg.ports {
                let (a, b) = channel_pair(ChannelParams::default_sync());
                kernel.add_port(a);
                peers.push(b);
            }
            Harness {
                kernel,
                switch: TofinoSwitch::new(cfg),
                peers,
            }
        }

        fn run_until(&mut self, horizon: SimTime) {
            for p in &mut self.peers {
                p.send_raw(horizon, MSG_SYNC, &[]).unwrap();
            }
            while self.kernel.step(&mut self.switch, 256) == StepOutcome::Progressed {}
        }

        fn collect(&mut self, port: usize) -> Vec<Vec<u8>> {
            let mut out = Vec::new();
            while let Some(m) = self.peers[port].recv_raw() {
                if m.ty == MSG_ETH_PACKET {
                    out.push(m.data.to_vec());
                }
            }
            out
        }
    }

    fn udp_to_group(seq_placeholder: u64, extra: &[u8]) -> Vec<u8> {
        let mut payload = seq_placeholder.to_le_bytes().to_vec();
        payload.extend_from_slice(extra);
        FrameBuilder::udp(
            MacAddr::from_index(1),
            MacAddr::from_index(0xff),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 100),
            Ecn::NotEct,
            5000,
            7777,
            &payload,
        )
    }

    #[test]
    fn l2_forwarding_without_program() {
        let mut h = Harness::new(TofinoConfig::default());
        // Unknown destination floods to the other three ports.
        let f = FrameBuilder::udp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::NotEct,
            1,
            2,
            b"x",
        );
        h.peers[0].send_raw(SimTime::from_us(1), MSG_ETH_PACKET, &f).unwrap();
        h.run_until(SimTime::from_us(100));
        assert_eq!(h.collect(1).len(), 1);
        assert_eq!(h.collect(2).len(), 1);
        assert_eq!(h.collect(3).len(), 1);
        assert_eq!(h.collect(0).len(), 0);
    }

    #[test]
    fn pipeline_latency_applied() {
        let cfg = TofinoConfig {
            pipeline_stages: 10,
            stage_latency: SimTime::from_ns(100),
            ..Default::default()
        };
        let mut h = Harness::new(cfg);
        let f = udp_to_group(0, b"payload");
        let t_in = SimTime::from_us(1);
        h.peers[0].send_raw(t_in, MSG_ETH_PACKET, &f).unwrap();
        h.run_until(SimTime::from_us(200));
        let mut min_out = SimTime::MAX;
        for port in 1..4 {
            while let Some(m) = h.peers[port].recv_raw() {
                if m.ty == MSG_ETH_PACKET {
                    min_out = min_out.min(m.timestamp);
                }
            }
        }
        // input arrives at 1us, pipeline 1us, serialization + channel latency on top
        assert!(min_out >= SimTime::from_us(2), "pipeline delay respected, got {min_out}");
    }

    #[test]
    fn oum_sequencer_stamps_and_multicasts() {
        let cfg = TofinoConfig {
            sequencer: Some(SequencerConfig {
                group_port: 7777,
                replica_ports: vec![1, 2, 3],
            }),
            ..Default::default()
        };
        let mut h = Harness::new(cfg);
        for i in 0..3u64 {
            h.peers[0]
                .send_raw(SimTime::from_us(1 + i), MSG_ETH_PACKET, &udp_to_group(0, b"req"))
                .unwrap();
        }
        h.run_until(SimTime::from_ms(1));
        for replica in 1..4usize {
            let got = h.collect(replica);
            assert_eq!(got.len(), 3, "every replica sees every OUM packet");
            let mut seqs = Vec::new();
            for f in got {
                let p = ParsedFrame::parse(&f).unwrap();
                assert!(p.checksums_ok, "sequencer rewrites checksums correctly");
                match p.l4 {
                    ParsedL4::Udp { header, payload } => {
                        assert_eq!(header.dst_port, 7777);
                        seqs.push(u64::from_le_bytes(payload[..8].try_into().unwrap()));
                    }
                    _ => panic!("expected UDP"),
                }
            }
            assert_eq!(seqs, vec![1, 2, 3], "sequence numbers are consecutive and ordered");
        }
        assert_eq!(h.switch.stats().sequenced, 3);
    }

    #[test]
    fn non_group_traffic_unaffected_by_sequencer() {
        let cfg = TofinoConfig {
            sequencer: Some(SequencerConfig {
                group_port: 7777,
                replica_ports: vec![1, 2],
            }),
            ..Default::default()
        };
        let mut h = Harness::new(cfg);
        let f = FrameBuilder::udp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::NotEct,
            1000,
            2000, // not the group port
            &42u64.to_le_bytes(),
        );
        h.peers[0].send_raw(SimTime::from_us(1), MSG_ETH_PACKET, &f).unwrap();
        h.run_until(SimTime::from_us(100));
        let got = h.collect(1);
        assert_eq!(got.len(), 1);
        let p = ParsedFrame::parse(&got[0]).unwrap();
        match p.l4 {
            ParsedL4::Udp { payload, .. } => {
                assert_eq!(u64::from_le_bytes(payload[..8].try_into().unwrap()), 42,
                    "payload of non-OUM traffic is untouched");
            }
            _ => panic!("expected UDP"),
        }
        assert_eq!(h.switch.stats().sequenced, 0);
    }
}
