//! Behavioural Ethernet switch (§6.4 of the paper).
//!
//! The switch polls packets from each SimBricks port, performs MAC learning,
//! switches each packet to the corresponding egress port (or floods unknown /
//! broadcast destinations), models per-port output queues with link bandwidth
//! and bounded capacity, and optionally marks ECN Congestion Experienced when
//! an output queue exceeds the marking threshold K — the knob swept by the
//! dctcp experiment of Fig. 1.

use std::collections::{BTreeMap, VecDeque};

use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simbricks_base::{Kernel, Model, OwnedMsg, PktBuf, PortId, SimTime, SyncLookahead};
use simbricks_eth::{send_packet_buf, serialization_delay, EthPacket};
use simbricks_proto::{frame_dst, frame_src, Ecn, Ipv4Header, MacAddr, ETH_HEADER_LEN};

/// Switch configuration.
#[derive(Clone, Copy, Debug)]
pub struct SwitchConfig {
    /// Number of Ethernet ports (must match the ports attached to the kernel,
    /// starting at port index `first_port`).
    pub ports: usize,
    /// Egress link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Maximum queued bytes per egress port; beyond this, packets are dropped.
    pub queue_capacity: usize,
    /// ECN marking threshold K in packets (as in DCTCP); `None` disables
    /// marking.
    pub ecn_threshold_pkts: Option<usize>,
    /// Per-packet forwarding latency of the switching fabric.
    pub forward_latency: SimTime,
    /// MAC-table entry lifetime: an entry whose source MAC has not been seen
    /// for longer than this is aged out, so traffic to a host that moved
    /// ports floods (and re-learns) instead of being black-holed at the old
    /// port forever. Real switches age at ~300 s; the default here is scaled
    /// to the millisecond-range virtual times of the harnesses.
    pub mac_ttl: SimTime,
    /// Maximum number of learned MAC entries; learning beyond this bound
    /// evicts the stalest entry (deterministically: oldest `last_seen`,
    /// ties broken by MAC order).
    pub mac_table_cap: usize,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 2,
            bandwidth_bps: simbricks_base::bw::B10G,
            queue_capacity: 512 * 1024,
            ecn_threshold_pkts: None,
            forward_latency: SimTime::from_ns(300),
            mac_ttl: SimTime::from_ms(100),
            mac_table_cap: 1024,
        }
    }
}

struct EgressQueue {
    /// Queued frames: pooled buffers, so a flood enqueues N references to
    /// one shared segment instead of N byte copies.
    queue: VecDeque<PktBuf>,
    queued_bytes: usize,
    /// Time when the link becomes free after the packet currently serializing.
    busy_until: SimTime,
    /// Whether a departure timer is scheduled.
    departing: bool,
}

impl EgressQueue {
    fn new() -> Self {
        EgressQueue {
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy_until: SimTime::ZERO,
            departing: false,
        }
    }
}

/// Counters reported by the switch after a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SwitchStats {
    pub forwarded: u64,
    pub flooded: u64,
    pub dropped: u64,
    pub ecn_marked: u64,
    /// MAC-table entries removed because they exceeded `mac_ttl`.
    pub mac_aged: u64,
    /// MAC-table entries evicted to respect `mac_table_cap`.
    pub mac_evicted: u64,
}

/// One learned MAC-table entry.
#[derive(Clone, Copy, Debug)]
struct MacEntry {
    port: usize,
    /// Last virtual time a frame *from* this MAC was seen (refreshed on
    /// learning, not on lookup, as in real switches).
    last_seen: SimTime,
}

/// The behavioural switch model.
pub struct SwitchBm {
    cfg: SwitchConfig,
    /// Learned MAC -> (port, last_seen). Ordered map: eviction scans and
    /// snapshot encoding iterate in address order structurally, so hash
    /// order can never pick a victim or reorder a checkpoint.
    mac_table: BTreeMap<MacAddr, MacEntry>,
    egress: Vec<EgressQueue>,
    stats: SwitchStats,
}

impl SwitchBm {
    pub fn new(cfg: SwitchConfig) -> Self {
        assert!(cfg.mac_table_cap > 0, "mac_table_cap must be positive");
        SwitchBm {
            egress: (0..cfg.ports).map(|_| EgressQueue::new()).collect(),
            cfg,
            mac_table: BTreeMap::new(),
            stats: SwitchStats::default(),
        }
    }

    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Current MAC table size (learning coverage; may include entries whose
    /// TTL has expired but that have not been looked up since).
    pub fn mac_table_len(&self) -> usize {
        self.mac_table.len()
    }

    fn entry_expired(&self, e: &MacEntry, now: SimTime) -> bool {
        now > e.last_seen.saturating_add(self.cfg.mac_ttl)
    }

    /// Learn (or refresh) `src` on `port`, bounding the table size.
    fn learn(&mut self, now: SimTime, src: MacAddr, port: usize) {
        if let Some(e) = self.mac_table.get_mut(&src) {
            e.port = port;
            e.last_seen = now;
            return;
        }
        if self.mac_table.len() >= self.cfg.mac_table_cap {
            // Prefer dropping already-expired entries; otherwise evict the
            // stalest one. `min_by_key` over (last_seen, mac) plus the
            // ordered map makes the victim deterministic twice over.
            let victim = self
                .mac_table
                .iter()
                .min_by_key(|(mac, e)| (e.last_seen, **mac))
                .map(|(mac, e)| (*mac, *e));
            if let Some((mac, e)) = victim {
                self.mac_table.remove(&mac);
                if self.entry_expired(&e, now) {
                    self.stats.mac_aged += 1;
                } else {
                    self.stats.mac_evicted += 1;
                }
            }
        }
        self.mac_table.insert(src, MacEntry { port, last_seen: now });
    }

    /// Look up the egress port for `dst`, aging out a stale entry (so the
    /// frame floods and the table re-learns once the host speaks again).
    fn lookup(&mut self, now: SimTime, dst: MacAddr) -> Option<usize> {
        match self.mac_table.get(&dst) {
            Some(e) if !self.entry_expired(e, now) => Some(e.port),
            Some(_) => {
                self.mac_table.remove(&dst);
                self.stats.mac_aged += 1;
                None
            }
            None => None,
        }
    }

    fn enqueue(&mut self, k: &mut Kernel, port: usize, mut frame: PktBuf) {
        let q = &mut self.egress[port];
        if q.queued_bytes + frame.len() > self.cfg.queue_capacity {
            self.stats.dropped += 1;
            k.log("sw_drop", port as u64, frame.len() as u64);
            return;
        }
        // DCTCP-style marking: mark CE if the instantaneous queue length
        // (in packets) exceeds K and the packet is ECN-capable.
        if let Some(kthresh) = self.cfg.ecn_threshold_pkts {
            if q.queue.len() >= kthresh {
                let is_ect = Ipv4Header::parse(&frame[ETH_HEADER_LEN.min(frame.len())..])
                    .map(|(h, _, _)| h.ecn.is_ect())
                    .unwrap_or(false);
                if is_ect && Ipv4Header::set_ecn_in_place(frame.make_mut(), ETH_HEADER_LEN, Ecn::Ce) {
                    self.stats.ecn_marked += 1;
                    k.log("sw_mark", port as u64, q.queue.len() as u64);
                }
            }
        }
        q.queued_bytes += frame.len();
        q.queue.push_back(frame);
        self.schedule_departure(k, port);
    }

    fn schedule_departure(&mut self, k: &mut Kernel, port: usize) {
        let now = k.now();
        let q = &mut self.egress[port];
        if q.departing || q.queue.is_empty() {
            return;
        }
        let frame_len = q.queue.front().unwrap().len();
        let start = now.max(q.busy_until);
        let done = start + serialization_delay(frame_len, self.cfg.bandwidth_bps);
        q.busy_until = done;
        q.departing = true;
        k.schedule_at(done, port as u64);
    }

    fn depart(&mut self, k: &mut Kernel, port: usize) {
        let frame = {
            let q = &mut self.egress[port];
            q.departing = false;
            match q.queue.pop_front() {
                Some(f) => {
                    q.queued_bytes -= f.len();
                    f
                }
                None => return,
            }
        };
        k.log("sw_tx", port as u64, frame.len() as u64);
        send_packet_buf(k, PortId(port), frame);
        self.schedule_departure(k, port);
    }
}

impl Model for SwitchBm {
    // A store-and-forward switch never emits a frame on the port it arrived
    // on: unicast output to the ingress port is dropped and floods skip the
    // ingress port, so an input pending on port p can never cause a send on
    // p. Declaring zero lookahead lets hierarchical sync widen each port's
    // promise past its own pending input.
    fn sync_lookahead(&self) -> Option<SyncLookahead> {
        Some(SyncLookahead::ExcludeSelf(SimTime::ZERO))
    }

    fn on_msg(&mut self, k: &mut Kernel, port: PortId, msg: OwnedMsg) {
        let Some(pkt) = EthPacket::decode_owned(msg) else {
            return;
        };
        let in_port = port.0;
        k.log("sw_rx", in_port as u64, pkt.len() as u64);
        // MAC learning (with TTL refresh and table bounding).
        let now = k.now();
        if let Some(src) = frame_src(&pkt.frame) {
            if !src.is_multicast() {
                self.learn(now, src, in_port);
            }
        }
        let dst = frame_dst(&pkt.frame);
        let out_port = dst.and_then(|d| {
            if d.is_broadcast() || d.is_multicast() {
                None
            } else {
                self.lookup(now, d)
            }
        });
        // The forwarding decision itself takes a small fixed latency; model it
        // by delaying the enqueue via busy time on the egress side. For
        // simplicity the fabric latency is folded into the serialization
        // start time (it is tiny relative to queueing and link delays).
        match out_port {
            Some(p) if p != in_port => {
                self.stats.forwarded += 1;
                self.enqueue(k, p, pkt.frame);
            }
            Some(_) => { /* destination is on the ingress port: drop */ }
            None => {
                // Flood to all other ports: every egress enqueue is a
                // refcount bump on the shared buffer; the frame is *moved*
                // (not cloned) into the last egress port.
                self.stats.flooded += 1;
                let last = (0..self.cfg.ports).rev().find(|p| *p != in_port);
                let mut frame = Some(pkt.frame);
                for p in 0..self.cfg.ports {
                    if p == in_port {
                        continue;
                    }
                    if Some(p) == last {
                        self.enqueue(k, p, frame.take().expect("moved once"));
                    } else {
                        self.enqueue(k, p, frame.clone().expect("still present"));
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, k: &mut Kernel, token: u64) {
        self.depart(k, token as usize);
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        // MAC table in canonical (address) order — the ordered map's own
        // iteration order — TTL state included.
        w.usize(self.mac_table.len());
        for (mac, e) in &self.mac_table {
            w.raw(mac.as_bytes());
            w.usize(e.port);
            w.time(e.last_seen);
        }
        w.usize(self.egress.len());
        for q in &self.egress {
            w.usize(q.queue.len());
            for frame in &q.queue {
                w.bytes(frame);
            }
            w.time(q.busy_until);
            w.bool(q.departing);
        }
        for v in [
            self.stats.forwarded,
            self.stats.flooded,
            self.stats.dropped,
            self.stats.ecn_marked,
            self.stats.mac_aged,
            self.stats.mac_evicted,
        ] {
            w.u64(v);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.mac_table.clear();
        for _ in 0..r.usize()? {
            let mac = MacAddr::from_slice(r.take(6)?)
                .ok_or_else(|| SnapError::Corrupt("mac address".into()))?;
            let port = r.usize()?;
            let last_seen = r.time()?;
            self.mac_table.insert(mac, MacEntry { port, last_seen });
        }
        let n = r.usize()?;
        if n != self.egress.len() {
            return Err(SnapError::Corrupt(format!(
                "switch egress port count mismatch (snapshot {n}, built {})",
                self.egress.len()
            )));
        }
        for q in &mut self.egress {
            q.queue.clear();
            q.queued_bytes = 0;
            for _ in 0..r.usize()? {
                let frame = PktBuf::from_vec(r.bytes()?);
                q.queued_bytes += frame.len();
                q.queue.push_back(frame);
            }
            q.busy_until = r.time()?;
            q.departing = r.bool()?;
        }
        self.stats.forwarded = r.u64()?;
        self.stats.flooded = r.u64()?;
        self.stats.dropped = r.u64()?;
        self.stats.ecn_marked = r.u64()?;
        self.stats.mac_aged = r.u64()?;
        self.stats.mac_evicted = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, StepOutcome};
    use simbricks_eth::MSG_ETH_PACKET;
    use simbricks_proto::{EthHeader, EtherType, FrameBuilder, Ipv4Addr, ParsedFrame};

    /// Harness: a switch with N ports, each connected to a test endpoint that
    /// injects/collects frames directly through the channel ends.
    struct Harness {
        kernel: Kernel,
        switch: SwitchBm,
        peers: Vec<simbricks_base::ChannelEnd>,
    }

    impl Harness {
        fn new(ports: usize, cfg: SwitchConfig) -> Self {
            let mut kernel = Kernel::new("switch", SimTime::from_ms(100));
            kernel.enable_log();
            let mut peers = Vec::new();
            for _ in 0..ports {
                let (a, b) = channel_pair(ChannelParams::default_sync());
                kernel.add_port(a);
                peers.push(b);
            }
            Harness {
                kernel,
                switch: SwitchBm::new(cfg),
                peers,
            }
        }

        fn inject(&mut self, port: usize, frame: &[u8], at: SimTime) {
            self.peers[port]
                .send_raw(at, MSG_ETH_PACKET, frame)
                .unwrap();
        }

        /// Let the peer endpoints promise up to `horizon` and run the switch.
        fn run_until(&mut self, horizon: SimTime) {
            for p in &mut self.peers {
                p.send_raw(horizon, simbricks_base::MSG_SYNC, &[]).unwrap();
            }
            loop {
                match self.kernel.step(&mut self.switch, 256) {
                    StepOutcome::Blocked(_) | StepOutcome::Paused | StepOutcome::Finished => break,
                    StepOutcome::Progressed => {}
                }
            }
        }

        fn collect(&mut self, port: usize) -> Vec<(SimTime, Vec<u8>)> {
            let mut out = Vec::new();
            while let Some(m) = self.peers[port].recv_raw() {
                if m.ty == MSG_ETH_PACKET {
                    out.push((m.timestamp, m.data.to_vec()));
                }
            }
            out
        }
    }

    fn test_frame(src_idx: u64, dst_idx: u64, len: usize) -> Vec<u8> {
        let eth = EthHeader::new(
            MacAddr::from_index(dst_idx),
            MacAddr::from_index(src_idx),
            EtherType::Other(0x1234),
        );
        eth.build_frame(&vec![0xaa; len])
    }

    #[test]
    fn floods_unknown_then_forwards_learned() {
        let mut h = Harness::new(3, SwitchConfig {
            ports: 3,
            ..Default::default()
        });
        // Host on port 0 (mac 1) talks to unknown mac 2: flood to 1 and 2.
        h.inject(0, &test_frame(1, 2, 100), SimTime::from_us(1));
        h.run_until(SimTime::from_us(50));
        assert_eq!(h.collect(1).len(), 1);
        assert_eq!(h.collect(2).len(), 1);
        assert_eq!(h.collect(0).len(), 0);
        // Reply from port 1 (mac 2): mac 1 is now learned -> unicast to port 0.
        h.inject(1, &test_frame(2, 1, 100), SimTime::from_us(60));
        h.run_until(SimTime::from_us(120));
        assert_eq!(h.collect(0).len(), 1);
        assert_eq!(h.collect(2).len(), 0);
        assert_eq!(h.switch.stats().flooded, 1);
        assert_eq!(h.switch.stats().forwarded, 1);
        assert_eq!(h.switch.mac_table_len(), 2);
    }

    /// The host behind mac 1 "moves" from port 0 to port 2 without speaking:
    /// without aging, its stale entry would black-hole all traffic at port 0
    /// forever. With a TTL the entry ages out, the next frame floods (and
    /// reaches the host at its new port), and the table re-learns the new
    /// port as soon as the host speaks.
    #[test]
    fn stale_mac_entry_ages_out_and_relearns_after_port_move() {
        let mut h = Harness::new(3, SwitchConfig {
            ports: 3,
            mac_ttl: SimTime::from_us(20),
            ..Default::default()
        });
        // Learn mac 1 on port 0, and mac 2 on port 1 so replies unicast.
        h.inject(0, &test_frame(1, 9, 60), SimTime::from_us(1));
        h.inject(1, &test_frame(2, 9, 60), SimTime::from_us(1));
        h.run_until(SimTime::from_us(5));
        for p in 0..3 {
            h.collect(p);
        }
        // Within the TTL: traffic to mac 1 is unicast to port 0.
        h.inject(1, &test_frame(2, 1, 100), SimTime::from_us(10));
        h.run_until(SimTime::from_us(15));
        assert_eq!(h.collect(0).len(), 1, "fresh entry forwards to port 0");
        assert_eq!(h.collect(2).len(), 0);
        // Beyond the TTL (mac 1 last *spoke* at 1 us; destination lookups do
        // not refresh): the entry is stale, the frame floods to all other
        // ports, so the silently-moved host (now on port 2) still gets it.
        h.inject(1, &test_frame(2, 1, 100), SimTime::from_us(40));
        h.run_until(SimTime::from_us(50));
        assert_eq!(h.collect(0).len(), 1, "flood reaches the old port");
        assert_eq!(h.collect(2).len(), 1, "flood reaches the host's new port");
        assert_eq!(h.switch.stats().mac_aged, 1, "stale entry aged out");
        // The host speaks from port 2: re-learned, traffic unicasts there.
        h.inject(2, &test_frame(1, 2, 60), SimTime::from_us(55));
        h.run_until(SimTime::from_us(60));
        h.collect(1);
        h.inject(1, &test_frame(2, 1, 100), SimTime::from_us(62));
        h.run_until(SimTime::from_us(70));
        assert_eq!(h.collect(2).len(), 1, "re-learned at the new port");
        assert_eq!(h.collect(0).len(), 0, "old port no longer receives");
    }

    #[test]
    fn mac_table_capacity_bound_evicts_stalest_entry() {
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            mac_table_cap: 2,
            ..Default::default()
        });
        h.inject(0, &test_frame(1, 9, 60), SimTime::from_us(1));
        h.run_until(SimTime::from_us(2));
        h.inject(0, &test_frame(2, 9, 60), SimTime::from_us(3));
        h.run_until(SimTime::from_us(4));
        assert_eq!(h.switch.mac_table_len(), 2);
        // Learning a third MAC evicts the stalest (mac 1, seen at 1 us).
        h.inject(0, &test_frame(3, 9, 60), SimTime::from_us(5));
        h.run_until(SimTime::from_us(6));
        assert_eq!(h.switch.mac_table_len(), 2, "table stays bounded");
        assert_eq!(h.switch.stats().mac_evicted, 1);
        h.collect(1);
        // mac 1 is gone (floods); macs 2 and 3 are still known (unicast).
        h.inject(1, &test_frame(9, 1, 100), SimTime::from_us(10));
        h.run_until(SimTime::from_us(15));
        let flooded_before = h.switch.stats().flooded;
        assert!(flooded_before >= 1, "evicted mac floods again");
        h.inject(1, &test_frame(9, 3, 100), SimTime::from_us(20));
        h.run_until(SimTime::from_us(25));
        assert_eq!(h.switch.stats().flooded, flooded_before, "mac 3 still unicast");
        assert_eq!(h.collect(0).len(), 2);
    }

    /// Regression (pooled buffers): flooding moves the frame into the last
    /// egress port and refcount-shares it into the others — every egress
    /// port must still emit bytes identical to the injected frame, exactly
    /// as the old clone-per-port code did.
    #[test]
    fn flood_emits_identical_bytes_on_every_egress_port() {
        let mut h = Harness::new(4, SwitchConfig {
            ports: 4,
            ..Default::default()
        });
        let frame = test_frame(1, 99, 300); // mac 99 unknown: floods
        h.inject(0, &frame, SimTime::from_us(1));
        h.run_until(SimTime::from_us(50));
        assert_eq!(h.collect(0).len(), 0, "never echoed to the ingress port");
        for p in 1..4 {
            let got = h.collect(p);
            assert_eq!(got.len(), 1, "port {p} got the flood");
            assert_eq!(got[0].1, frame, "port {p} bytes identical");
        }
        assert_eq!(h.switch.stats().flooded, 1);
    }

    /// Regression (pooled buffers): when one egress queue ECN-marks a
    /// flooded frame, the mark must not leak into the sibling ports' shared
    /// copies (copy-on-write isolation).
    #[test]
    fn ecn_mark_on_one_flood_copy_does_not_leak_into_siblings() {
        let mut h = Harness::new(3, SwitchConfig {
            ports: 3,
            ecn_threshold_pkts: Some(0), // mark everything queued
            ..Default::default()
        });
        let ip_frame = FrameBuilder::udp(
            MacAddr::from_index(100),
            MacAddr::from_index(200), // unknown: floods to ports 1 and 2
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::Ect0,
            1,
            2,
            &vec![0u8; 400],
        );
        h.inject(0, &ip_frame, SimTime::from_us(1));
        h.run_until(SimTime::from_us(50));
        for p in 1..3 {
            let got = h.collect(p);
            assert_eq!(got.len(), 1);
            let parsed = ParsedFrame::parse(&got[0].1).unwrap();
            assert_eq!(parsed.ipv4.unwrap().ecn, Ecn::Ce, "port {p} marked");
            assert!(parsed.checksums_ok, "mark kept checksums valid");
        }
        // Both egress copies were marked independently; the original
        // injected frame (still owned by the test) is untouched.
        assert_eq!(
            ParsedFrame::parse(&ip_frame).unwrap().ipv4.unwrap().ecn,
            Ecn::Ect0
        );
    }

    #[test]
    fn serialization_delay_spaces_departures() {
        // Two back-to-back 1250 B frames at 10 Gbps: second departs 1 us later.
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            ..Default::default()
        });
        // Teach the switch where mac 2 lives to avoid flooding.
        h.inject(1, &test_frame(2, 9, 60), SimTime::from_ns(100));
        h.run_until(SimTime::from_us(5));
        h.collect(0);
        let t0 = SimTime::from_us(10);
        h.inject(0, &test_frame(1, 2, 1236), t0);
        h.inject(0, &test_frame(1, 2, 1236), t0);
        h.run_until(SimTime::from_us(100));
        let got = h.collect(1);
        assert_eq!(got.len(), 2);
        let gap = got[1].0 - got[0].0;
        assert_eq!(gap, SimTime::from_us(1), "1250B at 10G is 1us serialization");
    }

    #[test]
    fn queue_overflow_drops() {
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            queue_capacity: 3000,
            ..Default::default()
        });
        h.inject(1, &test_frame(2, 9, 60), SimTime::from_ns(100));
        h.run_until(SimTime::from_us(2));
        h.collect(0);
        for _ in 0..10 {
            h.inject(0, &test_frame(1, 2, 1000), SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(1));
        let delivered = h.collect(1).len();
        assert!(delivered < 10, "some frames must be dropped");
        assert_eq!(h.switch.stats().dropped as usize + delivered, 10);
    }

    #[test]
    fn ecn_marking_above_threshold() {
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            ecn_threshold_pkts: Some(2),
            ..Default::default()
        });
        // Learn destination mac.
        h.inject(1, &test_frame(200, 9, 60), SimTime::from_ns(100));
        h.run_until(SimTime::from_us(2));
        h.collect(0);
        // Burst of ECT(0) IP packets large enough to build a queue.
        let ip_frame = FrameBuilder::udp(
            MacAddr::from_index(100),
            MacAddr::from_index(200),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::Ect0,
            1,
            2,
            &vec![0u8; 1200],
        );
        for _ in 0..8 {
            h.inject(0, &ip_frame, SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(1));
        let got = h.collect(1);
        assert_eq!(got.len(), 8);
        let marked = got
            .iter()
            .filter(|(_, f)| {
                ParsedFrame::parse(f).unwrap().ipv4.unwrap().ecn == Ecn::Ce
            })
            .count();
        assert!(marked > 0, "queue beyond K must be CE-marked");
        assert!(marked < 8, "early packets below K stay unmarked");
        assert_eq!(h.switch.stats().ecn_marked as usize, marked);
    }

    #[test]
    fn non_ect_packets_never_marked() {
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            ecn_threshold_pkts: Some(1),
            ..Default::default()
        });
        h.inject(1, &test_frame(200, 9, 60), SimTime::from_ns(100));
        h.run_until(SimTime::from_us(2));
        h.collect(0);
        let ip_frame = FrameBuilder::udp(
            MacAddr::from_index(100),
            MacAddr::from_index(200),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::NotEct,
            1,
            2,
            &vec![0u8; 1200],
        );
        for _ in 0..6 {
            h.inject(0, &ip_frame, SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(1));
        let got = h.collect(1);
        assert_eq!(got.len(), 6);
        assert!(got
            .iter()
            .all(|(_, f)| ParsedFrame::parse(f).unwrap().ipv4.unwrap().ecn == Ecn::NotEct));
        assert_eq!(h.switch.stats().ecn_marked, 0);
    }
}
