//! Behavioural Ethernet switch (§6.4 of the paper).
//!
//! The switch polls packets from each SimBricks port, performs MAC learning,
//! switches each packet to the corresponding egress port (or floods unknown /
//! broadcast destinations), models per-port output queues with link bandwidth
//! and bounded capacity, and optionally marks ECN Congestion Experienced when
//! an output queue exceeds the marking threshold K — the knob swept by the
//! dctcp experiment of Fig. 1.

use std::collections::{BTreeMap, VecDeque};

use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simbricks_base::{
    mix_seed, Kernel, Model, OwnedMsg, PktBuf, PortId, SimTime, SyncLookahead,
};
use simbricks_eth::{send_packet_buf, serialization_delay, EthPacket};
use simbricks_proto::{frame_dst, frame_src, Ecn, Ipv4Header, MacAddr, ETH_HEADER_LEN};

/// Active queue management discipline of one egress port.
///
/// All disciplines are implemented with integer arithmetic and (where
/// probabilistic) a per-port seeded PRNG, so a given packet arrival sequence
/// always produces the same mark/drop sequence — on every executor and across
/// checkpoint/restore.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aqm {
    /// FIFO tail drop at `queue_capacity` only (the default).
    DropTail,
    /// DCTCP-style step marking: CE-mark every ECN-capable packet that
    /// arrives while the instantaneous queue holds at least `k_pkts` packets
    /// (the knob swept by the Fig. 1 experiment).
    DctcpThreshold {
        /// Marking threshold K in packets.
        k_pkts: usize,
    },
    /// Random Early Detection on the instantaneous queue length: below
    /// `min_pkts` do nothing; between `min_pkts` and `max_pkts` mark (ECT) or
    /// drop (non-ECT) with probability rising linearly to
    /// `max_prob_permille`; at or above `max_pkts` always mark/drop.
    Red {
        /// Queue length (packets) where random marking starts.
        min_pkts: usize,
        /// Queue length (packets) where the probability reaches its maximum.
        max_pkts: usize,
        /// Probability in permille at `max_pkts` (0..=1000).
        max_prob_permille: u16,
    },
    /// CoDel: drop (or CE-mark, for ECN-capable traffic) at dequeue when the
    /// head packet's sojourn time has stayed above `target` for at least
    /// `interval`, then again at `interval / sqrt(n)` while the condition
    /// persists (the standard control law).
    CoDel {
        /// Acceptable standing sojourn time.
        target: SimTime,
        /// Sliding window over which sojourn must exceed `target`.
        interval: SimTime,
    },
    /// DualPI2 (L4S): one PI controller produces a base probability `p'`;
    /// scalable (ECT(1)) traffic is CE-marked with probability `2·p'`,
    /// classic traffic is squared-coupled (marked if ECT(0), dropped if
    /// Not-ECT) with probability `p'²`.
    DualPi2 {
        /// Queueing-delay setpoint of the PI controller.
        target: SimTime,
        /// Controller update period.
        tupdate: SimTime,
    },
}

/// Per-port AQM controller state (PRNG + CoDel/PI variables). All fields are
/// snapshotted: restore resumes the mark/drop sequence bit-identically.
#[derive(Clone, Copy, Debug)]
struct AqmState {
    /// xorshift64* state for probabilistic disciplines.
    rng: u64,
    /// CoDel: when sojourn first exceeded target (ZERO = not above).
    first_above: SimTime,
    /// CoDel: next scheduled drop while in dropping state.
    drop_next: SimTime,
    /// CoDel: drops in the current dropping episode (control-law divisor).
    drop_count: u64,
    /// CoDel: currently in the dropping state.
    dropping: bool,
    /// DualPI2: base probability p' in parts per million.
    pi_prob_ppm: u64,
    /// DualPI2: virtual time of the last controller update.
    pi_last_update: SimTime,
    /// DualPI2: queue delay at the last update (derivative term).
    pi_prev_qdelay: SimTime,
}

impl AqmState {
    fn new(seed: u64, port: usize) -> Self {
        AqmState {
            rng: mix_seed(seed, port as u64),
            first_above: SimTime::ZERO,
            drop_next: SimTime::ZERO,
            drop_count: 0,
            dropping: false,
            pi_prob_ppm: 0,
            pi_last_update: SimTime::ZERO,
            pi_prev_qdelay: SimTime::ZERO,
        }
    }

    fn draw(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in 0..1_000_000 (parts per million).
    fn draw_ppm(&mut self) -> u64 {
        self.draw() % 1_000_000
    }
}

/// Integer square root (floor), for the CoDel control law.
pub(crate) fn isqrt(n: u64) -> u64 {
    if n < 2 {
        return n.max(1);
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x
}

/// Switch configuration.
#[derive(Clone, Copy, Debug)]
pub struct SwitchConfig {
    /// Number of Ethernet ports (must match the ports attached to the kernel,
    /// starting at port index `first_port`).
    pub ports: usize,
    /// Egress link bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Maximum queued bytes per egress port; beyond this, packets are dropped.
    pub queue_capacity: usize,
    /// ECN marking threshold K in packets (as in DCTCP); `None` disables
    /// marking.
    pub ecn_threshold_pkts: Option<usize>,
    /// Per-packet forwarding latency of the switching fabric.
    pub forward_latency: SimTime,
    /// MAC-table entry lifetime: an entry whose source MAC has not been seen
    /// for longer than this is aged out, so traffic to a host that moved
    /// ports floods (and re-learns) instead of being black-holed at the old
    /// port forever. Real switches age at ~300 s; the default here is scaled
    /// to the millisecond-range virtual times of the harnesses.
    pub mac_ttl: SimTime,
    /// Maximum number of learned MAC entries; learning beyond this bound
    /// evicts the stalest entry (deterministically: oldest `last_seen`,
    /// ties broken by MAC order).
    pub mac_table_cap: usize,
    /// Queue discipline applied to every egress port. `None` falls back to
    /// the legacy behaviour: [`Aqm::DctcpThreshold`] if `ecn_threshold_pkts`
    /// is set, else [`Aqm::DropTail`]. Individual ports can be overridden
    /// with [`SwitchBm::set_port_aqm`].
    pub aqm: Option<Aqm>,
    /// Seed for the per-port AQM PRNGs (probabilistic disciplines).
    pub seed: u64,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 2,
            bandwidth_bps: simbricks_base::bw::B10G,
            queue_capacity: 512 * 1024,
            ecn_threshold_pkts: None,
            forward_latency: SimTime::from_ns(300),
            mac_ttl: SimTime::from_ms(100),
            mac_table_cap: 1024,
            aqm: None,
            seed: 0,
        }
    }
}

struct EgressQueue {
    /// Queued frames with their enqueue time (for sojourn-based AQMs):
    /// pooled buffers, so a flood enqueues N references to one shared
    /// segment instead of N byte copies.
    queue: VecDeque<(SimTime, PktBuf)>,
    queued_bytes: usize,
    /// Time when the link becomes free after the packet currently serializing.
    busy_until: SimTime,
    /// Whether a departure timer is scheduled.
    departing: bool,
    /// AQM controller state for this port.
    aqm_state: AqmState,
}

impl EgressQueue {
    fn new(seed: u64, port: usize) -> Self {
        EgressQueue {
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy_until: SimTime::ZERO,
            departing: false,
            aqm_state: AqmState::new(seed, port),
        }
    }
}

/// Counters reported by the switch after a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SwitchStats {
    pub forwarded: u64,
    pub flooded: u64,
    pub dropped: u64,
    pub ecn_marked: u64,
    /// MAC-table entries removed because they exceeded `mac_ttl`.
    pub mac_aged: u64,
    /// MAC-table entries evicted to respect `mac_table_cap`.
    pub mac_evicted: u64,
    /// Packets dropped by an AQM decision (RED/CoDel/DualPI2), as opposed to
    /// `dropped`, which counts capacity tail drops.
    pub aqm_dropped: u64,
}

/// One learned MAC-table entry.
#[derive(Clone, Copy, Debug)]
struct MacEntry {
    port: usize,
    /// Last virtual time a frame *from* this MAC was seen (refreshed on
    /// learning, not on lookup, as in real switches).
    last_seen: SimTime,
}

/// The behavioural switch model.
pub struct SwitchBm {
    cfg: SwitchConfig,
    /// Learned MAC -> (port, last_seen). Ordered map: eviction scans and
    /// snapshot encoding iterate in address order structurally, so hash
    /// order can never pick a victim or reorder a checkpoint.
    mac_table: BTreeMap<MacAddr, MacEntry>,
    egress: Vec<EgressQueue>,
    /// Per-port queue discipline (resolved from the config, overridable).
    aqm: Vec<Aqm>,
    stats: SwitchStats,
}

impl SwitchBm {
    pub fn new(cfg: SwitchConfig) -> Self {
        assert!(cfg.mac_table_cap > 0, "mac_table_cap must be positive");
        let default_aqm = cfg.aqm.unwrap_or(match cfg.ecn_threshold_pkts {
            Some(k) => Aqm::DctcpThreshold { k_pkts: k },
            None => Aqm::DropTail,
        });
        SwitchBm {
            egress: (0..cfg.ports).map(|p| EgressQueue::new(cfg.seed, p)).collect(),
            aqm: vec![default_aqm; cfg.ports],
            cfg,
            mac_table: BTreeMap::new(),
            stats: SwitchStats::default(),
        }
    }

    /// Override the queue discipline of one egress port (before the run).
    pub fn set_port_aqm(&mut self, port: usize, aqm: Aqm) {
        self.aqm[port] = aqm;
    }

    /// The queue discipline active on `port`.
    pub fn port_aqm(&self, port: usize) -> Aqm {
        self.aqm[port]
    }

    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Current MAC table size (learning coverage; may include entries whose
    /// TTL has expired but that have not been looked up since).
    pub fn mac_table_len(&self) -> usize {
        self.mac_table.len()
    }

    fn entry_expired(&self, e: &MacEntry, now: SimTime) -> bool {
        now > e.last_seen.saturating_add(self.cfg.mac_ttl)
    }

    /// Learn (or refresh) `src` on `port`, bounding the table size.
    fn learn(&mut self, now: SimTime, src: MacAddr, port: usize) {
        if let Some(e) = self.mac_table.get_mut(&src) {
            e.port = port;
            e.last_seen = now;
            return;
        }
        if self.mac_table.len() >= self.cfg.mac_table_cap {
            // Prefer dropping already-expired entries; otherwise evict the
            // stalest one. `min_by_key` over (last_seen, mac) plus the
            // ordered map makes the victim deterministic twice over.
            let victim = self
                .mac_table
                .iter()
                .min_by_key(|(mac, e)| (e.last_seen, **mac))
                .map(|(mac, e)| (*mac, *e));
            if let Some((mac, e)) = victim {
                self.mac_table.remove(&mac);
                if self.entry_expired(&e, now) {
                    self.stats.mac_aged += 1;
                } else {
                    self.stats.mac_evicted += 1;
                }
            }
        }
        self.mac_table.insert(src, MacEntry { port, last_seen: now });
    }

    /// Look up the egress port for `dst`, aging out a stale entry (so the
    /// frame floods and the table re-learns once the host speaks again).
    fn lookup(&mut self, now: SimTime, dst: MacAddr) -> Option<usize> {
        match self.mac_table.get(&dst) {
            Some(e) if !self.entry_expired(e, now) => Some(e.port),
            Some(_) => {
                self.mac_table.remove(&dst);
                self.stats.mac_aged += 1;
                None
            }
            None => None,
        }
    }

    fn enqueue(&mut self, k: &mut Kernel, port: usize, mut frame: PktBuf) {
        let q = &mut self.egress[port];
        if q.queued_bytes + frame.len() > self.cfg.queue_capacity {
            self.stats.dropped += 1;
            k.log("sw_drop", port as u64, frame.len() as u64);
            return;
        }
        let now = k.now();
        match self.aqm[port] {
            Aqm::DropTail => {}
            // DCTCP-style marking: mark CE if the instantaneous queue length
            // (in packets) exceeds K and the packet is ECN-capable.
            Aqm::DctcpThreshold { k_pkts } => {
                if q.queue.len() >= k_pkts
                    && ect(&frame)
                    && Ipv4Header::set_ecn_in_place(frame.make_mut(), ETH_HEADER_LEN, Ecn::Ce)
                {
                    self.stats.ecn_marked += 1;
                    k.log("sw_mark", port as u64, q.queue.len() as u64);
                }
            }
            Aqm::Red { min_pkts, max_pkts, max_prob_permille } => {
                let qlen = q.queue.len();
                let hit = if qlen >= max_pkts {
                    true
                } else if qlen > min_pkts && max_pkts > min_pkts {
                    // Linear ramp min..max, scaled to parts per million so
                    // the permille config divides evenly.
                    let prob_ppm = max_prob_permille as u64 * 1000 * (qlen - min_pkts) as u64
                        / (max_pkts - min_pkts) as u64;
                    q.aqm_state.draw_ppm() < prob_ppm
                } else {
                    false
                };
                if hit {
                    if ect(&frame)
                        && Ipv4Header::set_ecn_in_place(frame.make_mut(), ETH_HEADER_LEN, Ecn::Ce)
                    {
                        self.stats.ecn_marked += 1;
                        k.log("sw_mark", port as u64, qlen as u64);
                    } else {
                        self.stats.aqm_dropped += 1;
                        k.log("sw_aqm_drop", port as u64, frame.len() as u64);
                        return;
                    }
                }
            }
            // CoDel acts at dequeue (see schedule_departure); nothing here.
            Aqm::CoDel { .. } => {}
            Aqm::DualPi2 { target, tupdate } => {
                // Lazy PI update: advance the controller by however many
                // whole periods elapsed (bounded, so an idle port cannot
                // spin), using queueing delay derived from the backlog.
                let st = &mut q.aqm_state;
                if tupdate > SimTime::ZERO && now >= st.pi_last_update.saturating_add(tupdate) {
                    let steps =
                        ((now - st.pi_last_update).as_ps() / tupdate.as_ps()).min(4) as u32;
                    let qdelay = SimTime::from_ps(
                        (q.queued_bytes as u128 * 8 * 1_000_000_000_000
                            / self.cfg.bandwidth_bps as u128) as u64,
                    );
                    for _ in 0..steps {
                        // Integer PI gains: proportional term 1/16 ppm per ns
                        // of error, derivative term 1/4 ppm per ns of change.
                        let err_ns =
                            qdelay.as_ps() as i64 / 1000 - target.as_ps() as i64 / 1000;
                        let diff_ns = qdelay.as_ps() as i64 / 1000
                            - st.pi_prev_qdelay.as_ps() as i64 / 1000;
                        let delta = err_ns / 16 + diff_ns / 4;
                        st.pi_prob_ppm =
                            (st.pi_prob_ppm as i64 + delta).clamp(0, 1_000_000) as u64;
                        st.pi_prev_qdelay = qdelay;
                    }
                    st.pi_last_update = SimTime::from_ps(
                        st.pi_last_update.as_ps() + steps as u64 * tupdate.as_ps(),
                    );
                }
                let p = st.pi_prob_ppm;
                // ECT(1) is the scalable (L4S) queue: linear 2·p' marking.
                // Everything else is classic: squared-coupled p'², marked if
                // ECN-capable, dropped otherwise.
                let l4s = Ipv4Header::parse(&frame[ETH_HEADER_LEN.min(frame.len())..])
                    .map(|(h, _, _)| h.ecn == Ecn::Ect1)
                    .unwrap_or(false);
                let prob_ppm = if l4s { (2 * p).min(1_000_000) } else { p * p / 1_000_000 };
                if prob_ppm > 0 && st.draw_ppm() < prob_ppm {
                    if ect(&frame)
                        && Ipv4Header::set_ecn_in_place(frame.make_mut(), ETH_HEADER_LEN, Ecn::Ce)
                    {
                        self.stats.ecn_marked += 1;
                        k.log("sw_mark", port as u64, q.queue.len() as u64);
                    } else {
                        self.stats.aqm_dropped += 1;
                        k.log("sw_aqm_drop", port as u64, frame.len() as u64);
                        return;
                    }
                }
            }
        }
        let q = &mut self.egress[port];
        q.queued_bytes += frame.len();
        q.queue.push_back((now, frame));
        self.schedule_departure(k, port);
    }

    fn schedule_departure(&mut self, k: &mut Kernel, port: usize) {
        let now = k.now();
        if self.egress[port].departing || self.egress[port].queue.is_empty() {
            return;
        }
        let start = now.max(self.egress[port].busy_until);
        // CoDel inspects (and may drop or mark) the head packet at the moment
        // its transmission would begin.
        if let Aqm::CoDel { target, interval } = self.aqm[port] {
            self.codel_head(k, port, start, target, interval);
        }
        let q = &mut self.egress[port];
        let Some((_, head)) = q.queue.front() else {
            return;
        };
        let done = start + serialization_delay(head.len(), self.cfg.bandwidth_bps);
        q.busy_until = done;
        q.departing = true;
        k.schedule_at(done, port as u64);
    }

    /// The CoDel control law, applied to the head of `port`'s queue at
    /// dequeue time `start`. Non-ECT head packets selected for drop are
    /// removed (possibly several in a row, per the sqrt schedule); an
    /// ECN-capable head is CE-marked instead and transmitted.
    fn codel_head(
        &mut self,
        k: &mut Kernel,
        port: usize,
        start: SimTime,
        target: SimTime,
        interval: SimTime,
    ) {
        loop {
            let q = &mut self.egress[port];
            let Some((enq, _)) = q.queue.front() else {
                q.aqm_state.dropping = false;
                return;
            };
            let sojourn = start.saturating_sub(*enq);
            let st = &mut q.aqm_state;
            let ok_to_drop = if sojourn < target {
                st.first_above = SimTime::ZERO;
                false
            } else if st.first_above == SimTime::ZERO {
                st.first_above = start.saturating_add(interval);
                false
            } else {
                start >= st.first_above
            };
            if st.dropping {
                if !ok_to_drop {
                    st.dropping = false;
                    return;
                }
                if start < st.drop_next {
                    return;
                }
                st.drop_count += 1;
                st.drop_next = start
                    .saturating_add(SimTime::from_ps(interval.as_ps() / isqrt(st.drop_count)));
            } else {
                if !ok_to_drop {
                    return;
                }
                st.dropping = true;
                // Re-entering a recent dropping episode resumes at a higher
                // rate instead of restarting the schedule from 1.
                st.drop_count = if st.drop_count > 2 { st.drop_count - 2 } else { 1 };
                st.drop_next = start
                    .saturating_add(SimTime::from_ps(interval.as_ps() / isqrt(st.drop_count)));
            }
            // Selected: ECN-capable heads are marked and transmitted; others
            // are dropped and the next head is re-examined under the same law.
            let head = &mut q.queue.front_mut().unwrap().1;
            if ect(head)
                && Ipv4Header::set_ecn_in_place(head.make_mut(), ETH_HEADER_LEN, Ecn::Ce)
            {
                self.stats.ecn_marked += 1;
                k.log("sw_mark", port as u64, sojourn.as_ps());
                return;
            }
            let (_, dropped) = q.queue.pop_front().unwrap();
            q.queued_bytes -= dropped.len();
            self.stats.aqm_dropped += 1;
            k.log("sw_aqm_drop", port as u64, dropped.len() as u64);
        }
    }

    fn depart(&mut self, k: &mut Kernel, port: usize) {
        let frame = {
            let q = &mut self.egress[port];
            q.departing = false;
            match q.queue.pop_front() {
                Some((_, f)) => {
                    q.queued_bytes -= f.len();
                    f
                }
                None => return,
            }
        };
        k.log("sw_tx", port as u64, frame.len() as u64);
        send_packet_buf(k, PortId(port), frame);
        self.schedule_departure(k, port);
    }
}

/// True when the frame carries an ECN-capable IPv4 header.
fn ect(frame: &PktBuf) -> bool {
    Ipv4Header::parse(&frame[ETH_HEADER_LEN.min(frame.len())..])
        .map(|(h, _, _)| h.ecn.is_ect())
        .unwrap_or(false)
}

impl Model for SwitchBm {
    // A store-and-forward switch never emits a frame on the port it arrived
    // on: unicast output to the ingress port is dropped and floods skip the
    // ingress port, so an input pending on port p can never cause a send on
    // p. Declaring zero lookahead lets hierarchical sync widen each port's
    // promise past its own pending input.
    fn sync_lookahead(&self) -> Option<SyncLookahead> {
        Some(SyncLookahead::ExcludeSelf(SimTime::ZERO))
    }

    fn on_msg(&mut self, k: &mut Kernel, port: PortId, msg: OwnedMsg) {
        let Some(pkt) = EthPacket::decode_owned(msg) else {
            return;
        };
        let in_port = port.0;
        k.log("sw_rx", in_port as u64, pkt.len() as u64);
        // MAC learning (with TTL refresh and table bounding).
        let now = k.now();
        if let Some(src) = frame_src(&pkt.frame) {
            if !src.is_multicast() {
                self.learn(now, src, in_port);
            }
        }
        let dst = frame_dst(&pkt.frame);
        let out_port = dst.and_then(|d| {
            if d.is_broadcast() || d.is_multicast() {
                None
            } else {
                self.lookup(now, d)
            }
        });
        // The forwarding decision itself takes a small fixed latency; model it
        // by delaying the enqueue via busy time on the egress side. For
        // simplicity the fabric latency is folded into the serialization
        // start time (it is tiny relative to queueing and link delays).
        match out_port {
            Some(p) if p != in_port => {
                self.stats.forwarded += 1;
                self.enqueue(k, p, pkt.frame);
            }
            Some(_) => { /* destination is on the ingress port: drop */ }
            None => {
                // Flood to all other ports: every egress enqueue is a
                // refcount bump on the shared buffer; the frame is *moved*
                // (not cloned) into the last egress port.
                self.stats.flooded += 1;
                let last = (0..self.cfg.ports).rev().find(|p| *p != in_port);
                let mut frame = Some(pkt.frame);
                for p in 0..self.cfg.ports {
                    if p == in_port {
                        continue;
                    }
                    if Some(p) == last {
                        self.enqueue(k, p, frame.take().expect("moved once"));
                    } else {
                        self.enqueue(k, p, frame.clone().expect("still present"));
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, k: &mut Kernel, token: u64) {
        self.depart(k, token as usize);
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        // MAC table in canonical (address) order — the ordered map's own
        // iteration order — TTL state included.
        w.usize(self.mac_table.len());
        for (mac, e) in &self.mac_table {
            w.raw(mac.as_bytes());
            w.usize(e.port);
            w.time(e.last_seen);
        }
        w.usize(self.egress.len());
        for q in &self.egress {
            w.usize(q.queue.len());
            for (enq, frame) in &q.queue {
                w.time(*enq);
                w.bytes(frame);
            }
            w.time(q.busy_until);
            w.bool(q.departing);
            let st = &q.aqm_state;
            w.u64(st.rng);
            w.time(st.first_above);
            w.time(st.drop_next);
            w.u64(st.drop_count);
            w.bool(st.dropping);
            w.u64(st.pi_prob_ppm);
            w.time(st.pi_last_update);
            w.time(st.pi_prev_qdelay);
        }
        for v in [
            self.stats.forwarded,
            self.stats.flooded,
            self.stats.dropped,
            self.stats.ecn_marked,
            self.stats.mac_aged,
            self.stats.mac_evicted,
            self.stats.aqm_dropped,
        ] {
            w.u64(v);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.mac_table.clear();
        for _ in 0..r.usize()? {
            let mac = MacAddr::from_slice(r.take(6)?)
                .ok_or_else(|| SnapError::Corrupt("mac address".into()))?;
            let port = r.usize()?;
            let last_seen = r.time()?;
            self.mac_table.insert(mac, MacEntry { port, last_seen });
        }
        let n = r.usize()?;
        if n != self.egress.len() {
            return Err(SnapError::Corrupt(format!(
                "switch egress port count mismatch (snapshot {n}, built {})",
                self.egress.len()
            )));
        }
        for q in &mut self.egress {
            q.queue.clear();
            q.queued_bytes = 0;
            for _ in 0..r.usize()? {
                let enq = r.time()?;
                let frame = PktBuf::from_vec(r.bytes()?);
                q.queued_bytes += frame.len();
                q.queue.push_back((enq, frame));
            }
            q.busy_until = r.time()?;
            q.departing = r.bool()?;
            let st = &mut q.aqm_state;
            st.rng = r.u64()?;
            st.first_above = r.time()?;
            st.drop_next = r.time()?;
            st.drop_count = r.u64()?;
            st.dropping = r.bool()?;
            st.pi_prob_ppm = r.u64()?;
            st.pi_last_update = r.time()?;
            st.pi_prev_qdelay = r.time()?;
        }
        self.stats.forwarded = r.u64()?;
        self.stats.flooded = r.u64()?;
        self.stats.dropped = r.u64()?;
        self.stats.ecn_marked = r.u64()?;
        self.stats.mac_aged = r.u64()?;
        self.stats.mac_evicted = r.u64()?;
        self.stats.aqm_dropped = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, StepOutcome};
    use simbricks_eth::MSG_ETH_PACKET;
    use simbricks_proto::{EthHeader, EtherType, FrameBuilder, Ipv4Addr, ParsedFrame};

    /// Harness: a switch with N ports, each connected to a test endpoint that
    /// injects/collects frames directly through the channel ends.
    struct Harness {
        kernel: Kernel,
        switch: SwitchBm,
        peers: Vec<simbricks_base::ChannelEnd>,
    }

    impl Harness {
        fn new(ports: usize, cfg: SwitchConfig) -> Self {
            let mut kernel = Kernel::new("switch", SimTime::from_ms(100));
            kernel.enable_log();
            let mut peers = Vec::new();
            for _ in 0..ports {
                // Large burst tests drain the peers only after the run, so
                // the shared queue must hold every in-flight frame + SYNCs.
                let (a, b) = channel_pair(ChannelParams::default_sync().with_queue_len(1024));
                kernel.add_port(a);
                peers.push(b);
            }
            Harness {
                kernel,
                switch: SwitchBm::new(cfg),
                peers,
            }
        }

        fn inject(&mut self, port: usize, frame: &[u8], at: SimTime) {
            self.peers[port]
                .send_raw(at, MSG_ETH_PACKET, frame)
                .unwrap();
        }

        /// Let the peer endpoints promise up to `horizon` and run the switch.
        fn run_until(&mut self, horizon: SimTime) {
            for p in &mut self.peers {
                p.send_raw(horizon, simbricks_base::MSG_SYNC, &[]).unwrap();
            }
            loop {
                match self.kernel.step(&mut self.switch, 256) {
                    StepOutcome::Blocked(_) | StepOutcome::Paused | StepOutcome::Finished => break,
                    StepOutcome::Progressed => {}
                }
            }
        }

        fn collect(&mut self, port: usize) -> Vec<(SimTime, Vec<u8>)> {
            let mut out = Vec::new();
            while let Some(m) = self.peers[port].recv_raw() {
                if m.ty == MSG_ETH_PACKET {
                    out.push((m.timestamp, m.data.to_vec()));
                }
            }
            out
        }
    }

    fn test_frame(src_idx: u64, dst_idx: u64, len: usize) -> Vec<u8> {
        let eth = EthHeader::new(
            MacAddr::from_index(dst_idx),
            MacAddr::from_index(src_idx),
            EtherType::Other(0x1234),
        );
        eth.build_frame(&vec![0xaa; len])
    }

    #[test]
    fn floods_unknown_then_forwards_learned() {
        let mut h = Harness::new(3, SwitchConfig {
            ports: 3,
            ..Default::default()
        });
        // Host on port 0 (mac 1) talks to unknown mac 2: flood to 1 and 2.
        h.inject(0, &test_frame(1, 2, 100), SimTime::from_us(1));
        h.run_until(SimTime::from_us(50));
        assert_eq!(h.collect(1).len(), 1);
        assert_eq!(h.collect(2).len(), 1);
        assert_eq!(h.collect(0).len(), 0);
        // Reply from port 1 (mac 2): mac 1 is now learned -> unicast to port 0.
        h.inject(1, &test_frame(2, 1, 100), SimTime::from_us(60));
        h.run_until(SimTime::from_us(120));
        assert_eq!(h.collect(0).len(), 1);
        assert_eq!(h.collect(2).len(), 0);
        assert_eq!(h.switch.stats().flooded, 1);
        assert_eq!(h.switch.stats().forwarded, 1);
        assert_eq!(h.switch.mac_table_len(), 2);
    }

    /// The host behind mac 1 "moves" from port 0 to port 2 without speaking:
    /// without aging, its stale entry would black-hole all traffic at port 0
    /// forever. With a TTL the entry ages out, the next frame floods (and
    /// reaches the host at its new port), and the table re-learns the new
    /// port as soon as the host speaks.
    #[test]
    fn stale_mac_entry_ages_out_and_relearns_after_port_move() {
        let mut h = Harness::new(3, SwitchConfig {
            ports: 3,
            mac_ttl: SimTime::from_us(20),
            ..Default::default()
        });
        // Learn mac 1 on port 0, and mac 2 on port 1 so replies unicast.
        h.inject(0, &test_frame(1, 9, 60), SimTime::from_us(1));
        h.inject(1, &test_frame(2, 9, 60), SimTime::from_us(1));
        h.run_until(SimTime::from_us(5));
        for p in 0..3 {
            h.collect(p);
        }
        // Within the TTL: traffic to mac 1 is unicast to port 0.
        h.inject(1, &test_frame(2, 1, 100), SimTime::from_us(10));
        h.run_until(SimTime::from_us(15));
        assert_eq!(h.collect(0).len(), 1, "fresh entry forwards to port 0");
        assert_eq!(h.collect(2).len(), 0);
        // Beyond the TTL (mac 1 last *spoke* at 1 us; destination lookups do
        // not refresh): the entry is stale, the frame floods to all other
        // ports, so the silently-moved host (now on port 2) still gets it.
        h.inject(1, &test_frame(2, 1, 100), SimTime::from_us(40));
        h.run_until(SimTime::from_us(50));
        assert_eq!(h.collect(0).len(), 1, "flood reaches the old port");
        assert_eq!(h.collect(2).len(), 1, "flood reaches the host's new port");
        assert_eq!(h.switch.stats().mac_aged, 1, "stale entry aged out");
        // The host speaks from port 2: re-learned, traffic unicasts there.
        h.inject(2, &test_frame(1, 2, 60), SimTime::from_us(55));
        h.run_until(SimTime::from_us(60));
        h.collect(1);
        h.inject(1, &test_frame(2, 1, 100), SimTime::from_us(62));
        h.run_until(SimTime::from_us(70));
        assert_eq!(h.collect(2).len(), 1, "re-learned at the new port");
        assert_eq!(h.collect(0).len(), 0, "old port no longer receives");
    }

    #[test]
    fn mac_table_capacity_bound_evicts_stalest_entry() {
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            mac_table_cap: 2,
            ..Default::default()
        });
        h.inject(0, &test_frame(1, 9, 60), SimTime::from_us(1));
        h.run_until(SimTime::from_us(2));
        h.inject(0, &test_frame(2, 9, 60), SimTime::from_us(3));
        h.run_until(SimTime::from_us(4));
        assert_eq!(h.switch.mac_table_len(), 2);
        // Learning a third MAC evicts the stalest (mac 1, seen at 1 us).
        h.inject(0, &test_frame(3, 9, 60), SimTime::from_us(5));
        h.run_until(SimTime::from_us(6));
        assert_eq!(h.switch.mac_table_len(), 2, "table stays bounded");
        assert_eq!(h.switch.stats().mac_evicted, 1);
        h.collect(1);
        // mac 1 is gone (floods); macs 2 and 3 are still known (unicast).
        h.inject(1, &test_frame(9, 1, 100), SimTime::from_us(10));
        h.run_until(SimTime::from_us(15));
        let flooded_before = h.switch.stats().flooded;
        assert!(flooded_before >= 1, "evicted mac floods again");
        h.inject(1, &test_frame(9, 3, 100), SimTime::from_us(20));
        h.run_until(SimTime::from_us(25));
        assert_eq!(h.switch.stats().flooded, flooded_before, "mac 3 still unicast");
        assert_eq!(h.collect(0).len(), 2);
    }

    /// Regression (pooled buffers): flooding moves the frame into the last
    /// egress port and refcount-shares it into the others — every egress
    /// port must still emit bytes identical to the injected frame, exactly
    /// as the old clone-per-port code did.
    #[test]
    fn flood_emits_identical_bytes_on_every_egress_port() {
        let mut h = Harness::new(4, SwitchConfig {
            ports: 4,
            ..Default::default()
        });
        let frame = test_frame(1, 99, 300); // mac 99 unknown: floods
        h.inject(0, &frame, SimTime::from_us(1));
        h.run_until(SimTime::from_us(50));
        assert_eq!(h.collect(0).len(), 0, "never echoed to the ingress port");
        for p in 1..4 {
            let got = h.collect(p);
            assert_eq!(got.len(), 1, "port {p} got the flood");
            assert_eq!(got[0].1, frame, "port {p} bytes identical");
        }
        assert_eq!(h.switch.stats().flooded, 1);
    }

    /// Regression (pooled buffers): when one egress queue ECN-marks a
    /// flooded frame, the mark must not leak into the sibling ports' shared
    /// copies (copy-on-write isolation).
    #[test]
    fn ecn_mark_on_one_flood_copy_does_not_leak_into_siblings() {
        let mut h = Harness::new(3, SwitchConfig {
            ports: 3,
            ecn_threshold_pkts: Some(0), // mark everything queued
            ..Default::default()
        });
        let ip_frame = FrameBuilder::udp(
            MacAddr::from_index(100),
            MacAddr::from_index(200), // unknown: floods to ports 1 and 2
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::Ect0,
            1,
            2,
            &vec![0u8; 400],
        );
        h.inject(0, &ip_frame, SimTime::from_us(1));
        h.run_until(SimTime::from_us(50));
        for p in 1..3 {
            let got = h.collect(p);
            assert_eq!(got.len(), 1);
            let parsed = ParsedFrame::parse(&got[0].1).unwrap();
            assert_eq!(parsed.ipv4.unwrap().ecn, Ecn::Ce, "port {p} marked");
            assert!(parsed.checksums_ok, "mark kept checksums valid");
        }
        // Both egress copies were marked independently; the original
        // injected frame (still owned by the test) is untouched.
        assert_eq!(
            ParsedFrame::parse(&ip_frame).unwrap().ipv4.unwrap().ecn,
            Ecn::Ect0
        );
    }

    #[test]
    fn serialization_delay_spaces_departures() {
        // Two back-to-back 1250 B frames at 10 Gbps: second departs 1 us later.
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            ..Default::default()
        });
        // Teach the switch where mac 2 lives to avoid flooding.
        h.inject(1, &test_frame(2, 9, 60), SimTime::from_ns(100));
        h.run_until(SimTime::from_us(5));
        h.collect(0);
        let t0 = SimTime::from_us(10);
        h.inject(0, &test_frame(1, 2, 1236), t0);
        h.inject(0, &test_frame(1, 2, 1236), t0);
        h.run_until(SimTime::from_us(100));
        let got = h.collect(1);
        assert_eq!(got.len(), 2);
        let gap = got[1].0 - got[0].0;
        assert_eq!(gap, SimTime::from_us(1), "1250B at 10G is 1us serialization");
    }

    #[test]
    fn queue_overflow_drops() {
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            queue_capacity: 3000,
            ..Default::default()
        });
        h.inject(1, &test_frame(2, 9, 60), SimTime::from_ns(100));
        h.run_until(SimTime::from_us(2));
        h.collect(0);
        for _ in 0..10 {
            h.inject(0, &test_frame(1, 2, 1000), SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(1));
        let delivered = h.collect(1).len();
        assert!(delivered < 10, "some frames must be dropped");
        assert_eq!(h.switch.stats().dropped as usize + delivered, 10);
    }

    #[test]
    fn ecn_marking_above_threshold() {
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            ecn_threshold_pkts: Some(2),
            ..Default::default()
        });
        // Learn destination mac.
        h.inject(1, &test_frame(200, 9, 60), SimTime::from_ns(100));
        h.run_until(SimTime::from_us(2));
        h.collect(0);
        // Burst of ECT(0) IP packets large enough to build a queue.
        let ip_frame = FrameBuilder::udp(
            MacAddr::from_index(100),
            MacAddr::from_index(200),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::Ect0,
            1,
            2,
            &vec![0u8; 1200],
        );
        for _ in 0..8 {
            h.inject(0, &ip_frame, SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(1));
        let got = h.collect(1);
        assert_eq!(got.len(), 8);
        let marked = got
            .iter()
            .filter(|(_, f)| {
                ParsedFrame::parse(f).unwrap().ipv4.unwrap().ecn == Ecn::Ce
            })
            .count();
        assert!(marked > 0, "queue beyond K must be CE-marked");
        assert!(marked < 8, "early packets below K stay unmarked");
        assert_eq!(h.switch.stats().ecn_marked as usize, marked);
    }

    #[test]
    fn non_ect_packets_never_marked() {
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            ecn_threshold_pkts: Some(1),
            ..Default::default()
        });
        h.inject(1, &test_frame(200, 9, 60), SimTime::from_ns(100));
        h.run_until(SimTime::from_us(2));
        h.collect(0);
        let ip_frame = FrameBuilder::udp(
            MacAddr::from_index(100),
            MacAddr::from_index(200),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ecn::NotEct,
            1,
            2,
            &vec![0u8; 1200],
        );
        for _ in 0..6 {
            h.inject(0, &ip_frame, SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(1));
        let got = h.collect(1);
        assert_eq!(got.len(), 6);
        assert!(got
            .iter()
            .all(|(_, f)| ParsedFrame::parse(f).unwrap().ipv4.unwrap().ecn == Ecn::NotEct));
        assert_eq!(h.switch.stats().ecn_marked, 0);
    }

    fn ip_burst_harness(aqm: Aqm, ecn: Ecn, n: usize, len: usize) -> (Harness, usize) {
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            aqm: Some(aqm),
            seed: 42,
            ..Default::default()
        });
        h.inject(1, &test_frame(200, 9, 60), SimTime::from_ns(100));
        h.run_until(SimTime::from_us(2));
        h.collect(0);
        let ip_frame = FrameBuilder::udp(
            MacAddr::from_index(100),
            MacAddr::from_index(200),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            ecn,
            1,
            2,
            &vec![0u8; len],
        );
        for _ in 0..n {
            h.inject(0, &ip_frame, SimTime::from_us(10));
        }
        h.run_until(SimTime::from_ms(20));
        (h, n)
    }

    #[test]
    fn red_drops_non_ect_and_marks_ect_probabilistically() {
        let red = Aqm::Red { min_pkts: 2, max_pkts: 10, max_prob_permille: 800 };
        // Non-ECT burst: RED drops.
        let (mut h, n) = ip_burst_harness(red, Ecn::NotEct, 40, 1200);
        let delivered = h.collect(1).len();
        let s = h.switch.stats();
        assert!(s.aqm_dropped > 0, "RED must drop under a standing queue");
        assert_eq!(delivered + s.aqm_dropped as usize + s.dropped as usize, n);
        assert_eq!(s.ecn_marked, 0, "non-ECT traffic is dropped, never marked");
        // ECT burst: RED marks instead of dropping.
        let (mut h2, n2) = ip_burst_harness(red, Ecn::Ect0, 40, 1200);
        let got = h2.collect(1);
        let s2 = h2.switch.stats();
        assert_eq!(got.len() + s2.dropped as usize, n2, "ECT packets survive");
        assert!(s2.ecn_marked > 0, "RED marks ECN-capable traffic");
        assert_eq!(s2.aqm_dropped, 0);
    }

    #[test]
    fn red_is_deterministic_for_a_fixed_seed() {
        let red = Aqm::Red { min_pkts: 1, max_pkts: 8, max_prob_permille: 900 };
        let (mut a, _) = ip_burst_harness(red, Ecn::NotEct, 30, 1000);
        let (mut b, _) = ip_burst_harness(red, Ecn::NotEct, 30, 1000);
        assert_eq!(a.collect(1), b.collect(1), "same seed, same drop pattern");
        assert_eq!(a.switch.stats().aqm_dropped, b.switch.stats().aqm_dropped);
    }

    #[test]
    fn codel_drops_persistent_queue_but_spares_short_bursts() {
        let codel = Aqm::CoDel {
            target: SimTime::from_us(5),
            interval: SimTime::from_us(100),
        };
        // A short burst drains before sojourn stays above target: untouched.
        let (mut h, n) = ip_burst_harness(codel, Ecn::NotEct, 4, 1200);
        assert_eq!(h.collect(1).len(), n, "short burst below interval survives");
        assert_eq!(h.switch.stats().aqm_dropped, 0);
        // A large standing queue (1200 B at 10G ≈ 1 us each, 200 packets ≈
        // 200 us of backlog) keeps sojourn above target past the interval.
        let (mut h2, n2) = ip_burst_harness(codel, Ecn::NotEct, 200, 1200);
        let delivered = h2.collect(1).len();
        let s = h2.switch.stats();
        assert!(s.aqm_dropped > 0, "standing queue must trigger CoDel drops");
        assert_eq!(delivered + s.aqm_dropped as usize + s.dropped as usize, n2);
        // ECN-capable standing queue: marked, not dropped.
        let (mut h3, n3) = ip_burst_harness(codel, Ecn::Ect0, 200, 1200);
        let got = h3.collect(1);
        let s3 = h3.switch.stats();
        assert_eq!(got.len() + s3.dropped as usize, n3);
        assert!(s3.ecn_marked > 0, "CoDel marks ECT instead of dropping");
        assert_eq!(s3.aqm_dropped, 0);
    }

    /// DualPI2 needs a queue that *persists across controller periods*, so
    /// packets arrive slightly faster than the 1200 B ≈ 0.97 us service time
    /// and the PI error integrates over many tupdate ticks.
    fn dualpi2_run(ecn: Ecn) -> (usize, SwitchStats) {
        let dp = Aqm::DualPi2 {
            target: SimTime::from_us(2),
            tupdate: SimTime::from_us(10),
        };
        let mut h = Harness::new(2, SwitchConfig {
            ports: 2,
            aqm: Some(dp),
            seed: 42,
            ..Default::default()
        });
        h.inject(1, &test_frame(200, 9, 60), SimTime::from_ns(100));
        h.run_until(SimTime::from_us(2));
        h.collect(0);
        let ip_frame = FrameBuilder::udp(
            MacAddr::from_index(100),
            MacAddr::from_index(200),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            ecn,
            1,
            2,
            &vec![0u8; 1200],
        );
        let n = 400;
        for i in 0..n {
            h.inject(0, &ip_frame, SimTime::from_us(10) + SimTime::from_ns(700 * i as u64));
        }
        h.run_until(SimTime::from_ms(20));
        (h.collect(1).len(), h.switch.stats())
    }

    #[test]
    fn dualpi2_marks_l4s_earlier_than_classic() {
        // Scalable (ECT(1)) traffic: linear 2·p' marking on the growing queue.
        let (delivered, s) = dualpi2_run(Ecn::Ect1);
        assert_eq!(delivered + s.dropped as usize, 400, "L4S traffic never AQM-dropped");
        assert_eq!(s.aqm_dropped, 0);
        assert!(s.ecn_marked > 0, "standing queue must mark the L4S flow");
        // Classic Not-ECT traffic sees the squared-coupled probability p'²,
        // which is far smaller at the same controller state: the identical
        // arrival pattern must produce fewer drops than the L4S run's marks.
        let (delivered_c, sc) = dualpi2_run(Ecn::NotEct);
        assert_eq!(delivered_c + sc.dropped as usize + sc.aqm_dropped as usize, 400);
        assert_eq!(sc.ecn_marked, 0, "Not-ECT is never marked");
        assert!(
            sc.aqm_dropped < s.ecn_marked,
            "squared coupling ({} drops) must act less often than linear L4S marking ({} marks)",
            sc.aqm_dropped,
            s.ecn_marked
        );
    }

    /// AQM state (PRNG position, CoDel episode, queue timestamps) must
    /// survive a snapshot so restored runs continue bit-identically.
    #[test]
    fn aqm_state_roundtrips_through_snapshot() {
        let red = Aqm::Red { min_pkts: 1, max_pkts: 6, max_prob_permille: 1000 };
        let (h, _) = ip_burst_harness(red, Ecn::NotEct, 20, 1000);
        let mut w = SnapWriter::new();
        h.switch.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        let mut back = SwitchBm::new(SwitchConfig {
            ports: 2,
            aqm: Some(red),
            seed: 42,
            ..Default::default()
        });
        back.restore(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(back.stats().aqm_dropped, h.switch.stats().aqm_dropped);
        assert_eq!(back.egress[1].aqm_state.rng, h.switch.egress[1].aqm_state.rng);
        assert_eq!(back.egress[1].queue.len(), h.switch.egress[1].queue.len());
        let mut w2 = SnapWriter::new();
        back.snapshot(&mut w2).unwrap();
        assert_eq!(w2.into_vec(), buf, "snapshot(restore(s)) == s");
    }
}
