//! # simbricks-netsim
//!
//! Network component simulators, all speaking the SimBricks Ethernet
//! interface ([`simbricks_eth`]):
//!
//! * [`switch::SwitchBm`] — the paper's fast behavioural Ethernet switch
//!   (§6.4): MAC learning, per-port output queues with bandwidth, optional
//!   ECN marking threshold.
//! * [`des::DesNetwork`] — a discrete-event packet network in the spirit of
//!   ns-3 / OMNeT++: arbitrary topologies of internal switches and links with
//!   configurable bandwidth, propagation delay, queue capacity and RED/ECN
//!   marking, plus *internal endpoints* that run the simulated TCP stack
//!   directly inside the network simulator. Internal endpoints are what the
//!   "ns-3 alone" baseline of Fig. 1 uses: no host, NIC, or driver model.
//! * [`tofino::TofinoSwitch`] — a programmable match-action pipeline switch
//!   with per-stage latency and a queuing model, including the OUM sequencer
//!   program used to reproduce the NOPaxos experiment (Fig. 10).
//! * [`rmt::RmtPipeline`] — a cycle-driven RMT packet-processing pipeline
//!   standing in for the Menshen Verilog design behind the same interface.

pub mod des;
pub mod rmt;
pub mod switch;
pub mod tofino;

pub use des::{DesNetwork, EndpointApp, LinkParams, NodeId, QueueDiscipline};
pub use rmt::RmtPipeline;
pub use switch::{Aqm, SwitchBm, SwitchConfig, SwitchStats};
pub use tofino::{SequencerConfig, TofinoConfig, TofinoSwitch};
