//! Concurrency validation for the SPSC ring control-byte protocol (§A.2):
//!
//! 1. An *exhaustive* enumeration of every producer/consumer operation
//!    interleaving on tiny rings, checked against a sequential oracle. At
//!    operation granularity this covers every reachable ownership-handoff
//!    state of the protocol (each `try_send`/`try_recv` is one atomic
//!    acquire/release exchange on the slot's control byte, so op-level
//!    interleaving is exactly slot-state interleaving).
//! 2. Two genuinely concurrent stress tests (real threads, seeded
//!    pseudo-random pacing) that double as the ThreadSanitizer targets for
//!    the nightly TSan CI job: any missing release/acquire edge on the
//!    control byte shows up as a data race on the slot header/payload.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use simbricks_base::spsc::{queue, SendError};
use simbricks_base::SimTime;

/// Deterministic pacing for the stress tests (never `thread_rng`: the test
/// itself must be reproducible).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn payload_for(seq: u64) -> Vec<u8> {
    let len = (seq % 257) as usize; // covers empty (SYNC-like) through 256 B
    (0..len).map(|i| (seq as u8).wrapping_mul(31).wrapping_add(i as u8)).collect()
}

/// Enumerate every interleaving of `ops` producer attempts and `ops`
/// consumer attempts on a `cap`-slot ring, as bitmask schedules (bit set =
/// producer's turn). A `VecDeque` oracle predicts exactly which operations
/// succeed and what the consumer observes.
#[test]
fn exhaustive_op_interleavings_match_sequential_oracle() {
    // The queue constructor requires at least two slots.
    for cap in [2usize, 3, 4] {
        let ops = 6u32;
        let total_bits = 2 * ops;
        let mut schedules = 0u64;
        for schedule in 0u32..(1 << total_bits) {
            if schedule.count_ones() != ops {
                continue; // exactly `ops` producer turns
            }
            schedules += 1;
            let (mut tx, mut rx) = queue(cap);
            let mut oracle: VecDeque<u64> = VecDeque::new();
            let mut next_seq = 0u64;
            for bit in 0..total_bits {
                if schedule >> bit & 1 == 1 {
                    // Producer's turn.
                    let seq = next_seq;
                    let body = payload_for(seq);
                    let r = tx.try_send(SimTime::from_ps(seq), (seq % 100 + 1) as u8, &body);
                    if oracle.len() < cap {
                        assert_eq!(r, Ok(()), "cap={cap} sched={schedule:b} seq={seq}");
                        oracle.push_back(seq);
                        next_seq += 1;
                    } else {
                        assert_eq!(r, Err(SendError::Full), "cap={cap} sched={schedule:b}");
                    }
                } else {
                    // Consumer's turn.
                    match rx.try_recv() {
                        Some(m) => {
                            let want = oracle.pop_front().expect("recv from empty ring");
                            assert_eq!(m.timestamp, SimTime::from_ps(want));
                            assert_eq!(m.ty, (want % 100 + 1) as u8);
                            assert_eq!(&m.data[..], &payload_for(want)[..]);
                        }
                        None => assert!(oracle.is_empty(), "message lost: {oracle:?}"),
                    }
                }
            }
            // Drain: everything the oracle still holds must come out in order.
            while let Some(want) = oracle.pop_front() {
                let m = rx.try_recv().expect("drain");
                assert_eq!(m.timestamp, SimTime::from_ps(want));
            }
            assert!(rx.try_recv().is_none());
        }
        assert_eq!(schedules, 924, "C(12,6) schedules per capacity");
    }
}

/// Real-thread stress: one producer thread, one consumer thread, every
/// message checked for sequence, timestamp, type, and payload integrity.
/// The seeded pacing varies batch sizes so the ring oscillates between
/// empty, partially full, and full (both wrap-around edges).
fn stress(cap: usize, n_msgs: u64, seed: u64) {
    let (mut tx, mut rx) = queue(cap);
    let failed = Arc::new(AtomicBool::new(false));
    let failed_p = failed.clone();

    let producer = std::thread::spawn(move || {
        let mut rng = Lcg(seed);
        let mut seq = 0u64;
        while seq < n_msgs {
            let body = payload_for(seq);
            match tx.try_send(SimTime::from_ps(seq), (seq % 100 + 1) as u8, &body) {
                Ok(()) => seq += 1,
                Err(SendError::Full) => {
                    for _ in 0..rng.next() % 64 {
                        std::hint::spin_loop();
                    }
                }
                Err(e) => {
                    eprintln!("producer error: {e:?}");
                    failed_p.store(true, Ordering::Relaxed);
                    return;
                }
            }
            if rng.next() % 16 == 0 {
                std::thread::yield_now();
            }
        }
    });

    let mut rng = Lcg(seed ^ 0x5eed);
    let mut expect = 0u64;
    while expect < n_msgs {
        match rx.try_recv() {
            Some(m) => {
                assert_eq!(m.timestamp, SimTime::from_ps(expect), "sequence hole");
                assert_eq!(m.ty, (expect % 100 + 1) as u8);
                assert_eq!(&m.data[..], &payload_for(expect)[..], "payload torn at {expect}");
                expect += 1;
            }
            None => {
                assert!(!failed.load(Ordering::Relaxed), "producer died");
                for _ in 0..rng.next() % 64 {
                    std::hint::spin_loop();
                }
                if rng.next() % 16 == 0 {
                    std::thread::yield_now();
                }
            }
        }
    }
    producer.join().unwrap();
    assert!(rx.try_recv().is_none(), "spurious trailing message");
}

#[test]
fn two_thread_stress_default_ring() {
    stress(64, 50_000, 0xC0FFEE);
}

/// Capacity-2 ring: maximum contention on the ownership handoff — the
/// producer and consumer fight over the same two control bytes the whole
/// run, so every release/acquire edge is exercised millions of times.
#[test]
fn two_thread_stress_tiny_ring_wraparound() {
    stress(2, 50_000, 0xBEEF);
}
