//! Fixed-size message slots.
//!
//! SimBricks queues (§5.2, §A.2 of the paper) are arrays of fixed-size,
//! cache-line aligned message slots. The control byte of each slot encodes
//! the current owner (producer or consumer) in its top bit and the message
//! type in the remaining seven bits. Producer and consumer communicate only
//! through this control byte plus the slot payload, so all cache-coherence
//! traffic carries useful data.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::pktbuf::{BufPool, PktBuf};
use crate::time::SimTime;

/// Maximum payload carried by one message slot.
///
/// Sized so a jumbo Ethernet frame (the paper's 4000 B MTU dctcp experiment),
/// a 4 KiB DMA burst, or an 8 KiB TSO super-segment DMA completion fits
/// inline. Larger transfers must be split by the sender.
pub const MAX_PAYLOAD: usize = 9216;

/// Message type values `0..=127`. Type `0` is reserved for SYNC messages.
pub type MsgType = u8;

/// Reserved message type for synchronization messages (§5.5).
pub const MSG_SYNC: MsgType = 0;

/// Control-byte bit marking the slot as owned by the consumer (i.e. a message
/// is ready to be read). When clear, the producer owns the slot.
const OWNER_CONSUMER: u8 = 0x80;
const TYPE_MASK: u8 = 0x7f;

/// Message header stored inline in every slot.
#[derive(Clone, Copy, Debug, Default)]
#[repr(C)]
pub(crate) struct SlotHeader {
    /// Receiver-side processing timestamp (send time plus link latency).
    pub timestamp: u64,
    /// Number of valid payload bytes.
    pub len: u32,
    _pad: u32,
}

/// One queue slot. Aligned to two cache lines to avoid false sharing between
/// neighbouring slots' control bytes on typical 64 B cache line machines.
#[repr(C, align(128))]
pub(crate) struct Slot {
    pub header: UnsafeCell<SlotHeader>,
    pub payload: UnsafeCell<[u8; MAX_PAYLOAD]>,
    /// Owner bit plus message type, written last by the producer with release
    /// ordering and read first by the consumer with acquire ordering.
    pub ctrl: AtomicU8,
}

// Safety: access to `header`/`payload` is serialized by the `ctrl` ownership
// protocol (acquire/release on the control byte), exactly as described in
// §A.2 of the paper.
unsafe impl Sync for Slot {}
unsafe impl Send for Slot {}

impl Slot {
    pub(crate) fn new() -> Self {
        Slot {
            header: UnsafeCell::new(SlotHeader::default()),
            payload: UnsafeCell::new([0u8; MAX_PAYLOAD]),
            ctrl: AtomicU8::new(0),
        }
    }

    /// True if the consumer currently owns this slot (message ready).
    #[inline]
    pub(crate) fn consumer_owned(&self) -> bool {
        self.ctrl.load(Ordering::Acquire) & OWNER_CONSUMER != 0
    }

    /// True if the producer currently owns this slot (free for writing).
    #[inline]
    pub(crate) fn producer_owned(&self) -> bool {
        self.ctrl.load(Ordering::Acquire) & OWNER_CONSUMER == 0
    }

    /// Publish a message: store type and flip ownership to the consumer.
    /// Must only be called by the producer while it owns the slot.
    #[inline]
    pub(crate) fn publish(&self, ty: MsgType) {
        debug_assert!(ty & OWNER_CONSUMER == 0, "message type must fit in 7 bits");
        self.ctrl
            .store(OWNER_CONSUMER | (ty & TYPE_MASK), Ordering::Release);
    }

    /// Read the message type. Must only be called by the consumer while it
    /// owns the slot.
    #[inline]
    pub(crate) fn msg_type(&self) -> MsgType {
        self.ctrl.load(Ordering::Relaxed) & TYPE_MASK
    }

    /// Return the slot to the producer.
    #[inline]
    pub(crate) fn release(&self) {
        self.ctrl.store(0, Ordering::Release);
    }
}

/// A message copied out of a queue slot: the receiver-side timestamp, the
/// seven-bit message type, and the payload bytes.
///
/// The payload is a [`PktBuf`]: receive paths copy the slot bytes into a
/// pooled segment (no heap traffic on a warm pool) and every downstream hop
/// hands the buffer on by reference-count bump instead of reallocating.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedMsg {
    /// Receiver-side virtual time at which the message must be processed.
    pub timestamp: SimTime,
    /// Seven-bit message type ([`MSG_SYNC`] = pure synchronization).
    pub ty: MsgType,
    /// Payload bytes (pooled; see [`PktBuf`]).
    pub data: PktBuf,
}

impl OwnedMsg {
    /// Assemble a message from its parts. Accepts a [`PktBuf`] directly or
    /// anything convertible into one (e.g. a `Vec<u8>`).
    pub fn new(timestamp: SimTime, ty: MsgType, data: impl Into<PktBuf>) -> Self {
        OwnedMsg {
            timestamp,
            ty,
            data: data.into(),
        }
    }

    /// A pure SYNC message carrying only the timestamp promise.
    /// Allocation-free.
    pub fn sync(timestamp: SimTime) -> Self {
        OwnedMsg {
            timestamp,
            ty: MSG_SYNC,
            data: PktBuf::empty(),
        }
    }

    /// Whether this is a pure SYNC message.
    pub fn is_sync(&self) -> bool {
        self.ty == MSG_SYNC
    }

    /// Serialize into a byte vector for forwarding over a proxy connection
    /// (§5.4). Layout: u64 timestamp, u8 type, u32 length, payload.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(13 + self.data.len());
        v.extend_from_slice(&self.timestamp.as_ps().to_le_bytes());
        v.push(self.ty);
        v.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        v.extend_from_slice(&self.data);
        v
    }

    /// Parse a message from its wire encoding. Returns the message and the
    /// number of bytes consumed, or `None` if `buf` does not contain a
    /// complete message yet. The payload lands in a heap-backed buffer; hot
    /// paths that decode in a loop should use
    /// [`OwnedMsg::from_wire_pooled`] instead.
    pub fn from_wire(buf: &[u8]) -> Option<(OwnedMsg, usize)> {
        Self::decode_wire(buf, None)
    }

    /// Like [`OwnedMsg::from_wire`], but the payload is copied into a
    /// segment from `pool` (no heap allocation on a warm pool).
    pub fn from_wire_pooled(buf: &[u8], pool: &BufPool) -> Option<(OwnedMsg, usize)> {
        Self::decode_wire(buf, Some(pool))
    }

    /// Borrow a message straight out of its wire encoding without
    /// materializing it: returns `(timestamp, type, payload, bytes consumed)`
    /// where the payload is a sub-slice of `buf`. The zero-allocation path
    /// for forwarders that immediately copy the payload into a queue slot.
    pub fn peek_wire(buf: &[u8]) -> Option<(SimTime, MsgType, &[u8], usize)> {
        if buf.len() < 13 {
            return None;
        }
        let ts = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let ty = buf[8];
        let len = u32::from_le_bytes(buf[9..13].try_into().unwrap()) as usize;
        if buf.len() < 13 + len {
            return None;
        }
        Some((SimTime::from_ps(ts), ty, &buf[13..13 + len], 13 + len))
    }

    fn decode_wire(buf: &[u8], pool: Option<&BufPool>) -> Option<(OwnedMsg, usize)> {
        let (timestamp, ty, payload, used) = Self::peek_wire(buf)?;
        let data = if payload.is_empty() {
            PktBuf::empty()
        } else {
            match pool {
                Some(p) => p.copy_from_slice(payload),
                None => PktBuf::from(payload),
            }
        };
        Some((
            OwnedMsg {
                timestamp,
                ty,
                data,
            },
            used,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_ownership_protocol() {
        let s = Slot::new();
        assert!(s.producer_owned());
        assert!(!s.consumer_owned());
        s.publish(7);
        assert!(s.consumer_owned());
        assert_eq!(s.msg_type(), 7);
        s.release();
        assert!(s.producer_owned());
    }

    #[test]
    fn slot_type_masked_to_seven_bits() {
        let s = Slot::new();
        s.publish(0x7f);
        assert_eq!(s.msg_type(), 0x7f);
        assert!(s.consumer_owned());
    }

    #[test]
    fn owned_msg_wire_roundtrip() {
        let m = OwnedMsg::new(SimTime::from_ns(1234), 5, vec![1, 2, 3, 4, 5]);
        let w = m.to_wire();
        let (back, used) = OwnedMsg::from_wire(&w).unwrap();
        assert_eq!(used, w.len());
        assert_eq!(back, m);
    }

    #[test]
    fn owned_msg_wire_partial() {
        let m = OwnedMsg::new(SimTime::from_ns(7), 3, vec![9; 100]);
        let w = m.to_wire();
        assert!(OwnedMsg::from_wire(&w[..5]).is_none());
        assert!(OwnedMsg::from_wire(&w[..w.len() - 1]).is_none());
    }

    #[test]
    fn sync_msg_has_no_payload() {
        let m = OwnedMsg::sync(SimTime::from_ns(500));
        assert!(m.is_sync());
        assert!(m.data.is_empty());
        let (back, _) = OwnedMsg::from_wire(&m.to_wire()).unwrap();
        assert!(back.is_sync());
    }

    #[test]
    fn slot_is_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<Slot>(), 128);
        assert!(std::mem::size_of::<Slot>() >= MAX_PAYLOAD);
    }
}
