//! Discrete-event queue used by component simulators and the kernel.
//!
//! Events are ordered by time; ties are broken by schedule order so that
//! repeated runs process same-time events identically (a requirement for the
//! determinism property evaluated in §7.6). The schedule-order sequence
//! numbers are preserved across checkpoint/restore, so a restored run breaks
//! same-time ties exactly like the uninterrupted one.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::snap::{SnapReader, SnapResult, SnapWriter};
use crate::time::SimTime;

/// Process-wide sequence source. Making event ids globally unique (not
/// per-queue counters) means an [`EventId`] can never be confused between
/// queues: cancelling an id that belongs to a *different* queue is a safe
/// no-op instead of silently cancelling an unrelated local event that
/// happened to share a per-queue counter value. Only the *relative* order of
/// ids scheduled on the same queue matters for determinism, and that is
/// preserved regardless of how ids interleave across queues.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

/// Raise the global sequence floor to at least `floor`. Called when
/// restoring a checkpoint so that events scheduled *after* the restore
/// always order behind restored events scheduled at the same time — exactly
/// as they would have in the uninterrupted run.
pub(crate) fn bump_seq_floor(floor: u64) {
    NEXT_SEQ.fetch_max(floor, AtomicOrdering::Relaxed);
}

/// Identifier of a scheduled event, usable for cancellation. Ids are unique
/// across all queues of the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<T> {
    time: SimTime,
    seq: u64,
    data: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable ordering.
///
/// Bookkeeping is sized for the overwhelmingly common never-cancelled case:
/// `schedule` and `pop_due` touch only the heap and a live-event counter —
/// no per-event hash-set insert/remove. Cancellation is the rare path: it
/// validates the id against the heap itself (ids are globally unique, so a
/// foreign or already-fired id simply is not found) and records it in a
/// small lazily-drained cancelled set.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    /// Number of live (non-cancelled) events in the heap.
    live: usize,
    /// Ids cancelled while still in the heap (removed lazily; empty in the
    /// never-cancelled steady state).
    cancelled: HashSet<u64>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: 0,
            cancelled: HashSet::new(),
        }
    }

    /// Schedule `data` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, data: T) -> EventId {
        let seq = NEXT_SEQ.fetch_add(1, AtomicOrdering::Relaxed);
        self.heap.push(Entry { time, seq, data });
        self.live += 1;
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns true iff the event was
    /// still pending **in this queue**: cancelling an id that already fired,
    /// was already cancelled, or belongs to another queue is a no-op that
    /// returns false.
    ///
    /// This is the rare path: validity is established by scanning the heap
    /// for the (globally unique) id, so the hot `schedule`/`pop_due` pair
    /// carries no per-event set bookkeeping. O(n) in the number of queued
    /// events, which is small for every component model.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.cancelled.contains(&id.0) {
            return false;
        }
        if !self.heap.iter().any(|e| e.seq == id.0) {
            return false;
        }
        self.cancelled.insert(id.0);
        self.live -= 1;
        true
    }

    /// Time of the earliest pending (non-cancelled) event.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        self.skip_cancelled();
        match self.heap.peek() {
            Some(e) if e.time <= now => {
                let e = self.heap.pop().unwrap();
                self.live -= 1;
                Some((e.time, e.data))
            }
            _ => None,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn skip_cancelled(&mut self) {
        while let Some(e) = self.heap.peek() {
            if self.cancelled.contains(&e.seq) {
                let e = self.heap.pop().unwrap();
                self.cancelled.remove(&e.seq);
            } else {
                break;
            }
        }
    }

    /// Encode the pending events (time, sequence number, payload via `enc`)
    /// in deterministic (time, seq) order, dropping already-cancelled
    /// entries. Sequence numbers are preserved so restored events keep their
    /// same-time tie-break order; restore raises the process-wide sequence
    /// floor so post-restore events order behind them.
    pub fn snapshot_with(
        &self,
        w: &mut SnapWriter,
        enc: impl Fn(&T, &mut SnapWriter),
    ) -> SnapResult<()> {
        let mut live: Vec<&Entry<T>> = self
            .heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .collect();
        live.sort_by_key(|e| (e.time, e.seq));
        w.usize(live.len());
        for e in live {
            w.time(e.time);
            w.u64(e.seq);
            enc(&e.data, w);
        }
        Ok(())
    }

    /// Rebuild a queue from [`EventQueue::snapshot_with`] output.
    pub fn restore_with(
        r: &mut SnapReader,
        dec: impl Fn(&mut SnapReader) -> SnapResult<T>,
    ) -> SnapResult<Self> {
        let n = r.usize()?;
        let mut q = EventQueue::new();
        let mut max_seq = 0u64;
        for _ in 0..n {
            let time = r.time()?;
            let seq = r.u64()?;
            let data = dec(r)?;
            max_seq = max_seq.max(seq);
            q.heap.push(Entry { time, seq, data });
            q.live += 1;
        }
        bump_seq_floor(max_seq.saturating_add(1));
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.next_time(), Some(SimTime::from_ns(10)));
        let mut out = Vec::new();
        while let Some((_, d)) = q.pop_due(SimTime::MAX) {
            out.push(d);
        }
        assert_eq!(out, vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ns(5), i);
        }
        let mut out = Vec::new();
        while let Some((_, d)) = q.pop_due(SimTime::from_ns(5)) {
            out.push(d);
        }
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        assert!(q.pop_due(SimTime::from_ns(5)).is_none());
        assert_eq!(q.pop_due(SimTime::from_ns(10)).unwrap().1, 1);
        assert!(q.pop_due(SimTime::from_ns(15)).is_none());
        assert_eq!(q.pop_due(SimTime::from_ns(25)).unwrap().1, 2);
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(10), "a");
        let b = q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel returns false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_ns(20)));
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().1, "b");
        assert!(!q.cancel(b), "cancel after pop is a no-op");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_then_reschedule_is_independent() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(10), 1);
        q.cancel(a);
        let _b = q.schedule(SimTime::from_ns(10), 2);
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().1, 2);
        assert!(q.pop_due(SimTime::MAX).is_none());
    }

    /// Regression (checkpoint hardening): cancelling an event that already
    /// fired must be a no-op returning false — it used to return true and
    /// corrupt the live-event count, leaking a phantom entry into the
    /// cancelled set.
    #[test]
    fn cancel_of_already_fired_event_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(10), "a");
        let b = q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.pop_due(SimTime::from_ns(15)).unwrap().1, "a");
        assert!(!q.cancel(a), "already-fired id cannot be cancelled");
        assert_eq!(q.len(), 1, "live count untouched by the bogus cancel");
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    /// Regression (checkpoint hardening): an [`EventId`] from a *different*
    /// queue must never cancel a local event. Ids are globally unique, so a
    /// foreign id is simply unknown here.
    #[test]
    fn cancel_of_foreign_event_id_is_a_noop() {
        let mut q1 = EventQueue::new();
        let mut q2 = EventQueue::new();
        let local = q1.schedule(SimTime::from_ns(10), "mine");
        let foreign = q2.schedule(SimTime::from_ns(10), "theirs");
        assert_ne!(local, foreign, "event ids are globally unique");
        assert!(!q1.cancel(foreign), "foreign id is unknown to this queue");
        assert_eq!(q1.len(), 1, "local event survives");
        assert_eq!(q1.pop_due(SimTime::MAX).unwrap().1, "mine");
        assert_eq!(q2.pop_due(SimTime::MAX).unwrap().1, "theirs");
    }

    #[test]
    fn snapshot_roundtrip_preserves_order_and_drops_cancelled() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1u64);
        let c = q.schedule(SimTime::from_ns(10), 2u64);
        q.schedule(SimTime::from_ns(10), 3u64);
        q.schedule(SimTime::from_ns(5), 4u64);
        q.cancel(c);
        let mut w = SnapWriter::new();
        q.snapshot_with(&mut w, |v, w| w.u64(*v)).unwrap();
        let buf = w.into_vec();
        let mut r = SnapReader::new(&buf);
        let mut back: EventQueue<u64> =
            EventQueue::restore_with(&mut r, |r| r.u64()).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.len(), 3);
        let mut order = Vec::new();
        while let Some((_, v)) = back.pop_due(SimTime::MAX) {
            order.push(v);
        }
        assert_eq!(order, vec![4, 1, 3], "time order, then original schedule order");
    }

    /// Same-time tie-break order must survive a snapshot: events scheduled
    /// *after* a restore always order behind restored events at the same
    /// time, exactly as in the uninterrupted run.
    #[test]
    fn post_restore_events_order_behind_restored_same_time_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(50), "restored-1");
        q.schedule(SimTime::from_ns(50), "restored-2");
        let mut w = SnapWriter::new();
        q.snapshot_with(&mut w, |v, w| w.str(v)).unwrap();
        let buf = w.into_vec();
        let mut r = SnapReader::new(&buf);
        let mut back: EventQueue<String> =
            EventQueue::restore_with(&mut r, |r| r.str()).unwrap();
        back.schedule(SimTime::from_ns(50), "new".to_string());
        let mut order = Vec::new();
        while let Some((_, v)) = back.pop_due(SimTime::MAX) {
            order.push(v);
        }
        assert_eq!(order, vec!["restored-1", "restored-2", "new"]);
    }
}
