//! Discrete-event queue used by component simulators and the kernel.
//!
//! Events are ordered by time; ties are broken by schedule order so that
//! repeated runs process same-time events identically (a requirement for the
//! determinism property evaluated in §7.6). The schedule-order sequence
//! numbers are preserved across checkpoint/restore, so a restored run breaks
//! same-time ties exactly like the uninterrupted one.
//!
//! The queue is a hashed hierarchical timing wheel (Varghese & Lauck scheme,
//! deadline-ordered variant): `LEVELS` levels of `SLOTS` slots each, where a
//! level-`k` slot spans `SLOTS^k` picosecond ticks. `schedule` is O(1), and
//! popping advances a cursor to the earliest occupied slot (found via
//! per-level occupancy bitmasks), cascading far-future slots downward at
//! most `LEVELS` times per event. With 11 levels of 64 slots the wheel spans
//! the full 64-bit tick range, so `SimTime::MAX` promises need no overflow
//! list. Unlike a binary heap, cost per event is independent of the number
//! of queued events — the property that keeps datacenter-scale event rates
//! (fat-tree fabrics with thousands of timers per kernel) constant-time.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::snap::{SnapReader, SnapResult, SnapWriter};
use crate::time::SimTime;

/// Process-wide sequence source. Making event ids globally unique (not
/// per-queue counters) means an [`EventId`] can never be confused between
/// queues: cancelling an id that belongs to a *different* queue is a safe
/// no-op instead of silently cancelling an unrelated local event that
/// happened to share a per-queue counter value. Only the *relative* order of
/// ids scheduled on the same queue matters for determinism, and that is
/// preserved regardless of how ids interleave across queues.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

/// Raise the global sequence floor to at least `floor`. Called when
/// restoring a checkpoint so that events scheduled *after* the restore
/// always order behind restored events scheduled at the same time — exactly
/// as they would have in the uninterrupted run.
pub(crate) fn bump_seq_floor(floor: u64) {
    NEXT_SEQ.fetch_max(floor, AtomicOrdering::Relaxed);
}

fn next_seq() -> u64 {
    NEXT_SEQ.fetch_add(1, AtomicOrdering::Relaxed)
}

/// Identifier of a scheduled event, usable for cancellation. Ids are unique
/// across all queues of the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<T> {
    time: SimTime,
    seq: u64,
    data: T,
}

/// Bits per wheel level: 64 slots each.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// 11 levels × 6 bits = 66 bits ≥ 64: the wheel covers every `u64` tick, so
/// even `SimTime::MAX` promises live in a (topmost) slot.
const LEVELS: usize = 11;

/// A time-ordered event queue with stable ordering, backed by a hierarchical
/// timing wheel.
///
/// Bookkeeping is sized for the overwhelmingly common never-cancelled case:
/// `schedule` and `pop_due` touch only the wheel and a live-event counter —
/// no per-event hash-set insert/remove. Cancellation is the rare path: it
/// validates the id against the queue itself (ids are globally unique, so a
/// foreign or already-fired id simply is not found) and records it in a
/// small lazily-drained cancelled set.
///
/// # Invariant
///
/// Every entry stored at `(level, slot)` satisfies
/// `level == level_for(cursor, tick)` and `slot == slot_index(tick, level)`.
/// The cursor only ever advances to the *start* of the earliest occupied
/// slot (which is then drained), and a case analysis over the hashed level
/// assignment shows every other slot's placement stays valid across such an
/// advance — so cascading touches exactly one slot per advance.
pub struct EventQueue<T> {
    /// `levels[k][s]`: entries whose tick first differs from `cursor` in bit
    /// range `[6k, 6k+6)` and whose level-`k` slot index is `s`. Entries
    /// within a slot are in insertion order, *not* (time, seq) order.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Per-level slot occupancy bitmask (bit `s` set ⇒ `levels[k][s]` may be
    /// non-empty). Cleared only when a slot is drained.
    occupied: [u64; LEVELS],
    /// All wheel entries have tick strictly greater than `cursor`; entries
    /// at or before it live in `ready`.
    cursor: u64,
    /// Due/frontier entries, sorted by (time, seq) *descending* so popping
    /// takes from the back. `ready_sorted == false` after an out-of-order
    /// push (schedule at or before the cursor).
    ready: Vec<Entry<T>>,
    ready_sorted: bool,
    /// Number of live (non-cancelled) events.
    live: usize,
    /// Ids cancelled while still queued (removed lazily; empty in the
    /// never-cancelled steady state). Ordered set: only membership is
    /// queried today, but an ordered container keeps any future iteration
    /// (e.g. a diagnostic dump) deterministic by construction.
    cancelled: BTreeSet<u64>,
}

/// Level whose bit range contains the highest bit where `tick` differs from
/// `cursor`. Caller guarantees `tick > cursor`.
#[inline]
fn level_for(cursor: u64, tick: u64) -> usize {
    let diff = cursor ^ tick;
    debug_assert!(diff != 0);
    ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
}

/// Slot index of `tick` at `level` (depends on the tick alone).
#[inline]
fn slot_index(tick: u64, level: usize) -> usize {
    ((tick >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
}

/// Earliest tick a `(level, slot)` pair can hold given the current cursor:
/// cursor's bits above the level, the slot index at the level, zeros below.
#[inline]
fn slot_deadline(cursor: u64, level: usize, slot: usize) -> u64 {
    let shift = SLOT_BITS as usize * level;
    let high = if shift + SLOT_BITS as usize >= 64 {
        0
    } else {
        cursor & (u64::MAX << (shift + SLOT_BITS as usize))
    };
    high | ((slot as u64) << shift)
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            cursor: 0,
            ready: Vec::new(),
            ready_sorted: true,
            live: 0,
            cancelled: BTreeSet::new(),
        }
    }

    /// Schedule `data` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, data: T) -> EventId {
        let seq = next_seq();
        self.insert(Entry { time, seq, data });
        self.live += 1;
        EventId(seq)
    }

    fn insert(&mut self, e: Entry<T>) {
        let tick = e.time.0;
        if tick <= self.cursor {
            // At or behind the frontier: due immediately. Keep `ready` in
            // descending (time, seq) order lazily.
            if self
                .ready
                .last()
                .is_some_and(|l| (e.time, e.seq) > (l.time, l.seq))
            {
                self.ready_sorted = false;
            }
            self.ready.push(e);
            return;
        }
        let level = level_for(self.cursor, tick);
        let slot = slot_index(tick, level);
        self.levels[level][slot].push(e);
        self.occupied[level] |= 1 << slot;
    }

    /// Move entries to `ready` until it holds the earliest live event (or
    /// the wheel is exhausted). Drains at most one level-0 slot; cascades
    /// higher-level slots downward as the cursor reaches them.
    fn ensure_ready(&mut self) {
        loop {
            // Drop lazily-cancelled entries from the back (next to pop).
            while let Some(last) = self.ready.last() {
                if self.cancelled.remove(&last.seq) {
                    self.ready.pop();
                } else {
                    break;
                }
            }
            if !self.ready.is_empty() {
                if !self.ready_sorted {
                    self.ready
                        .sort_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                    self.ready_sorted = true;
                    continue; // re-run the cancelled sweep on the new order
                }
                return;
            }
            // Earliest occupied slot across levels. Levels partition the
            // tick range beyond the cursor into ordered, disjoint windows,
            // so the minimum slot deadline identifies the slot holding the
            // globally earliest entry.
            let mut best: Option<(u64, usize, usize)> = None;
            for (level, &occ) in self.occupied.iter().enumerate() {
                if occ == 0 {
                    continue;
                }
                let slot = occ.trailing_zeros() as usize;
                let deadline = slot_deadline(self.cursor, level, slot);
                if best.is_none_or(|(d, _, _)| deadline < d) {
                    best = Some((deadline, level, slot));
                }
            }
            let Some((deadline, level, slot)) = best else {
                return; // queue empty
            };
            let entries = std::mem::take(&mut self.levels[level][slot]);
            self.occupied[level] &= !(1 << slot);
            self.cursor = deadline;
            if level == 0 {
                // A level-0 slot holds exactly one tick value; order its
                // entries by seq (descending — popped from the back).
                self.ready = entries;
                self.ready
                    .sort_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                self.ready_sorted = true;
            } else {
                // Cascade: with the cursor at the slot's start, every entry
                // re-hashes to a strictly lower level (or to `ready` for the
                // deadline tick itself). Filter cancelled entries here so
                // they don't cascade repeatedly.
                for e in entries {
                    if self.cancelled.remove(&e.seq) {
                        continue;
                    }
                    self.insert(e);
                }
            }
        }
    }

    /// Cancel a previously scheduled event. Returns true iff the event was
    /// still pending **in this queue**: cancelling an id that already fired,
    /// was already cancelled, or belongs to another queue is a no-op that
    /// returns false.
    ///
    /// This is the rare path: validity is established by scanning the wheel
    /// for the (globally unique) id, so the hot `schedule`/`pop_due` pair
    /// carries no per-event set bookkeeping. O(n) in the number of queued
    /// events, which is small for every component model.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.cancelled.contains(&id.0) {
            return false;
        }
        let queued = self.ready.iter().any(|e| e.seq == id.0)
            || self
                .levels
                .iter()
                .flatten()
                .flatten()
                .any(|e| e.seq == id.0);
        if !queued {
            return false;
        }
        self.cancelled.insert(id.0);
        self.live -= 1;
        true
    }

    /// Time of the earliest pending (non-cancelled) event.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.ensure_ready();
        self.ready.last().map(|e| e.time)
    }

    /// Pop the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        self.ensure_ready();
        match self.ready.last() {
            Some(e) if e.time <= now => {
                let e = self.ready.pop().unwrap();
                self.live -= 1;
                Some((e.time, e.data))
            }
            _ => None,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// All live entries in (time, seq) order — shared by snapshotting and
    /// the wheel's own audits.
    fn live_sorted(&self) -> Vec<&Entry<T>> {
        let mut live: Vec<&Entry<T>> = self
            .ready
            .iter()
            .chain(self.levels.iter().flatten().flatten())
            .filter(|e| !self.cancelled.contains(&e.seq))
            .collect();
        live.sort_by_key(|e| (e.time, e.seq));
        live
    }

    /// Encode the pending events (time, sequence number, payload via `enc`)
    /// in deterministic (time, seq) order, dropping already-cancelled
    /// entries. Sequence numbers are preserved so restored events keep their
    /// same-time tie-break order; restore raises the process-wide sequence
    /// floor so post-restore events order behind them.
    pub fn snapshot_with(
        &self,
        w: &mut SnapWriter,
        enc: impl Fn(&T, &mut SnapWriter),
    ) -> SnapResult<()> {
        let live = self.live_sorted();
        w.usize(live.len());
        for e in live {
            w.time(e.time);
            w.u64(e.seq);
            enc(&e.data, w);
        }
        Ok(())
    }

    /// Rebuild a queue from [`EventQueue::snapshot_with`] output.
    pub fn restore_with(
        r: &mut SnapReader,
        dec: impl Fn(&mut SnapReader) -> SnapResult<T>,
    ) -> SnapResult<Self> {
        let n = r.usize()?;
        let mut q = EventQueue::new();
        let mut max_seq = 0u64;
        for _ in 0..n {
            let time = r.time()?;
            let seq = r.u64()?;
            let data = dec(r)?;
            max_seq = max_seq.max(seq);
            q.insert(Entry { time, seq, data });
            q.live += 1;
        }
        bump_seq_floor(max_seq.saturating_add(1));
        Ok(q)
    }
}

/// The pre-wheel binary-heap implementation, kept verbatim as the oracle for
/// the model-based wheel-vs-heap property test (`proptest` feature) and for
/// the in-crate differential tests. Same public surface, same global
/// sequence source — only the internal data structure differs.
#[cfg(any(test, feature = "proptest"))]
// The oracle deliberately uses a hash set: it must not share an ordering bias
// with the implementation it checks.
#[allow(clippy::disallowed_types)]
pub mod oracle {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;
    use std::collections::HashSet;

    use super::{next_seq, EventId};
    use crate::snap::{SnapReader, SnapResult, SnapWriter};
    use crate::time::SimTime;

    struct Entry<T> {
        time: SimTime,
        seq: u64,
        data: T,
    }

    impl<T> PartialEq for Entry<T> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<T> Eq for Entry<T> {}
    impl<T> PartialOrd for Entry<T> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<T> Ord for Entry<T> {
        fn cmp(&self, other: &Self) -> Ordering {
            // BinaryHeap is a max-heap; invert so the earliest is on top.
            other
                .time
                .cmp(&self.time)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// Reference event queue: `BinaryHeap` + lazy cancellation.
    pub struct HeapEventQueue<T> {
        heap: BinaryHeap<Entry<T>>,
        live: usize,
        cancelled: HashSet<u64>,
    }

    impl<T> Default for HeapEventQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> HeapEventQueue<T> {
        /// An empty reference queue.
        pub fn new() -> Self {
            HeapEventQueue {
                heap: BinaryHeap::new(),
                live: 0,
                cancelled: HashSet::new(),
            }
        }

        /// Schedule `data` at `time` (shared global sequence source).
        pub fn schedule(&mut self, time: SimTime, data: T) -> EventId {
            let seq = next_seq();
            self.heap.push(Entry { time, seq, data });
            self.live += 1;
            EventId(seq)
        }

        /// Lazy cancel with heap-scan validation (reference semantics).
        pub fn cancel(&mut self, id: EventId) -> bool {
            if self.cancelled.contains(&id.0) {
                return false;
            }
            if !self.heap.iter().any(|e| e.seq == id.0) {
                return false;
            }
            self.cancelled.insert(id.0);
            self.live -= 1;
            true
        }

        /// Time of the earliest pending event.
        pub fn next_time(&mut self) -> Option<SimTime> {
            self.skip_cancelled();
            self.heap.peek().map(|e| e.time)
        }

        /// Pop the earliest event due at or before `now`.
        pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
            self.skip_cancelled();
            match self.heap.peek() {
                Some(e) if e.time <= now => {
                    let e = self.heap.pop().unwrap();
                    self.live -= 1;
                    Some((e.time, e.data))
                }
                _ => None,
            }
        }

        /// Number of live events.
        pub fn len(&self) -> usize {
            self.live
        }

        /// Whether no live events remain.
        pub fn is_empty(&self) -> bool {
            self.live == 0
        }

        fn skip_cancelled(&mut self) {
            while let Some(e) = self.heap.peek() {
                if self.cancelled.contains(&e.seq) {
                    let e = self.heap.pop().unwrap();
                    self.cancelled.remove(&e.seq);
                } else {
                    break;
                }
            }
        }

        /// Encode pending events in (time, seq) order.
        pub fn snapshot_with(
            &self,
            w: &mut SnapWriter,
            enc: impl Fn(&T, &mut SnapWriter),
        ) -> SnapResult<()> {
            let mut live: Vec<&Entry<T>> = self
                .heap
                .iter()
                .filter(|e| !self.cancelled.contains(&e.seq))
                .collect();
            live.sort_by_key(|e| (e.time, e.seq));
            w.usize(live.len());
            for e in live {
                w.time(e.time);
                w.u64(e.seq);
                enc(&e.data, w);
            }
            Ok(())
        }

        /// Rebuild from [`HeapEventQueue::snapshot_with`] output.
        pub fn restore_with(
            r: &mut SnapReader,
            dec: impl Fn(&mut SnapReader) -> SnapResult<T>,
        ) -> SnapResult<Self> {
            let n = r.usize()?;
            let mut q = HeapEventQueue::new();
            let mut max_seq = 0u64;
            for _ in 0..n {
                let time = r.time()?;
                let seq = r.u64()?;
                let data = dec(r)?;
                max_seq = max_seq.max(seq);
                q.heap.push(Entry { time, seq, data });
                q.live += 1;
            }
            super::bump_seq_floor(max_seq.saturating_add(1));
            Ok(q)
        }
    }
}

/// Model-based equivalence of the timing wheel against the retained
/// binary-heap implementation: random interleaved
/// schedule/pop_due/cancel/snapshot/restore tapes must produce identical pop
/// sequences, cancel outcomes, lengths, and next-event times, and restored
/// queues must encode the same (time, payload) order. This is the
/// load-bearing test for the EventQueue swap.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use proptest::prelude::*;

    use super::oracle::HeapEventQueue;
    use super::*;
    use crate::snap::{SnapReader, SnapWriter};

    #[derive(Clone, Debug)]
    enum Op {
        /// Schedule at `now + delta` (saturating; huge deltas exercise the
        /// upper wheel levels, including the `SimTime::MAX` slot).
        Schedule(u64),
        /// Advance `now` by the delta and pop everything due on both queues.
        Advance(u64),
        /// Cancel the id-pair at this index (mod the live list).
        Cancel(usize),
        /// Snapshot both queues and replace them by their restored copies.
        SnapRestore,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => prop_oneof![
                (0u64..5_000).prop_map(Op::Schedule),
                (0u64..u64::MAX / 2).prop_map(Op::Schedule),
                Just(Op::Schedule(u64::MAX)),
            ],
            3 => (0u64..100_000).prop_map(Op::Advance),
            2 => any::<usize>().prop_map(Op::Cancel),
            1 => Just(Op::SnapRestore),
        ]
    }

    /// Decode a snapshot into its (time, payload) sequence; seq values are
    /// consumed but not compared (the two queues draw from the same global
    /// counter, so their absolute seqs interleave differently).
    fn decode(buf: &[u8]) -> Vec<(SimTime, u64)> {
        let mut r = SnapReader::new(buf);
        let n = r.usize().unwrap();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let t = r.time().unwrap();
            let _seq = r.u64().unwrap();
            out.push((t, r.u64().unwrap()));
        }
        assert!(r.is_empty());
        out
    }

    proptest! {
        #[test]
        fn wheel_equals_heap_oracle(
            ops in proptest::collection::vec(op_strategy(), 1..300),
        ) {
            let mut wheel: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
            let mut ids: Vec<(EventId, EventId)> = Vec::new();
            let mut now = 0u64;
            let mut payload = 0u64;
            for op in ops {
                match op {
                    Op::Schedule(delta) => {
                        let t = SimTime(now.saturating_add(delta));
                        let wid = wheel.schedule(t, payload);
                        let hid = heap.schedule(t, payload);
                        payload += 1;
                        ids.push((wid, hid));
                    }
                    Op::Advance(delta) => {
                        now = now.saturating_add(delta);
                        loop {
                            let w = wheel.pop_due(SimTime(now));
                            let h = heap.pop_due(SimTime(now));
                            prop_assert_eq!(w, h, "pop divergence at now={}", now);
                            if w.is_none() {
                                break;
                            }
                        }
                    }
                    Op::Cancel(i) => {
                        if !ids.is_empty() {
                            let (wid, hid) = ids[i % ids.len()];
                            prop_assert_eq!(
                                wheel.cancel(wid),
                                heap.cancel(hid),
                                "cancel divergence"
                            );
                        }
                    }
                    Op::SnapRestore => {
                        let mut ww = SnapWriter::new();
                        wheel.snapshot_with(&mut ww, |v, w| w.u64(*v)).unwrap();
                        let wbuf = ww.into_vec();
                        let mut hw = SnapWriter::new();
                        heap.snapshot_with(&mut hw, |v, w| w.u64(*v)).unwrap();
                        let hbuf = hw.into_vec();
                        // Identical live sets in identical (time, payload)
                        // order — the restored tie-break ordering.
                        prop_assert_eq!(decode(&wbuf), decode(&hbuf));
                        let mut r = SnapReader::new(&wbuf);
                        wheel = EventQueue::restore_with(&mut r, |r| r.u64()).unwrap();
                        let mut r = SnapReader::new(&hbuf);
                        heap = HeapEventQueue::restore_with(&mut r, |r| r.u64()).unwrap();
                        // Pre-snapshot ids stay cancellable on both restored
                        // queues (seqs are preserved by the encoding).
                    }
                }
                prop_assert_eq!(wheel.len(), heap.len(), "len divergence");
                prop_assert_eq!(wheel.next_time(), heap.next_time(), "next_time divergence");
            }
            // Full drain: the tails must agree event for event.
            loop {
                let w = wheel.pop_due(SimTime::MAX);
                let h = heap.pop_due(SimTime::MAX);
                prop_assert_eq!(w, h, "drain divergence");
                if w.is_none() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.next_time(), Some(SimTime::from_ns(10)));
        let mut out = Vec::new();
        while let Some((_, d)) = q.pop_due(SimTime::MAX) {
            out.push(d);
        }
        assert_eq!(out, vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ns(5), i);
        }
        let mut out = Vec::new();
        while let Some((_, d)) = q.pop_due(SimTime::from_ns(5)) {
            out.push(d);
        }
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        assert!(q.pop_due(SimTime::from_ns(5)).is_none());
        assert_eq!(q.pop_due(SimTime::from_ns(10)).unwrap().1, 1);
        assert!(q.pop_due(SimTime::from_ns(15)).is_none());
        assert_eq!(q.pop_due(SimTime::from_ns(25)).unwrap().1, 2);
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(10), "a");
        let b = q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel returns false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_ns(20)));
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().1, "b");
        assert!(!q.cancel(b), "cancel after pop is a no-op");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_then_reschedule_is_independent() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(10), 1);
        q.cancel(a);
        let _b = q.schedule(SimTime::from_ns(10), 2);
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().1, 2);
        assert!(q.pop_due(SimTime::MAX).is_none());
    }

    /// Regression (checkpoint hardening): cancelling an event that already
    /// fired must be a no-op returning false — it used to return true and
    /// corrupt the live-event count, leaking a phantom entry into the
    /// cancelled set.
    #[test]
    fn cancel_of_already_fired_event_is_a_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(10), "a");
        let b = q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.pop_due(SimTime::from_ns(15)).unwrap().1, "a");
        assert!(!q.cancel(a), "already-fired id cannot be cancelled");
        assert_eq!(q.len(), 1, "live count untouched by the bogus cancel");
        assert!(q.cancel(b));
        assert!(q.is_empty());
    }

    /// Regression (checkpoint hardening): an [`EventId`] from a *different*
    /// queue must never cancel a local event. Ids are globally unique, so a
    /// foreign id is simply unknown here.
    #[test]
    fn cancel_of_foreign_event_id_is_a_noop() {
        let mut q1 = EventQueue::new();
        let mut q2 = EventQueue::new();
        let local = q1.schedule(SimTime::from_ns(10), "mine");
        let foreign = q2.schedule(SimTime::from_ns(10), "theirs");
        assert_ne!(local, foreign, "event ids are globally unique");
        assert!(!q1.cancel(foreign), "foreign id is unknown to this queue");
        assert_eq!(q1.len(), 1, "local event survives");
        assert_eq!(q1.pop_due(SimTime::MAX).unwrap().1, "mine");
        assert_eq!(q2.pop_due(SimTime::MAX).unwrap().1, "theirs");
    }

    #[test]
    fn snapshot_roundtrip_preserves_order_and_drops_cancelled() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1u64);
        let c = q.schedule(SimTime::from_ns(10), 2u64);
        q.schedule(SimTime::from_ns(10), 3u64);
        q.schedule(SimTime::from_ns(5), 4u64);
        q.cancel(c);
        let mut w = SnapWriter::new();
        q.snapshot_with(&mut w, |v, w| w.u64(*v)).unwrap();
        let buf = w.into_vec();
        let mut r = SnapReader::new(&buf);
        let mut back: EventQueue<u64> =
            EventQueue::restore_with(&mut r, |r| r.u64()).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.len(), 3);
        let mut order = Vec::new();
        while let Some((_, v)) = back.pop_due(SimTime::MAX) {
            order.push(v);
        }
        assert_eq!(order, vec![4, 1, 3], "time order, then original schedule order");
    }

    /// Same-time tie-break order must survive a snapshot: events scheduled
    /// *after* a restore always order behind restored events at the same
    /// time, exactly as in the uninterrupted run.
    #[test]
    fn post_restore_events_order_behind_restored_same_time_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(50), "restored-1");
        q.schedule(SimTime::from_ns(50), "restored-2");
        let mut w = SnapWriter::new();
        q.snapshot_with(&mut w, |v, w| w.str(v)).unwrap();
        let buf = w.into_vec();
        let mut r = SnapReader::new(&buf);
        let mut back: EventQueue<String> =
            EventQueue::restore_with(&mut r, |r| r.str()).unwrap();
        back.schedule(SimTime::from_ns(50), "new".to_string());
        let mut order = Vec::new();
        while let Some((_, v)) = back.pop_due(SimTime::MAX) {
            order.push(v);
        }
        assert_eq!(order, vec!["restored-1", "restored-2", "new"]);
    }

    // --- Wheel-specific coverage ------------------------------------------

    /// Ticks that straddle every level boundary of the wheel (including the
    /// topmost level via `SimTime::MAX`) pop in exact time order.
    #[test]
    fn wheel_orders_across_all_level_boundaries() {
        let mut q = EventQueue::new();
        let mut ticks: Vec<u64> = (0..LEVELS as u32)
            .flat_map(|k| {
                let base = 1u64 << (SLOT_BITS * k);
                [base, base + 1, base * 3 + 7]
            })
            .collect();
        ticks.push(u64::MAX); // SimTime::MAX promise
        ticks.push(0);
        for &t in ticks.iter().rev() {
            q.schedule(SimTime(t), t);
        }
        let mut out = Vec::new();
        while let Some((t, v)) = q.pop_due(SimTime::MAX) {
            assert_eq!(t.0, v);
            out.push(v);
        }
        ticks.sort_unstable();
        assert_eq!(out, ticks);
    }

    /// Scheduling behind an already-advanced cursor (an event earlier than
    /// one already popped) still delivers in correct relative order with
    /// frontier events — the heap allowed this and the wheel must too.
    #[test]
    fn schedule_behind_cursor_pops_before_frontier() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(100), "frontier");
        q.schedule(SimTime::from_ns(200), "later");
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().1, "frontier");
        q.schedule(SimTime::from_ns(10), "past");
        q.schedule(SimTime::from_ns(150), "mid");
        assert_eq!(q.next_time(), Some(SimTime::from_ns(10)));
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop_due(SimTime::MAX) {
            out.push(v);
        }
        assert_eq!(out, vec!["past", "mid", "later"]);
    }

    /// Interleaved schedule/pop at a single tick keeps FIFO order even as
    /// entries arrive while the frontier slot is being drained.
    #[test]
    fn same_tick_schedule_during_drain_stays_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        q.schedule(t, 0);
        q.schedule(t, 1);
        assert_eq!(q.pop_due(t).unwrap().1, 0);
        q.schedule(t, 2); // arrives while the slot is half-drained
        assert_eq!(q.pop_due(t).unwrap().1, 1);
        assert_eq!(q.pop_due(t).unwrap().1, 2);
        assert!(q.pop_due(t).is_none());
    }

    /// Differential check against the retained binary-heap oracle: a fixed
    /// pseudo-random operation tape produces identical pop sequences and
    /// cancel outcomes. (The `proptest` feature drives the same comparison
    /// with random tapes.)
    #[test]
    fn wheel_matches_heap_oracle_on_fixed_tape() {
        let mut wheel = EventQueue::new();
        let mut heap = oracle::HeapEventQueue::new();
        let mut ids: Vec<(EventId, EventId)> = Vec::new();
        let mut x = 0x2545f4914f6cdd1du64; // splitmix-ish LCG tape
        let mut rand = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let mut now = 0u64;
        for op in 0..2000 {
            match rand() % 4 {
                0 | 1 => {
                    let t = now + rand() % 2_000_000;
                    let wid = wheel.schedule(SimTime(t), op);
                    let hid = heap.schedule(SimTime(t), op);
                    ids.push((wid, hid));
                }
                2 => {
                    now += rand() % 500_000;
                    loop {
                        let w = wheel.pop_due(SimTime(now));
                        let h = heap.pop_due(SimTime(now));
                        match (w, h) {
                            (None, None) => break,
                            (Some((wt, wv)), Some((ht, hv))) => {
                                assert_eq!((wt, wv), (ht, hv), "pop divergence");
                            }
                            (w, h) => panic!("pop presence divergence: {w:?} vs {h:?}"),
                        }
                    }
                }
                _ => {
                    if !ids.is_empty() {
                        let (wid, hid) = ids[(rand() % ids.len() as u64) as usize];
                        assert_eq!(wheel.cancel(wid), heap.cancel(hid), "cancel divergence");
                    }
                }
            }
            assert_eq!(wheel.len(), heap.len(), "len divergence");
            assert_eq!(wheel.next_time(), heap.next_time(), "next_time divergence");
        }
    }
}
