//! Discrete-event queue used by component simulators and the kernel.
//!
//! Events are ordered by time; ties are broken by insertion order so that
//! repeated runs process same-time events identically (a requirement for the
//! determinism property evaluated in §7.6).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Entry<T> {
    time: SimTime,
    seq: u64,
    cancelled: bool,
    data: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable ordering and O(log n) cancellation.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    cancelled: std::collections::HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedule `data` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, data: T) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            seq,
            cancelled: false,
            data,
        });
        self.live += 1;
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns true if the event was
    /// still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.cancelled.insert(id.0) {
            if self.live > 0 {
                self.live -= 1;
            }
            true
        } else {
            false
        }
    }

    /// Time of the earliest pending (non-cancelled) event.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        self.skip_cancelled();
        match self.heap.peek() {
            Some(e) if e.time <= now => {
                let e = self.heap.pop().unwrap();
                self.live -= 1;
                Some((e.time, e.data))
            }
            _ => None,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn skip_cancelled(&mut self) {
        while let Some(e) = self.heap.peek() {
            if e.cancelled || self.cancelled.contains(&e.seq) {
                let e = self.heap.pop().unwrap();
                self.cancelled.remove(&e.seq);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), "c");
        q.schedule(SimTime::from_ns(10), "a");
        q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.next_time(), Some(SimTime::from_ns(10)));
        let mut out = Vec::new();
        while let Some((_, d)) = q.pop_due(SimTime::MAX) {
            out.push(d);
        }
        assert_eq!(out, vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ns(5), i);
        }
        let mut out = Vec::new();
        while let Some((_, d)) = q.pop_due(SimTime::from_ns(5)) {
            out.push(d);
        }
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        assert!(q.pop_due(SimTime::from_ns(5)).is_none());
        assert_eq!(q.pop_due(SimTime::from_ns(10)).unwrap().1, 1);
        assert!(q.pop_due(SimTime::from_ns(15)).is_none());
        assert_eq!(q.pop_due(SimTime::from_ns(25)).unwrap().1, 2);
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(10), "a");
        let b = q.schedule(SimTime::from_ns(20), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel returns false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_ns(20)));
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().1, "b");
        assert!(!q.cancel(b) || true);
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_then_reschedule_is_independent() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(10), 1);
        q.cancel(a);
        let _b = q.schedule(SimTime::from_ns(10), 2);
        assert_eq!(q.pop_due(SimTime::MAX).unwrap().1, 2);
        assert!(q.pop_due(SimTime::MAX).is_none());
    }
}
