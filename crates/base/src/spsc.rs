//! Single-producer / single-consumer message queue (§5.2, §A.2).
//!
//! The queue is a circular array of fixed-size slots. The producer keeps the
//! tail index locally, the consumer keeps the head index locally; the only
//! shared state is the per-slot control byte and payload, which minimizes
//! cache coherence traffic. This mirrors the shared-memory queue layout of
//! the original SimBricks implementation; here the "shared memory segment" is
//! a heap allocation shared between two threads via `Arc`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::pktbuf::{BufPool, PktBuf};
use crate::slot::{MsgType, OwnedMsg, Slot, MAX_PAYLOAD};
use crate::time::SimTime;

/// Default number of slots per unidirectional queue.
pub const DEFAULT_QUEUE_LEN: usize = 64;

struct Shared {
    slots: Box<[Slot]>,
    /// Set when the producer is dropped, letting the consumer distinguish
    /// "no message yet" from "peer is gone".
    producer_closed: AtomicBool,
    /// Set when the consumer is dropped.
    consumer_closed: AtomicBool,
}

/// Create a new SPSC queue with `len` slots, returning its two endpoints.
pub fn queue(len: usize) -> (Producer, Consumer) {
    assert!(len >= 2, "queue needs at least two slots");
    let slots: Vec<Slot> = (0..len).map(|_| Slot::new()).collect();
    let shared = Arc::new(Shared {
        slots: slots.into_boxed_slice(),
        producer_closed: AtomicBool::new(false),
        consumer_closed: AtomicBool::new(false),
    });
    (
        Producer {
            shared: shared.clone(),
            tail: 0,
            sent: 0,
        },
        Consumer {
            shared,
            head: 0,
            received: 0,
            pool: BufPool::new(),
        },
    )
}

/// Error returned when the queue is full or the peer has disappeared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The next slot is still owned by the consumer (queue full).
    Full,
    /// The payload exceeds [`MAX_PAYLOAD`].
    TooLarge,
    /// The consumer endpoint was dropped.
    Disconnected,
}

/// Producer endpoint of an SPSC queue.
pub struct Producer {
    shared: Arc<Shared>,
    tail: usize,
    sent: u64,
}

impl Producer {
    /// Attempt to enqueue one message. Non-blocking: returns
    /// [`SendError::Full`] if the next slot is not yet free.
    pub fn try_send(
        &mut self,
        timestamp: SimTime,
        ty: MsgType,
        payload: &[u8],
    ) -> Result<(), SendError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(SendError::TooLarge);
        }
        if self.shared.consumer_closed.load(Ordering::Relaxed) {
            return Err(SendError::Disconnected);
        }
        let slot = &self.shared.slots[self.tail];
        if !slot.producer_owned() {
            return Err(SendError::Full);
        }
        // Safety: we own the slot (checked above with acquire ordering) and
        // are the only producer.
        unsafe {
            let hdr = &mut *slot.header.get();
            hdr.timestamp = timestamp.as_ps();
            hdr.len = payload.len() as u32;
            let dst = &mut *slot.payload.get();
            dst[..payload.len()].copy_from_slice(payload);
        }
        slot.publish(ty);
        self.tail += 1;
        if self.tail == self.shared.slots.len() {
            self.tail = 0;
        }
        self.sent += 1;
        Ok(())
    }

    /// Number of messages successfully enqueued so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Whether there is room for at least one more message.
    pub fn can_send(&self) -> bool {
        self.shared.slots[self.tail].producer_owned()
    }

    /// Queue capacity in slots.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }

    /// True once the consumer endpoint has been dropped.
    pub fn peer_closed(&self) -> bool {
        self.shared.consumer_closed.load(Ordering::Relaxed)
    }
}

impl Drop for Producer {
    fn drop(&mut self) {
        self.shared.producer_closed.store(true, Ordering::Release);
    }
}

/// Consumer endpoint of an SPSC queue.
pub struct Consumer {
    shared: Arc<Shared>,
    head: usize,
    received: u64,
    /// Arena for received payloads; replaced by the owning kernel's pool via
    /// [`Consumer::set_pool`] so pool counters aggregate per component.
    pool: BufPool,
}

impl Consumer {
    /// Install the buffer pool that received payloads are allocated from.
    pub fn set_pool(&mut self, pool: BufPool) {
        self.pool = pool;
    }

    /// The buffer pool received payloads are allocated from.
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// Attempt to dequeue one message, copying it out of the slot into a
    /// pooled buffer (empty payloads — SYNC messages — are allocation-free).
    pub fn try_recv(&mut self) -> Option<OwnedMsg> {
        let slot = &self.shared.slots[self.head];
        if !slot.consumer_owned() {
            return None;
        }
        let msg = unsafe {
            let hdr = *slot.header.get();
            let payload = &*slot.payload.get();
            let data = if hdr.len == 0 {
                PktBuf::empty()
            } else {
                self.pool.copy_from_slice(&payload[..hdr.len as usize])
            };
            OwnedMsg::new(SimTime::from_ps(hdr.timestamp), slot.msg_type(), data)
        };
        slot.release();
        self.head += 1;
        if self.head == self.shared.slots.len() {
            self.head = 0;
        }
        self.received += 1;
        Some(msg)
    }

    /// Peek at the timestamp of the next message without consuming it.
    pub fn peek_timestamp(&self) -> Option<SimTime> {
        let slot = &self.shared.slots[self.head];
        if !slot.consumer_owned() {
            return None;
        }
        let ts = unsafe { (*slot.header.get()).timestamp };
        Some(SimTime::from_ps(ts))
    }

    /// Number of messages dequeued so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// True once the producer endpoint has been dropped and no message is
    /// pending.
    pub fn is_drained(&self) -> bool {
        self.shared.producer_closed.load(Ordering::Acquire)
            && !self.shared.slots[self.head].consumer_owned()
    }

    /// True once the producer endpoint has been dropped.
    pub fn peer_closed(&self) -> bool {
        self.shared.producer_closed.load(Ordering::Acquire)
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        self.shared.consumer_closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (mut p, mut c) = queue(4);
        assert!(c.try_recv().is_none());
        p.try_send(SimTime::from_ns(1), 3, b"hello").unwrap();
        let m = c.try_recv().unwrap();
        assert_eq!(m.timestamp, SimTime::from_ns(1));
        assert_eq!(m.ty, 3);
        assert_eq!(m.data, b"hello");
        assert!(c.try_recv().is_none());
    }

    #[test]
    fn queue_fills_up_and_drains() {
        let (mut p, mut c) = queue(4);
        for i in 0..4u64 {
            p.try_send(SimTime::from_ns(i), 1, &[i as u8]).unwrap();
        }
        assert_eq!(p.try_send(SimTime::from_ns(9), 1, &[]), Err(SendError::Full));
        assert!(!p.can_send());
        for i in 0..4u64 {
            let m = c.try_recv().unwrap();
            assert_eq!(m.data, vec![i as u8]);
        }
        assert!(p.can_send());
        p.try_send(SimTime::from_ns(10), 1, &[42]).unwrap();
        assert_eq!(c.try_recv().unwrap().data, vec![42]);
    }

    #[test]
    fn wraparound_preserves_fifo_order() {
        let (mut p, mut c) = queue(3);
        let mut next_send = 0u64;
        let mut next_recv = 0u64;
        for _round in 0..50 {
            while p
                .try_send(SimTime::from_ns(next_send), 2, &next_send.to_le_bytes())
                .is_ok()
            {
                next_send += 1;
            }
            while let Some(m) = c.try_recv() {
                assert_eq!(m.data, next_recv.to_le_bytes());
                assert_eq!(m.timestamp, SimTime::from_ns(next_recv));
                next_recv += 1;
            }
        }
        assert_eq!(next_send, next_recv);
        assert!(next_send >= 100);
    }

    #[test]
    fn oversized_payload_rejected() {
        let (mut p, _c) = queue(2);
        let big = vec![0u8; MAX_PAYLOAD + 1];
        assert_eq!(
            p.try_send(SimTime::ZERO, 1, &big),
            Err(SendError::TooLarge)
        );
        let exact = vec![0u8; MAX_PAYLOAD];
        assert!(p.try_send(SimTime::ZERO, 1, &exact).is_ok());
    }

    #[test]
    fn peek_timestamp_does_not_consume() {
        let (mut p, mut c) = queue(4);
        assert!(c.peek_timestamp().is_none());
        p.try_send(SimTime::from_ns(77), 1, &[]).unwrap();
        assert_eq!(c.peek_timestamp(), Some(SimTime::from_ns(77)));
        assert_eq!(c.peek_timestamp(), Some(SimTime::from_ns(77)));
        assert!(c.try_recv().is_some());
        assert!(c.peek_timestamp().is_none());
    }

    #[test]
    fn disconnect_detection() {
        let (p, c) = queue(4);
        assert!(!c.peer_closed());
        drop(p);
        assert!(c.peer_closed());
        assert!(c.is_drained());

        let (mut p, c) = queue(4);
        drop(c);
        assert_eq!(
            p.try_send(SimTime::ZERO, 1, &[]),
            Err(SendError::Disconnected)
        );
    }

    #[test]
    fn drained_only_after_pending_consumed() {
        let (mut p, mut c) = queue(4);
        p.try_send(SimTime::ZERO, 1, &[1]).unwrap();
        drop(p);
        assert!(!c.is_drained());
        c.try_recv().unwrap();
        assert!(c.is_drained());
    }

    #[test]
    fn cross_thread_transfer() {
        let (mut p, mut c) = queue(8);
        let n = 10_000u64;
        let handle = std::thread::spawn(move || {
            let mut sent = 0u64;
            while sent < n {
                if p
                    .try_send(SimTime::from_ps(sent), 5, &sent.to_le_bytes())
                    .is_ok()
                {
                    sent += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        let mut expect = 0u64;
        while expect < n {
            match c.try_recv() {
                Some(m) => {
                    assert_eq!(m.data, expect.to_le_bytes());
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        handle.join().unwrap();
    }
}
