//! Timestamped event logging.
//!
//! SimBricks simulations are *transparent* (§4.1): component simulators can
//! record detailed, timestamped logs of their behaviour without perturbing
//! the simulation (logging happens in wall-clock time, virtual time is
//! unaffected). The logs are also how the paper demonstrates accuracy (§7.5:
//! a decomposed simulation produces the identical log as a monolithic one)
//! and determinism (§7.6: repeated runs produce bit-identical logs).

use std::fmt;

use crate::snap::{SnapReader, SnapResult, SnapWriter, Snapshot};
use crate::time::SimTime;

/// Intern a log tag decoded from a wire or snapshot encoding. [`EventLog`]
/// records tags as `&'static str`; the set of distinct tags in a simulation
/// is small and fixed, so leaking one copy per unique tag is bounded (and
/// repeated decodes reuse the already-interned copy).
pub fn intern_tag(tag: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static TAGS: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut tags = TAGS.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
    if let Some(t) = tags.iter().find(|t| **t == tag) {
        return t;
    }
    let leaked: &'static str = Box::leak(tag.to_string().into_boxed_str());
    tags.push(leaked);
    leaked
}

/// One log record: virtual time, a static tag, and two numeric operands whose
/// meaning depends on the tag (e.g. packet length and flow id).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Virtual time at which the entry was recorded.
    pub time: SimTime,
    /// Static tag naming the event kind (e.g. `"nic_tx"`).
    pub tag: &'static str,
    /// First tag-dependent operand.
    pub a: u64,
    /// Second tag-dependent operand.
    pub b: u64,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.time.as_ps(), self.tag, self.a, self.b)
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn mix_u64(mut h: u64, v: u64) -> u64 {
    for byte in v.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn mix_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for byte in bytes {
        h ^= *byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn mix_entry(mut h: u64, e: &LogEntry) -> u64 {
    h = mix_u64(h, e.time.as_ps());
    h = mix_bytes(h, e.tag.as_bytes());
    h = mix_u64(h, e.a);
    mix_u64(h, e.b)
}

/// Per-epoch FNV accumulator for the fingerprint-only log mode. Epoch `i`
/// covers virtual times `[i * epoch_ps, (i + 1) * epoch_ps)`; each sealed
/// epoch's value is exactly [`EventLog::fingerprint`] of a materialized log
/// holding that epoch's entries.
#[derive(Clone, Debug, PartialEq, Eq)]
struct FpOnly {
    /// Epoch length in picoseconds (always > 0).
    epoch_ps: u64,
    /// Finalized fingerprints of epochs `0..sealed.len()`.
    sealed: Vec<u64>,
    /// Running hash of the current (unsealed) epoch, `sealed.len()`.
    cur_hash: u64,
    /// Entries mixed into the current epoch so far.
    cur_len: u64,
    /// Total entries recorded across all epochs.
    total: u64,
}

impl FpOnly {
    fn new(epoch_ps: u64) -> Self {
        assert!(epoch_ps > 0, "fingerprint epoch must be non-zero");
        FpOnly {
            epoch_ps,
            sealed: Vec::new(),
            cur_hash: FNV_OFFSET,
            cur_len: 0,
            total: 0,
        }
    }

    fn record(&mut self, e: &LogEntry) {
        let epoch = e.time.as_ps() / self.epoch_ps;
        let cur = self.sealed.len() as u64;
        debug_assert!(epoch >= cur, "log time moved backwards across epochs");
        while (self.sealed.len() as u64) < epoch {
            let fp = mix_u64(self.cur_hash, self.cur_len);
            self.sealed.push(fp);
            self.cur_hash = FNV_OFFSET;
            self.cur_len = 0;
        }
        self.cur_hash = mix_entry(self.cur_hash, e);
        self.cur_len += 1;
        self.total += 1;
    }

    /// Sealed epochs plus the current one, padded with empty-epoch
    /// fingerprints to at least `epochs` entries.
    fn fingerprints(&self, epochs: usize) -> Vec<u64> {
        let mut out = self.sealed.clone();
        out.push(mix_u64(self.cur_hash, self.cur_len));
        while out.len() < epochs {
            out.push(EventLog::EMPTY_EPOCH_FP);
        }
        out
    }
}

/// An append-only, per-component event log.
///
/// Two recording modes:
///
/// * **Materialized** (default): every entry is kept; [`EventLog::entries`]
///   exposes them and [`EventLog::fingerprint`] hashes them.
/// * **Fingerprint-only** ([`EventLog::fingerprint_only`]): entries are
///   folded into bounded per-epoch FNV-1a accumulators as they arrive and
///   never stored — O(epochs) memory regardless of run length. The replay
///   bisector uses this mode to compare long runs without materializing
///   their logs.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    enabled: bool,
    entries: Vec<LogEntry>,
    /// `Some` iff the log is in fingerprint-only mode (then `entries` stays
    /// empty and all recording goes through the accumulator).
    fp: Option<FpOnly>,
}

impl EventLog {
    /// Fingerprint of an epoch with no entries (FNV offset with a zero
    /// length mixed in) — what [`EventLog::fingerprint`] returns for an
    /// empty log.
    pub const EMPTY_EPOCH_FP: u64 = {
        // const-fold mix_u64(FNV_OFFSET, 0): eight zero bytes.
        let mut h = FNV_OFFSET;
        let mut i = 0;
        while i < 8 {
            h = h.wrapping_mul(FNV_PRIME);
            i += 1;
        }
        h
    };

    /// A log that records entries.
    pub fn enabled() -> Self {
        EventLog {
            enabled: true,
            entries: Vec::new(),
            fp: None,
        }
    }

    /// A log that drops everything (the default, so logging can stay in the
    /// code without cost concerns).
    pub fn disabled() -> Self {
        EventLog {
            enabled: false,
            entries: Vec::new(),
            fp: None,
        }
    }

    /// A log in fingerprint-only mode: entries are folded into per-epoch
    /// FNV accumulators (epoch `i` covers `[i*epoch, (i+1)*epoch)`) and not
    /// materialized. `epoch` must be non-zero.
    pub fn fingerprint_only(epoch: SimTime) -> Self {
        EventLog {
            enabled: true,
            entries: Vec::new(),
            fp: Some(FpOnly::new(epoch.as_ps())),
        }
    }

    /// Whether this log records entries.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether this log is in fingerprint-only mode.
    pub fn is_fingerprint_only(&self) -> bool {
        self.fp.is_some()
    }

    /// The epoch length, when in fingerprint-only mode.
    pub fn fingerprint_epoch(&self) -> Option<SimTime> {
        self.fp.as_ref().map(|f| SimTime::from_ps(f.epoch_ps))
    }

    /// Convert this log to fingerprint-only mode in place: existing entries
    /// are folded into the per-epoch accumulators (in recording order) and
    /// dropped. A no-op if already fingerprint-only with the same epoch;
    /// panics on an epoch mismatch.
    pub fn to_fingerprint_only(&mut self, epoch: SimTime) {
        if let Some(fp) = &self.fp {
            assert_eq!(
                fp.epoch_ps,
                epoch.as_ps(),
                "log already fingerprint-only with a different epoch"
            );
            return;
        }
        let mut fp = FpOnly::new(epoch.as_ps());
        for e in &self.entries {
            fp.record(e);
        }
        self.entries = Vec::new();
        self.fp = Some(fp);
    }

    /// Append an entry (no-op when the log is disabled).
    #[inline]
    pub fn record(&mut self, time: SimTime, tag: &'static str, a: u64, b: u64) {
        if !self.enabled {
            return;
        }
        let e = LogEntry { time, tag, a, b };
        match &mut self.fp {
            Some(fp) => fp.record(&e),
            None => self.entries.push(e),
        }
    }

    /// All recorded entries, in recording order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of materialized entries (always 0 in fingerprint-only mode;
    /// see [`EventLog::recorded`] for the mode-independent count).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total entries recorded, in either mode.
    pub fn recorded(&self) -> u64 {
        match &self.fp {
            Some(fp) => fp.total,
            None => self.entries.len() as u64,
        }
    }

    /// Whether nothing has been materialized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keep only entries with the given tag (useful when comparing the
    /// network-visible part of two configurations in §7.5).
    pub fn filtered(&self, tag: &str) -> Vec<LogEntry> {
        self.entries.iter().copied().filter(|e| e.tag == tag).collect()
    }

    /// Order-independent-free, content-sensitive fingerprint (FNV-1a over all
    /// entries, in order). Two logs are considered identical iff their
    /// fingerprints and lengths match. Computed over the materialized entries
    /// only — fingerprint-only logs expose per-epoch fingerprints via
    /// [`EventLog::epoch_fingerprints`] instead.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for e in &self.entries {
            h = mix_entry(h, e);
        }
        mix_u64(h, self.entries.len() as u64)
    }

    /// Per-epoch fingerprints: element `i` equals [`EventLog::fingerprint`]
    /// of a materialized log holding exactly the entries with
    /// `time in [i*epoch, (i+1)*epoch)`. The result is padded with
    /// [`EventLog::EMPTY_EPOCH_FP`] to at least `epochs` elements so two
    /// logs of the same run length compare index-by-index.
    ///
    /// Works in both modes; returns `None` when the log is fingerprint-only
    /// with a *different* epoch length (the accumulators cannot be re-bucketed).
    pub fn epoch_fingerprints(&self, epoch: SimTime, epochs: usize) -> Option<Vec<u64>> {
        assert!(epoch > SimTime::ZERO, "fingerprint epoch must be non-zero");
        if let Some(fp) = &self.fp {
            if fp.epoch_ps != epoch.as_ps() {
                return None;
            }
            return Some(fp.fingerprints(epochs));
        }
        let mut fp = FpOnly::new(epoch.as_ps());
        for e in &self.entries {
            fp.record(e);
        }
        Some(fp.fingerprints(epochs))
    }

    /// Merge several component logs into one global, time-sorted trace. Ties
    /// are broken by the order the logs are supplied in, then entry order,
    /// keeping the merge deterministic.
    pub fn merge(logs: &[&EventLog]) -> EventLog {
        let mut all: Vec<(usize, usize, LogEntry)> = Vec::new();
        for (li, l) in logs.iter().enumerate() {
            for (ei, e) in l.entries.iter().enumerate() {
                all.push((li, ei, *e));
            }
        }
        all.sort_by(|(la, ea, a), (lb, eb, b)| {
            a.time.cmp(&b.time).then(la.cmp(lb)).then(ea.cmp(eb))
        });
        EventLog {
            enabled: true,
            entries: all.into_iter().map(|(_, _, e)| e).collect(),
            fp: None,
        }
    }
}

impl Snapshot for EventLog {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        match &self.fp {
            None => {
                w.u8(0); // mode tag: materialized
                w.bool(self.enabled);
                w.usize(self.entries.len());
                for e in &self.entries {
                    w.time(e.time);
                    w.str(e.tag);
                    w.u64(e.a);
                    w.u64(e.b);
                }
            }
            Some(fp) => {
                w.u8(1); // mode tag: fingerprint-only
                w.bool(self.enabled);
                w.u64(fp.epoch_ps);
                w.usize(fp.sealed.len());
                for s in &fp.sealed {
                    w.u64(*s);
                }
                w.u64(fp.cur_hash);
                w.u64(fp.cur_len);
                w.u64(fp.total);
            }
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        let mode = r.u8()?;
        match mode {
            0 => {
                self.enabled = r.bool()?;
                let n = r.usize()?;
                self.entries = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let time = r.time()?;
                    let tag = intern_tag(&r.str()?);
                    let a = r.u64()?;
                    let b = r.u64()?;
                    self.entries.push(LogEntry { time, tag, a, b });
                }
                self.fp = None;
            }
            1 => {
                self.enabled = r.bool()?;
                let epoch_ps = r.u64()?;
                if epoch_ps == 0 {
                    return Err(crate::snap::SnapError::Corrupt(
                        "fingerprint-only event log with zero epoch".into(),
                    ));
                }
                let n = r.usize()?;
                let mut sealed = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    sealed.push(r.u64()?);
                }
                let cur_hash = r.u64()?;
                let cur_len = r.u64()?;
                let total = r.u64()?;
                self.entries = Vec::new();
                self.fp = Some(FpOnly {
                    epoch_ps,
                    sealed,
                    cur_hash,
                    cur_len,
                    total,
                });
            }
            other => {
                return Err(crate::snap::SnapError::Corrupt(format!(
                    "unknown event log mode tag {other}"
                )))
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_preserves_entries_and_fingerprint() {
        let mut l = EventLog::enabled();
        for i in 0..50u64 {
            l.record(SimTime::from_ns(i), "pkt", i, i * 3);
        }
        let mut w = SnapWriter::new();
        l.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        let mut back = EventLog::disabled();
        back.restore(&mut SnapReader::new(&buf)).unwrap();
        assert!(back.is_enabled());
        assert_eq!(back.entries(), l.entries());
        assert_eq!(back.fingerprint(), l.fingerprint());
    }

    #[test]
    fn intern_tag_reuses_identical_tags() {
        let a = intern_tag("checkpoint-test-tag");
        let b = intern_tag("checkpoint-test-tag");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut l = EventLog::disabled();
        l.record(SimTime::from_ns(1), "tx", 1, 2);
        assert!(l.is_empty());
        assert!(!l.is_enabled());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut l = EventLog::enabled();
        l.record(SimTime::from_ns(1), "tx", 100, 0);
        l.record(SimTime::from_ns(2), "rx", 100, 0);
        assert_eq!(l.len(), 2);
        assert_eq!(l.entries()[0].tag, "tx");
        assert_eq!(l.entries()[1].time, SimTime::from_ns(2));
    }

    #[test]
    fn fingerprint_detects_differences() {
        let mut a = EventLog::enabled();
        let mut b = EventLog::enabled();
        for i in 0..100u64 {
            a.record(SimTime::from_ns(i), "pkt", i, i * 2);
            b.record(SimTime::from_ns(i), "pkt", i, i * 2);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.record(SimTime::from_ns(100), "pkt", 1, 1);
        assert_ne!(a.fingerprint(), b.fingerprint());

        let mut c = EventLog::enabled();
        for i in 0..100u64 {
            let v = if i == 50 { 999 } else { i };
            c.record(SimTime::from_ns(i), "pkt", v, i * 2);
        }
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn filtered_selects_tag() {
        let mut l = EventLog::enabled();
        l.record(SimTime::from_ns(1), "tx", 0, 0);
        l.record(SimTime::from_ns(2), "rx", 0, 0);
        l.record(SimTime::from_ns(3), "tx", 1, 0);
        assert_eq!(l.filtered("tx").len(), 2);
        assert_eq!(l.filtered("rx").len(), 1);
        assert_eq!(l.filtered("other").len(), 0);
    }

    /// Reference per-epoch fingerprints: slice the entries into epoch
    /// windows and fingerprint each window as its own materialized log.
    fn reference_epoch_fps(entries: &[LogEntry], epoch: SimTime, epochs: usize) -> Vec<u64> {
        let need = entries
            .iter()
            .map(|e| (e.time.as_ps() / epoch.as_ps()) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(epochs);
        (0..need)
            .map(|i| {
                let mut l = EventLog::enabled();
                for e in entries {
                    if e.time.as_ps() / epoch.as_ps() == i as u64 {
                        l.record(e.time, e.tag, e.a, e.b);
                    }
                }
                l.fingerprint()
            })
            .collect()
    }

    #[test]
    fn fingerprint_only_matches_materialized_per_epoch() {
        let epoch = SimTime::from_ns(10);
        // Entries spread over epochs 0, 0, 2, 5 — with empty epochs between.
        let mut full = EventLog::enabled();
        let mut fp = EventLog::fingerprint_only(epoch);
        for (t, a) in [(1u64, 7u64), (9, 8), (25, 9), (57, 10)] {
            full.record(SimTime::from_ns(t), "pkt", a, a * 2);
            fp.record(SimTime::from_ns(t), "pkt", a, a * 2);
        }
        assert!(fp.is_fingerprint_only());
        assert!(fp.entries().is_empty());
        assert_eq!(fp.recorded(), 4);
        let want = reference_epoch_fps(full.entries(), epoch, 8);
        assert_eq!(full.epoch_fingerprints(epoch, 8).unwrap(), want);
        assert_eq!(fp.epoch_fingerprints(epoch, 8).unwrap(), want);
        // An epoch with no entries fingerprints as the empty log.
        assert_eq!(want[1], EventLog::EMPTY_EPOCH_FP);
        assert_eq!(EventLog::enabled().fingerprint(), EventLog::EMPTY_EPOCH_FP);
        // Mismatched epoch length can't be re-bucketed in fp-only mode.
        assert!(fp.epoch_fingerprints(SimTime::from_ns(20), 4).is_none());
        assert!(full.epoch_fingerprints(SimTime::from_ns(20), 4).is_some());
    }

    #[test]
    fn to_fingerprint_only_converts_and_keeps_recording() {
        let epoch = SimTime::from_ns(5);
        let mut full = EventLog::enabled();
        let mut conv = EventLog::enabled();
        for t in [0u64, 3, 6, 11] {
            full.record(SimTime::from_ns(t), "tx", t, 0);
            conv.record(SimTime::from_ns(t), "tx", t, 0);
        }
        conv.to_fingerprint_only(epoch);
        assert!(conv.entries().is_empty());
        // Continue recording after the conversion, in both logs.
        for t in [13u64, 22] {
            full.record(SimTime::from_ns(t), "rx", t, 1);
            conv.record(SimTime::from_ns(t), "rx", t, 1);
        }
        assert_eq!(
            conv.epoch_fingerprints(epoch, 1).unwrap(),
            full.epoch_fingerprints(epoch, 1).unwrap()
        );
        assert_eq!(conv.recorded(), full.recorded());
        // Converting again with the same epoch is a no-op.
        conv.to_fingerprint_only(epoch);
        assert_eq!(conv.recorded(), 6);
    }

    #[test]
    fn fingerprint_only_snapshot_roundtrip() {
        let epoch = SimTime::from_us(1);
        let mut l = EventLog::fingerprint_only(epoch);
        for i in 0..200u64 {
            l.record(SimTime::from_ns(i * 37), "pkt", i, i ^ 5);
        }
        let mut w = SnapWriter::new();
        l.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        let mut back = EventLog::disabled();
        back.restore(&mut SnapReader::new(&buf)).unwrap();
        assert!(back.is_fingerprint_only());
        assert_eq!(back.fingerprint_epoch(), Some(epoch));
        assert_eq!(back.recorded(), l.recorded());
        assert_eq!(
            back.epoch_fingerprints(epoch, 16).unwrap(),
            l.epoch_fingerprints(epoch, 16).unwrap()
        );
        // Recording continues from the restored accumulator state.
        let mut cont = l.clone();
        back.record(SimTime::from_ns(200 * 37), "pkt", 1, 2);
        cont.record(SimTime::from_ns(200 * 37), "pkt", 1, 2);
        assert_eq!(
            back.epoch_fingerprints(epoch, 16).unwrap(),
            cont.epoch_fingerprints(epoch, 16).unwrap()
        );
    }

    #[test]
    fn materialized_snapshot_rejects_unknown_mode_tag() {
        let l = EventLog::enabled();
        let mut w = SnapWriter::new();
        l.snapshot(&mut w).unwrap();
        let mut buf = w.into_vec();
        buf[0] = 9; // corrupt the mode tag
        let mut back = EventLog::disabled();
        assert!(back.restore(&mut SnapReader::new(&buf)).is_err());
    }

    #[test]
    fn merge_sorts_by_time_stably() {
        let mut a = EventLog::enabled();
        let mut b = EventLog::enabled();
        a.record(SimTime::from_ns(5), "a", 0, 0);
        a.record(SimTime::from_ns(10), "a", 1, 0);
        b.record(SimTime::from_ns(5), "b", 0, 0);
        b.record(SimTime::from_ns(7), "b", 1, 0);
        let m = EventLog::merge(&[&a, &b]);
        let tags: Vec<_> = m.entries().iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec!["a", "b", "b", "a"]);
    }
}
