//! Timestamped event logging.
//!
//! SimBricks simulations are *transparent* (§4.1): component simulators can
//! record detailed, timestamped logs of their behaviour without perturbing
//! the simulation (logging happens in wall-clock time, virtual time is
//! unaffected). The logs are also how the paper demonstrates accuracy (§7.5:
//! a decomposed simulation produces the identical log as a monolithic one)
//! and determinism (§7.6: repeated runs produce bit-identical logs).

use std::fmt;

use crate::snap::{SnapReader, SnapResult, SnapWriter, Snapshot};
use crate::time::SimTime;

/// Intern a log tag decoded from a wire or snapshot encoding. [`EventLog`]
/// records tags as `&'static str`; the set of distinct tags in a simulation
/// is small and fixed, so leaking one copy per unique tag is bounded (and
/// repeated decodes reuse the already-interned copy).
pub fn intern_tag(tag: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static TAGS: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut tags = TAGS.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
    if let Some(t) = tags.iter().find(|t| **t == tag) {
        return t;
    }
    let leaked: &'static str = Box::leak(tag.to_string().into_boxed_str());
    tags.push(leaked);
    leaked
}

/// One log record: virtual time, a static tag, and two numeric operands whose
/// meaning depends on the tag (e.g. packet length and flow id).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// Virtual time at which the entry was recorded.
    pub time: SimTime,
    /// Static tag naming the event kind (e.g. `"nic_tx"`).
    pub tag: &'static str,
    /// First tag-dependent operand.
    pub a: u64,
    /// Second tag-dependent operand.
    pub b: u64,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.time.as_ps(), self.tag, self.a, self.b)
    }
}

/// An append-only, per-component event log.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    enabled: bool,
    entries: Vec<LogEntry>,
}

impl EventLog {
    /// A log that records entries.
    pub fn enabled() -> Self {
        EventLog {
            enabled: true,
            entries: Vec::new(),
        }
    }

    /// A log that drops everything (the default, so logging can stay in the
    /// code without cost concerns).
    pub fn disabled() -> Self {
        EventLog {
            enabled: false,
            entries: Vec::new(),
        }
    }

    /// Whether this log records entries.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an entry (no-op when the log is disabled).
    #[inline]
    pub fn record(&mut self, time: SimTime, tag: &'static str, a: u64, b: u64) {
        if self.enabled {
            self.entries.push(LogEntry { time, tag, a, b });
        }
    }

    /// All recorded entries, in recording order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keep only entries with the given tag (useful when comparing the
    /// network-visible part of two configurations in §7.5).
    pub fn filtered(&self, tag: &str) -> Vec<LogEntry> {
        self.entries.iter().copied().filter(|e| e.tag == tag).collect()
    }

    /// Order-independent-free, content-sensitive fingerprint (FNV-1a over all
    /// entries, in order). Two logs are considered identical iff their
    /// fingerprints and lengths match.
    pub fn fingerprint(&self) -> u64 {
        fn mix_u64(mut h: u64, v: u64) -> u64 {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for e in &self.entries {
            h = mix_u64(h, e.time.as_ps());
            for byte in e.tag.as_bytes() {
                h ^= *byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h = mix_u64(h, e.a);
            h = mix_u64(h, e.b);
        }
        mix_u64(h, self.entries.len() as u64)
    }

    /// Merge several component logs into one global, time-sorted trace. Ties
    /// are broken by the order the logs are supplied in, then entry order,
    /// keeping the merge deterministic.
    pub fn merge(logs: &[&EventLog]) -> EventLog {
        let mut all: Vec<(usize, usize, LogEntry)> = Vec::new();
        for (li, l) in logs.iter().enumerate() {
            for (ei, e) in l.entries.iter().enumerate() {
                all.push((li, ei, *e));
            }
        }
        all.sort_by(|(la, ea, a), (lb, eb, b)| {
            a.time.cmp(&b.time).then(la.cmp(lb)).then(ea.cmp(eb))
        });
        EventLog {
            enabled: true,
            entries: all.into_iter().map(|(_, _, e)| e).collect(),
        }
    }
}

impl Snapshot for EventLog {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.bool(self.enabled);
        w.usize(self.entries.len());
        for e in &self.entries {
            w.time(e.time);
            w.str(e.tag);
            w.u64(e.a);
            w.u64(e.b);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.enabled = r.bool()?;
        let n = r.usize()?;
        self.entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let time = r.time()?;
            let tag = intern_tag(&r.str()?);
            let a = r.u64()?;
            let b = r.u64()?;
            self.entries.push(LogEntry { time, tag, a, b });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_preserves_entries_and_fingerprint() {
        let mut l = EventLog::enabled();
        for i in 0..50u64 {
            l.record(SimTime::from_ns(i), "pkt", i, i * 3);
        }
        let mut w = SnapWriter::new();
        l.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        let mut back = EventLog::disabled();
        back.restore(&mut SnapReader::new(&buf)).unwrap();
        assert!(back.is_enabled());
        assert_eq!(back.entries(), l.entries());
        assert_eq!(back.fingerprint(), l.fingerprint());
    }

    #[test]
    fn intern_tag_reuses_identical_tags() {
        let a = intern_tag("checkpoint-test-tag");
        let b = intern_tag("checkpoint-test-tag");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut l = EventLog::disabled();
        l.record(SimTime::from_ns(1), "tx", 1, 2);
        assert!(l.is_empty());
        assert!(!l.is_enabled());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut l = EventLog::enabled();
        l.record(SimTime::from_ns(1), "tx", 100, 0);
        l.record(SimTime::from_ns(2), "rx", 100, 0);
        assert_eq!(l.len(), 2);
        assert_eq!(l.entries()[0].tag, "tx");
        assert_eq!(l.entries()[1].time, SimTime::from_ns(2));
    }

    #[test]
    fn fingerprint_detects_differences() {
        let mut a = EventLog::enabled();
        let mut b = EventLog::enabled();
        for i in 0..100u64 {
            a.record(SimTime::from_ns(i), "pkt", i, i * 2);
            b.record(SimTime::from_ns(i), "pkt", i, i * 2);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.record(SimTime::from_ns(100), "pkt", 1, 1);
        assert_ne!(a.fingerprint(), b.fingerprint());

        let mut c = EventLog::enabled();
        for i in 0..100u64 {
            let v = if i == 50 { 999 } else { i };
            c.record(SimTime::from_ns(i), "pkt", v, i * 2);
        }
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn filtered_selects_tag() {
        let mut l = EventLog::enabled();
        l.record(SimTime::from_ns(1), "tx", 0, 0);
        l.record(SimTime::from_ns(2), "rx", 0, 0);
        l.record(SimTime::from_ns(3), "tx", 1, 0);
        assert_eq!(l.filtered("tx").len(), 2);
        assert_eq!(l.filtered("rx").len(), 1);
        assert_eq!(l.filtered("other").len(), 0);
    }

    #[test]
    fn merge_sorts_by_time_stably() {
        let mut a = EventLog::enabled();
        let mut b = EventLog::enabled();
        a.record(SimTime::from_ns(5), "a", 0, 0);
        a.record(SimTime::from_ns(10), "a", 1, 0);
        b.record(SimTime::from_ns(5), "b", 0, 0);
        b.record(SimTime::from_ns(7), "b", 1, 0);
        let m = EventLog::merge(&[&a, &b]);
        let tags: Vec<_> = m.entries().iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec!["a", "b", "b", "a"]);
    }
}
