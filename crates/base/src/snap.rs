//! Deterministic checkpoint/restore: snapshot wire format primitives.
//!
//! A checkpoint captures the complete dynamic state of a simulation at a
//! quiesced virtual time so a later run can resume from it and produce the
//! **bit-identical** continuation (same event logs, same results) as an
//! uninterrupted run — the property `tests/integration_checkpoint.rs` proves
//! across executors and transports. Everything here is plain little-endian
//! byte encoding with no external dependencies:
//!
//! * [`SnapWriter`] / [`SnapReader`] — bounded, length-checked primitive
//!   encode/decode. Every read is validated; truncated or corrupt input
//!   yields a [`SnapError`], never a panic or undefined behaviour.
//! * [`Snapshot`] — the trait every stateful component implements: write the
//!   dynamic state (not static configuration, which the experiment builder
//!   reconstructs) and read it back in place.
//!
//! Encoding conventions, so files are deterministic and comparable:
//! integers are little-endian; byte strings are `u32` length-prefixed;
//! collections are length-prefixed and emitted in a canonical order (maps
//! sorted by key — hash-map iteration order never leaks into a snapshot).

use std::fmt;

use crate::time::SimTime;

/// Errors surfaced while decoding a snapshot. Corrupt, truncated, or
/// version-mismatched input must fail with one of these — loudly, with
/// context — rather than panicking or silently misrestoring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the expected data (truncated file).
    Truncated,
    /// The leading magic bytes did not match (not a checkpoint file).
    BadMagic,
    /// The format version is not one this build can decode.
    Version {
        /// Version found in the input.
        found: u16,
        /// Version this build writes and understands.
        expected: u16,
    },
    /// The input decoded structurally but the content is inconsistent
    /// (failed checksum, impossible field value, mismatched topology).
    Corrupt(String),
    /// A component in the experiment does not implement snapshotting.
    Unsupported(String),
    /// An I/O error while reading or writing the checkpoint file.
    Io(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "checkpoint truncated: input ended mid-record"),
            SnapError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            SnapError::Version { found, expected } => write!(
                f,
                "checkpoint format version {found} not supported (this build reads version {expected})"
            ),
            SnapError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            SnapError::Unsupported(what) => {
                write!(f, "checkpointing unsupported: {what}")
            }
            SnapError::Io(why) => write!(f, "checkpoint i/o error: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e.to_string())
    }
}

/// Result alias for snapshot operations.
pub type SnapResult<T> = Result<T, SnapError>;

/// Append-only encoder for snapshot data.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Write a boolean as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Write an `f64` via its IEEE-754 bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a virtual time (picoseconds).
    pub fn time(&mut self, t: SimTime) {
        self.u64(t.as_ps());
    }

    /// Write an optional virtual time (presence byte + value).
    pub fn opt_time(&mut self, t: Option<SimTime>) {
        match t {
            Some(t) => {
                self.bool(true);
                self.time(t);
            }
            None => self.bool(false),
        }
    }

    /// Write a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Write a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Append raw bytes with no length prefix (caller frames them).
    pub fn raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked decoder over snapshot bytes.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, off: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.off
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> SnapResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> SnapResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> SnapResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` encoded as `u64`, rejecting values beyond this
    /// platform's address range.
    pub fn usize(&mut self) -> SnapResult<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt(format!("usize out of range: {v}")))
    }

    /// Read a boolean, rejecting anything but 0/1.
    pub fn bool(&mut self) -> SnapResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapError::Corrupt(format!("bad bool byte {v:#x}"))),
        }
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> SnapResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a virtual time.
    pub fn time(&mut self) -> SnapResult<SimTime> {
        Ok(SimTime::from_ps(self.u64()?))
    }

    /// Read an optional virtual time.
    pub fn opt_time(&mut self) -> SnapResult<Option<SimTime>> {
        Ok(if self.bool()? { Some(self.time()?) } else { None })
    }

    /// Read a `u32`-length-prefixed byte string. The length is validated
    /// against the remaining input before any allocation, so a corrupted
    /// length cannot trigger an absurd allocation.
    pub fn bytes(&mut self) -> SnapResult<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> SnapResult<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| SnapError::Corrupt("non-utf8 string".into()))
    }
}

/// The checkpoint interface of a stateful component: encode the dynamic
/// state, and load it back into a freshly rebuilt instance. Static
/// configuration (addresses, link parameters, cost models) is **not**
/// encoded — the experiment build function reconstructs it, and restore only
/// overwrites what evolves during a run. `restore(decode(encode(x)))`
/// followed by continued execution must be indistinguishable from never
/// having snapshotted: that is what the round-trip property tests and the
/// bit-identity integration matrix pin down.
pub trait Snapshot {
    /// Append this component's dynamic state to `w`.
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()>;
    /// Load state previously written by [`Snapshot::snapshot`] into `self`
    /// (which must have been rebuilt with the same static configuration).
    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()>;
}

/// FNV-1a over a byte slice — the integrity checksum trailing every
/// checkpoint file (cheap, deterministic, dependency-free).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.usize(12);
        w.bool(true);
        w.bool(false);
        w.f64(0.125);
        w.time(SimTime::from_ns(42));
        w.opt_time(Some(SimTime::from_us(1)));
        w.opt_time(None);
        w.bytes(b"hello");
        w.str("world");
        let buf = w.into_vec();
        let mut r = SnapReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.usize().unwrap(), 12);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), 0.125);
        assert_eq!(r.time().unwrap(), SimTime::from_ns(42));
        assert_eq!(r.opt_time().unwrap(), Some(SimTime::from_us(1)));
        assert_eq!(r.opt_time().unwrap(), None);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.str().unwrap(), "world");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = SnapWriter::new();
        w.u64(1);
        let buf = w.into_vec();
        let mut r = SnapReader::new(&buf[..5]);
        assert_eq!(r.u64(), Err(SnapError::Truncated));
        // A length prefix pointing past the end is caught, with no
        // allocation of the bogus length.
        let mut w = SnapWriter::new();
        w.u32(u32::MAX);
        let buf = w.into_vec();
        let mut r = SnapReader::new(&buf);
        assert_eq!(r.bytes(), Err(SnapError::Truncated));
    }

    #[test]
    fn bad_bool_and_usize_are_corrupt() {
        let buf = [9u8];
        let mut r = SnapReader::new(&buf);
        assert!(matches!(r.bool(), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn checksum_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
