//! # simbricks-base
//!
//! Core building blocks of the SimBricks modular simulation framework
//! (Rust reimplementation of Li, Li, Kaufmann, SIGCOMM 2022):
//!
//! * [`time`] — virtual time ([`SimTime`], picosecond resolution).
//! * [`slot`] — fixed-size message slots with the ownership/type control byte.
//! * [`spsc`] — single-producer/single-consumer polled message queues (§A.2).
//! * [`channel`] — bidirectional channels built from two SPSC queues (§5.2).
//! * [`impair`] — deterministic link impairments (loss, jitter, reordering,
//!   rate variation) applied by the sending endpoint of a channel.
//! * [`sync`] — the pairwise synchronization protocol exploiting link
//!   latency for slack (§5.5).
//! * [`barrier`] — epoch/global-barrier synchronization, the dist-gem5-style
//!   baseline the paper compares against.
//! * [`event`] — deterministic discrete-event queue.
//! * [`kernel`] — the component kernel ("SimBricks adapter" + event loop)
//!   driving a [`Model`].
//! * [`log`] — timestamped event logs for the accuracy/determinism checks.
//! * [`pktbuf`] — pooled, reference-counted packet buffers ([`PktBuf`]):
//!   the zero-copy payload type carried by every message on the hot path.
//! * [`snap`] — deterministic checkpoint/restore wire format and the
//!   [`Snapshot`] trait implemented by every stateful component.
//! * [`stats`] — per-component run statistics.
//!
//! Component simulators (hosts, NICs, networks, storage) live in the other
//! `simbricks-*` crates and only interact with each other through messages
//! exchanged via this crate.

#![deny(missing_docs)]

pub mod barrier;
pub mod channel;
pub mod event;
pub mod impair;
pub mod kernel;
pub mod log;
pub mod pktbuf;
pub mod slot;
pub mod snap;
pub mod spsc;
pub mod stats;
pub mod sync;
pub mod time;
pub mod trace;

pub use barrier::{BarrierMember, EpochController};
pub use channel::{channel_pair, ChannelEnd, ChannelParams};
pub use event::{EventId, EventQueue};
pub use impair::{fnv1a_str, mix_seed, ImpairState, Impairment, LossModel};
pub use kernel::{Kernel, Model, PortId, StepOutcome, SyncLookahead, WakeHint};
pub use log::{intern_tag, EventLog, LogEntry};
pub use pktbuf::{BufPool, PktBuf, PoolStats, DEFAULT_HEADROOM, SEG_CAPACITY};
pub use slot::{MsgType, OwnedMsg, MAX_PAYLOAD, MSG_SYNC};
pub use snap::{fnv1a, SnapError, SnapReader, SnapResult, SnapWriter, Snapshot};
pub use spsc::{Consumer, Producer, SendError};
pub use stats::KernelStats;
pub use sync::{PortStats, SyncPort};
pub use time::{bw, transmission_time, SimTime};

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The SPSC queue never reorders, drops, or duplicates messages.
        #[test]
        fn spsc_fifo_property(msgs in proptest::collection::vec((0u64..1_000_000, 1u8..=127, proptest::collection::vec(any::<u8>(), 0..64)), 1..200),
                              qlen in 2usize..16) {
            let (mut p, mut c) = spsc::queue(qlen);
            let mut received = Vec::new();
            let mut it = msgs.iter();
            let mut pending: Option<&(u64, u8, Vec<u8>)> = None;
            loop {
                // try to push as much as possible
                loop {
                    let next = match pending.take().or_else(|| it.next()) {
                        Some(m) => m,
                        None => break,
                    };
                    match p.try_send(SimTime::from_ps(next.0), next.1, &next.2) {
                        Ok(()) => {}
                        Err(SendError::Full) => { pending = Some(next); break; }
                        Err(e) => panic!("unexpected error {e:?}"),
                    }
                }
                // drain
                let mut drained = false;
                while let Some(m) = c.try_recv() {
                    received.push((m.timestamp.as_ps(), m.ty, m.data));
                    drained = true;
                }
                if pending.is_none() && !drained && received.len() == msgs.len() {
                    break;
                }
                if pending.is_none() && received.len() == msgs.len() {
                    break;
                }
            }
            prop_assert_eq!(received, msgs);
        }

        /// Wire encoding round-trips arbitrary messages.
        #[test]
        fn owned_msg_wire_roundtrip(ts in any::<u64>(), ty in 0u8..=127,
                                    data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let m = OwnedMsg::new(SimTime::from_ps(ts), ty, data);
            let (back, used) = OwnedMsg::from_wire(&m.to_wire()).unwrap();
            prop_assert_eq!(used, m.to_wire().len());
            prop_assert_eq!(back, m);
        }

        /// The event queue pops in non-decreasing time order regardless of
        /// insertion order.
        #[test]
        fn event_queue_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ps(*t), i);
            }
            let mut last = SimTime::ZERO;
            let mut n = 0;
            while let Some((t, _)) = q.pop_due(SimTime::MAX) {
                prop_assert!(t >= last);
                last = t;
                n += 1;
            }
            prop_assert_eq!(n, times.len());
        }

        /// Snapshot round trip: an [`EventLog`] with arbitrary entries
        /// decodes back bit-identically (`decode(encode(s)) == s`).
        #[test]
        fn event_log_snapshot_roundtrip(entries in proptest::collection::vec(
            (any::<u64>(), 0usize..4, any::<u64>(), any::<u64>()), 0..100)) {
            let tags = ["tx", "rx", "irq", "mark"];
            let mut log = EventLog::enabled();
            for (t, tag, a, b) in &entries {
                log.record(SimTime::from_ps(*t), tags[*tag], *a, *b);
            }
            let mut w = SnapWriter::new();
            log.snapshot(&mut w).unwrap();
            let buf = w.into_vec();
            let mut back = EventLog::disabled();
            back.restore(&mut SnapReader::new(&buf)).unwrap();
            prop_assert_eq!(back.entries(), log.entries());
            prop_assert_eq!(back.fingerprint(), log.fingerprint());
        }

        /// Snapshot round trip: [`KernelStats`] counters survive exactly.
        #[test]
        fn kernel_stats_snapshot_roundtrip(f in proptest::collection::vec(any::<u64>(), 15)) {
            let s = KernelStats {
                final_time: SimTime::from_ps(f[0]),
                msgs_delivered: f[1],
                timers_fired: f[2],
                advances: f[3],
                blocked_polls: f[4],
                barrier_waits: f[5],
                data_sent: f[6],
                data_received: f[7],
                syncs_sent: f[8],
                syncs_received: f[9],
                backpressured: f[10],
                syncs_coalesced: f[11],
                pool_hits: f[12],
                pool_misses: f[13],
                pool_fallbacks: f[14],
            };
            let mut w = SnapWriter::new();
            s.snapshot(&mut w).unwrap();
            let buf = w.into_vec();
            let mut back = KernelStats::default();
            back.restore(&mut SnapReader::new(&buf)).unwrap();
            prop_assert_eq!(back, s);
        }

        /// Snapshot round trip: an [`EventQueue`] preserves content and —
        /// crucially for determinism — the (time, schedule-order) pop order
        /// of same-time events.
        #[test]
        fn event_queue_snapshot_roundtrip(times in proptest::collection::vec(0u64..1000, 1..64)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_ps(*t), i as u64);
            }
            let mut w = SnapWriter::new();
            q.snapshot_with(&mut w, |v, w| w.u64(*v)).unwrap();
            let buf = w.into_vec();
            let mut back: EventQueue<u64> =
                EventQueue::restore_with(&mut SnapReader::new(&buf), |r| r.u64()).unwrap();
            let mut expect = Vec::new();
            while let Some(e) = q.pop_due(SimTime::MAX) { expect.push(e); }
            let mut got = Vec::new();
            while let Some(e) = back.pop_due(SimTime::MAX) { got.push(e); }
            prop_assert_eq!(got, expect);
        }

        /// Snapshot round trip: a [`SyncPort`] with arbitrary pending
        /// messages and horizon state restores exactly.
        #[test]
        fn sync_port_snapshot_roundtrip(msgs in proptest::collection::vec(
            (0u64..1_000_000u64, 1u8..=127, proptest::collection::vec(any::<u8>(), 0..64)), 0..32)) {
            let params = ChannelParams::default_sync().with_queue_len(256);
            let (a, b) = channel_pair(params);
            let mut a = SyncPort::new(a);
            let mut b = SyncPort::new(b);
            let mut sorted = msgs.clone();
            sorted.sort_by_key(|(t, _, _)| *t);
            for (t, ty, data) in &sorted {
                a.send_data(SimTime::from_ns(*t), *ty, data);
            }
            b.poll();
            let mut w = SnapWriter::new();
            b.snapshot(&mut w).unwrap();
            let buf = w.into_vec();
            let (_a2, b2) = channel_pair(params);
            let mut back = SyncPort::new(b2);
            back.restore(&mut SnapReader::new(&buf)).unwrap();
            prop_assert_eq!(back.horizon(), b.horizon());
            prop_assert_eq!(back.stats(), b.stats());
            loop {
                let (x, y) = (back.pop_due(SimTime::MAX), b.pop_due(SimTime::MAX));
                prop_assert_eq!(&x, &y);
                if x.is_none() { break; }
            }
        }

        /// Fingerprint-only logging is exact: for an arbitrary time-sorted
        /// entry sequence and epoch length, a fingerprint-only log produces
        /// the same per-epoch FNV fingerprints as a fully materialized log —
        /// including when the log is converted to fingerprint-only midway,
        /// folding the already-materialized prefix into the accumulators.
        /// Each epoch's fingerprint equals [`EventLog::fingerprint`] of that
        /// epoch's materialized slice.
        #[test]
        fn fingerprint_only_matches_materialized(entries in proptest::collection::vec(
            (0u64..1_000_000, 0usize..4, any::<u64>(), any::<u64>()), 0..200),
            epoch_ps in 1u64..200_000,
            split in 0usize..200) {
            let tags = ["tx", "rx", "irq", "mark"];
            let mut sorted = entries.clone();
            sorted.sort_by_key(|(t, _, _, _)| *t);
            let epoch = SimTime::from_ps(epoch_ps);

            let mut full = EventLog::enabled();
            let mut fp_only = EventLog::fingerprint_only(epoch);
            let mut converted = EventLog::enabled();
            for (i, (t, tag, a, b)) in sorted.iter().enumerate() {
                if i == split.min(sorted.len()) {
                    converted.to_fingerprint_only(epoch);
                }
                full.record(SimTime::from_ps(*t), tags[*tag], *a, *b);
                fp_only.record(SimTime::from_ps(*t), tags[*tag], *a, *b);
                converted.record(SimTime::from_ps(*t), tags[*tag], *a, *b);
            }
            let epochs = sorted.last().map_or(1, |(t, _, _, _)| t / epoch_ps + 1) as usize;
            let want = full.epoch_fingerprints(epoch, epochs).unwrap();
            prop_assert_eq!(fp_only.epoch_fingerprints(epoch, epochs).unwrap(), want.clone());
            prop_assert_eq!(converted.epoch_fingerprints(epoch, epochs).unwrap(), want.clone());
            prop_assert_eq!(fp_only.recorded(), full.recorded());

            // Every epoch fingerprint equals the plain fingerprint of a log
            // holding exactly that epoch's entries.
            for (e, fp) in want.iter().enumerate() {
                let mut slice = EventLog::enabled();
                for (t, tag, a, b) in sorted.iter().filter(|(t, _, _, _)|
                    t / epoch_ps == e as u64) {
                    slice.record(SimTime::from_ps(*t), tags[*tag], *a, *b);
                }
                prop_assert_eq!(*fp, slice.fingerprint());
            }
        }

        /// Sending over a synchronized port always stamps messages with the
        /// configured latency and keeps per-channel timestamps monotonic.
        #[test]
        fn sync_port_timestamps_monotonic(sends in proptest::collection::vec(0u64..1_000_000u64, 1..100),
                                          latency_ns in 1u64..10_000) {
            let params = ChannelParams::default_sync()
                .with_latency(SimTime::from_ns(latency_ns))
                .with_queue_len(256);
            let (a, b) = channel_pair(params);
            let mut a = SyncPort::new(a);
            let mut b = SyncPort::new(b);
            let mut sorted = sends.clone();
            sorted.sort_unstable();
            for t in &sorted {
                a.send_data(SimTime::from_ns(*t), 1, &[]);
            }
            b.poll();
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some(m) = b.pop_due(SimTime::MAX) {
                prop_assert_eq!(m.timestamp, SimTime::from_ns(sorted[count] + latency_ns));
                prop_assert!(m.timestamp >= last);
                last = m.timestamp;
                count += 1;
            }
            prop_assert_eq!(count, sorted.len());
        }
    }
}
