//! Per-channel synchronization (§5.5 of the paper).
//!
//! SimBricks avoids global synchronization: each pair of connected simulators
//! synchronizes only with each other, through the messages they already
//! exchange. Every message carries the virtual time at which the receiver
//! must process it (send time plus the channel's link latency Δ). Because
//! per-channel timestamps are monotonic, a received timestamp is an implicit
//! promise that nothing earlier will arrive, so the receiver may advance its
//! clock up to the most recent timestamp seen on every channel. SYNC messages
//! are emitted whenever a simulator has not sent anything for the
//! synchronization interval δ ≤ Δ, guaranteeing liveness.
//!
//! [`SyncPort`] wraps a [`ChannelEnd`] with this protocol; the component
//! [`Kernel`](crate::kernel::Kernel) aggregates one `SyncPort` per peer.

use std::collections::VecDeque;

use crate::channel::ChannelEnd;
use crate::impair::ImpairState;
use crate::pktbuf::PktBuf;
use crate::slot::{MsgType, OwnedMsg, MSG_SYNC};
use crate::snap::{SnapError, SnapReader, SnapResult, SnapWriter, Snapshot};
use crate::spsc::SendError;
use crate::time::SimTime;

/// Statistics kept per synchronized port.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Data messages sent on this port.
    pub data_sent: u64,
    /// Data messages received on this port.
    pub data_received: u64,
    /// SYNC messages emitted on this port.
    pub syncs_sent: u64,
    /// SYNC messages received on this port.
    pub syncs_received: u64,
    /// Number of sends that had to be buffered locally because the shared
    /// queue was momentarily full.
    pub backpressured: u64,
    /// SYNC messages that were emitted ahead of their due time because the
    /// kernel was already awake emitting a SYNC on a sibling port (batched
    /// emission; a subset of `syncs_sent`).
    pub syncs_coalesced: u64,
    /// SYNC emissions that were suppressed entirely because the promise they
    /// would have carried did not exceed the one already sent (hierarchical
    /// sync domains only; these never reach the wire).
    pub syncs_suppressed: u64,
}

/// A channel endpoint participating in SimBricks synchronization.
pub struct SyncPort {
    // snap-skip: transport endpoint; reattached by the executor on restore
    chan: ChannelEnd,
    /// Highest receiver-side timestamp observed on the incoming queue; the
    /// peer promises not to send anything earlier than this.
    in_horizon: SimTime,
    /// Received data messages not yet delivered to the model.
    pending: VecDeque<OwnedMsg>,
    /// Local time at which a SYNC must be sent if nothing else was sent.
    next_sync_due: SimTime,
    /// Locally buffered outgoing messages that did not fit in the shared
    /// queue yet (drained opportunistically, preserving order). Payloads are
    /// pooled buffers: overflowing the queue costs a refcount move (or one
    /// pooled copy for borrowed payloads), never a heap allocation.
    outbox: VecDeque<(SimTime, MsgType, PktBuf)>,
    /// Set once the final (end-of-simulation) sync has been emitted.
    finalized: bool,
    /// Effective synchronization interval. Starts at the configured δ and,
    /// with adaptive batching enabled, widens (doubling per idle SYNC) up to
    /// [`SyncPort::sync_cap`] while no data flows, snapping back to δ on the
    /// next data message.
    cur_interval: SimTime,
    /// Upper bound for adaptive widening of `cur_interval`. Defaults to the
    /// link latency Δ (the flat-protocol liveness bound); hierarchical sync
    /// raises it to the static multi-hop path floor of this port, which is a
    /// safe cadence because widened promises keep peers live in between.
    // snap-skip: static per-topology bound, recomputed at setup
    sync_cap: SimTime,
    /// Highest receiver-side timestamp ever sent on this port (data or SYNC).
    /// Promises must be monotonic, so every emission ratchets through this
    /// value; hierarchical sync additionally uses it to suppress SYNCs that
    /// would not raise the peer's horizon.
    last_promise: SimTime,
    /// Hierarchical sync domains active on this port's kernel. Under the
    /// hierarchical protocol a data send does *not* snap `cur_interval` back
    /// to δ: promises are widened explicitly every domain epoch, so paying
    /// the doubling ladder again after every data message only multiplies
    /// SYNC traffic on active paths (configuration, not dynamic state — not
    /// part of the snapshot).
    // snap-skip: protocol configuration, set at setup, never mutated mid-run
    hier: bool,
    /// Link impairment applied to outgoing data (loss, jitter, reordering,
    /// rate variation). The PRNG advances only on data sends, so impaired
    /// traffic is a pure function of the virtual-time send history and stays
    /// bit-identical across executors and transports.
    impair: ImpairState,
    stats: PortStats,
}

impl SyncPort {
    /// Wrap a channel endpoint in the synchronization protocol.
    pub fn new(chan: ChannelEnd) -> Self {
        let cur_interval = chan.params().sync_interval;
        let sync_cap = chan.latency();
        let impair = ImpairState::new(chan.params().impairment, chan.dir());
        SyncPort {
            chan,
            in_horizon: SimTime::ZERO,
            pending: VecDeque::new(),
            next_sync_due: SimTime::ZERO,
            outbox: VecDeque::new(),
            finalized: false,
            cur_interval,
            sync_cap,
            last_promise: SimTime::ZERO,
            hier: false,
            impair,
            stats: PortStats::default(),
        }
    }

    /// Switch this port to hierarchical-sync pacing (see the `hier` field).
    pub fn set_hier(&mut self, hier: bool) {
        self.hier = hier;
    }

    /// Raise the adaptive-widening cap from the default Δ to `cap` (clamped
    /// to at least Δ). Used by hierarchical sync, which computes a static
    /// multi-hop path floor per port: the peer provably cannot be starved at
    /// this cadence because every emitted promise covers at least that far
    /// ahead.
    pub fn set_sync_cap(&mut self, cap: SimTime) {
        self.sync_cap = cap.max(self.latency());
    }

    /// Highest receiver-side timestamp ever emitted on this port (the
    /// standing promise the peer currently holds from us).
    pub fn last_promise(&self) -> SimTime {
        self.last_promise
    }

    /// Link latency Δ of this channel.
    pub fn latency(&self) -> SimTime {
        self.chan.latency()
    }

    /// Process-wide unique id shared with the peer endpoint (see
    /// [`crate::channel::ChannelEnd::conn_id`]).
    pub fn conn_id(&self) -> u64 {
        self.chan.conn_id()
    }

    /// Configured (base) synchronization interval δ of this channel.
    pub fn sync_interval(&self) -> SimTime {
        self.chan.params().sync_interval
    }

    /// Effective synchronization interval right now: equals δ while data
    /// flows, widened up to Δ on idle channels when adaptive batching is on.
    pub fn effective_sync_interval(&self) -> SimTime {
        self.cur_interval
    }

    /// Whether this channel participates in synchronization.
    pub fn sync_enabled(&self) -> bool {
        self.chan.sync_enabled()
    }

    /// Counters accumulated by this port so far.
    pub fn stats(&self) -> PortStats {
        self.stats
    }

    /// Drain the incoming queue: SYNC messages only raise the horizon, data
    /// messages are buffered for delivery to the model. Also flushes any
    /// locally buffered outgoing messages.
    pub fn poll(&mut self) {
        self.flush_outbox();
        while let Some(msg) = self.chan.recv_raw() {
            debug_assert!(
                msg.timestamp >= self.in_horizon || !self.sync_enabled(),
                "per-channel timestamps must be monotonic ({} < {})",
                msg.timestamp,
                self.in_horizon
            );
            if msg.timestamp > self.in_horizon {
                self.in_horizon = msg.timestamp;
            }
            if msg.ty == MSG_SYNC {
                self.stats.syncs_received += 1;
            } else {
                self.stats.data_received += 1;
                self.pending.push_back(msg);
            }
        }
    }

    /// The peer's promise: no message with a timestamp below this will ever
    /// arrive. Unsynchronized channels report "end of time".
    pub fn horizon(&self) -> SimTime {
        if self.sync_enabled() {
            if self.peer_gone() && self.pending.is_empty() {
                // A departed peer can never send anything again.
                SimTime::MAX
            } else {
                self.in_horizon
            }
        } else {
            SimTime::MAX
        }
    }

    /// Timestamp of the next data message awaiting delivery, if any.
    pub fn next_pending(&self) -> Option<SimTime> {
        self.pending.front().map(|m| m.timestamp)
    }

    /// Deliver the next pending data message if it is due at `now`.
    /// Unsynchronized ports deliver regardless of timestamp.
    pub fn pop_due(&mut self, now: SimTime) -> Option<OwnedMsg> {
        match self.pending.front() {
            Some(m) if !self.sync_enabled() || m.timestamp <= now => self.pending.pop_front(),
            _ => None,
        }
    }

    /// Local time at which the next SYNC message is due (None when the
    /// channel is unsynchronized or already finalized).
    pub fn next_sync_due(&self) -> Option<SimTime> {
        if self.sync_enabled() && !self.finalized {
            Some(self.next_sync_due)
        } else {
            None
        }
    }

    /// Send a data message at local time `now`; the receiver will process it
    /// at `now + Δ`. Resets the sync timer (any message doubles as a sync)
    /// and — under the flat protocol — snaps the adaptive sync interval back
    /// to the configured δ: an active channel synchronizes at full
    /// resolution again. Hierarchical sync keeps the widened interval (see
    /// the `hier` field).
    pub fn send_data(&mut self, now: SimTime, ty: MsgType, payload: &[u8]) {
        debug_assert!(ty != MSG_SYNC, "type 0 is reserved for SYNC messages");
        if self.impair.active() {
            let buf = if payload.is_empty() {
                PktBuf::empty()
            } else {
                self.chan.pool().copy_from_slice(payload)
            };
            self.send_data_impaired(now, ty, buf);
            return;
        }
        let ts = now.saturating_add(self.latency());
        debug_assert!(
            ts >= self.last_promise || !self.sync_enabled(),
            "data send at {ts} violates standing promise {}",
            self.last_promise
        );
        self.last_promise = self.last_promise.max(ts);
        self.enqueue(ts, ty, payload);
        self.stats.data_sent += 1;
        if !self.hier {
            self.cur_interval = self.sync_interval();
        }
        self.next_sync_due = now.saturating_add(self.cur_interval);
    }

    /// Like [`SyncPort::send_data`], but takes an owned [`PktBuf`]: if the
    /// shared queue is momentarily full, the buffer moves into the outbox
    /// without any copy.
    pub fn send_data_buf(&mut self, now: SimTime, ty: MsgType, payload: PktBuf) {
        debug_assert!(ty != MSG_SYNC, "type 0 is reserved for SYNC messages");
        if self.impair.active() {
            self.send_data_impaired(now, ty, payload);
            return;
        }
        let ts = now.saturating_add(self.latency());
        debug_assert!(
            ts >= self.last_promise || !self.sync_enabled(),
            "data send at {ts} violates standing promise {}",
            self.last_promise
        );
        self.last_promise = self.last_promise.max(ts);
        self.enqueue_buf(ts, ty, payload);
        self.stats.data_sent += 1;
        if !self.hier {
            self.cur_interval = self.sync_interval();
        }
        self.next_sync_due = now.saturating_add(self.cur_interval);
    }

    /// Impaired data send (see [`crate::impair`]). Every decision draws from
    /// the per-direction seeded stream, which advances only here — never on
    /// SYNC paths, whose emission timing is executor-dependent — so the
    /// impaired packet sequence is deterministic.
    ///
    /// Wire monotonicity is preserved throughout: impairments only add delay
    /// (`arrival = now + Δ + extra`), a lost packet is replaced by a SYNC at
    /// the un-jittered base promise `now + Δ` (a jittered promise could
    /// overshoot a later packet's arrival), a reorder-deferred packet leaves
    /// the same SYNC in its slot (the send resets the sync timer, so silence
    /// would strand the peer on a stale horizon and can deadlock the pairwise
    /// protocol), and every emission still ratchets through `last_promise`.
    fn send_data_impaired(&mut self, now: SimTime, ty: MsgType, payload: PktBuf) {
        let base = now.saturating_add(self.latency());
        let had_deferred = self.impair.has_deferred();
        if self.impair.decide_loss() {
            // Dropped — but the peer still needs liveness: promise the base
            // arrival time the packet would have had.
            self.impair.lost += 1;
            if self.sync_enabled() {
                let ts = base.max(self.last_promise);
                self.enqueue(ts, MSG_SYNC, &[]);
                self.stats.syncs_sent += 1;
                self.last_promise = ts;
            }
        } else {
            let ts = base
                .saturating_add(self.impair.extra_delay(base))
                .max(self.last_promise);
            if !had_deferred && self.impair.decide_defer() {
                // Hold this packet back one slot: the next data message
                // overtakes it. last_promise deliberately does not ratchet to
                // the packet's own (jittered) timestamp — it has not reached
                // the wire yet — but the peer still needs liveness, exactly
                // as on the loss path: this send resets the sync timer below,
                // so without a promise here the peer would hold a stale
                // horizon for a whole interval and a pairwise wait cycle
                // could close (both sides blocked with t_sync > bound). The
                // un-jittered base arrival is honest: the held packet flushes
                // at `dts.max(last_promise)` with `dts >= base`.
                self.impair.defer(ts, ty, payload);
                if self.sync_enabled() {
                    let pts = base.max(self.last_promise);
                    self.enqueue(pts, MSG_SYNC, &[]);
                    self.stats.syncs_sent += 1;
                    self.last_promise = pts;
                }
            } else {
                self.last_promise = ts;
                self.enqueue_buf(ts, ty, payload);
                self.stats.data_sent += 1;
            }
        }
        // Flush a packet deferred on an *earlier* send right behind this one
        // (that is the reordering): it goes out at its own arrival time,
        // clamped up to the standing promise.
        if had_deferred {
            if let Some((dts, dty, dbuf)) = self.impair.take_deferred() {
                let ts = dts.max(self.last_promise);
                self.last_promise = ts;
                self.enqueue_buf(ts, dty, dbuf);
                self.stats.data_sent += 1;
            }
        }
        if !self.hier {
            self.cur_interval = self.sync_interval();
        }
        self.next_sync_due = now.saturating_add(self.cur_interval);
    }

    /// Impairment counters of this port: (lost, delayed, reordered).
    pub fn impair_counters(&self) -> (u64, u64, u64) {
        (self.impair.lost, self.impair.delayed, self.impair.reordered)
    }

    /// True while a packet is held back for reordering, waiting for the next
    /// data send to overtake it.
    pub fn has_deferred(&self) -> bool {
        self.impair.has_deferred()
    }

    /// Emit a SYNC message if one is due at local time `now` (§5.5: liveness).
    pub fn maybe_send_sync(&mut self, now: SimTime) {
        self.maybe_send_sync_batched(now, SimTime::ZERO);
    }

    /// Emit a SYNC message if one is due at local time `now`, or becomes due
    /// within `slack` (batched emission). The kernel passes a non-zero slack
    /// when it is already awake emitting a SYNC on a sibling port, so ports
    /// with staggered due times piggyback on a single wakeup instead of each
    /// forcing its own clock advance. Early emission is always safe: the
    /// promise carried by the SYNC is `now + Δ`, which is monotonic in `now`.
    pub fn maybe_send_sync_batched(&mut self, now: SimTime, slack: SimTime) {
        if !self.sync_enabled() || self.finalized {
            return;
        }
        if now.saturating_add(slack) >= self.next_sync_due {
            if now < self.next_sync_due {
                self.stats.syncs_coalesced += 1;
            }
            // Promises must be monotonic: never regress below an earlier
            // (possibly widened) promise.
            let ts = now.saturating_add(self.latency()).max(self.last_promise);
            self.enqueue(ts, MSG_SYNC, &[]);
            self.stats.syncs_sent += 1;
            self.last_promise = ts;
            self.widen_interval();
            self.next_sync_due = now.saturating_add(self.cur_interval);
        }
    }

    /// Adaptive widening: a SYNC emitted from the idle timer means the
    /// channel carried no data for a whole interval, so back off — double the
    /// interval, capped at `sync_cap` (Δ under the flat protocol).
    fn widen_interval(&mut self) {
        if self.chan.params().adaptive_sync {
            self.cur_interval =
                SimTime::from_ps(self.cur_interval.as_ps().saturating_mul(2)).min(self.sync_cap);
        }
    }

    /// Hierarchical-sync promise emission at local time `now`: send a SYNC
    /// carrying the widened receiver-side timestamp `ts` (clamped up to the
    /// flat `now + Δ` floor) unless it would not raise the peer's horizon
    /// beyond the standing promise, in which case nothing reaches the wire
    /// and the attempt is counted as suppressed. Returns true when a SYNC was
    /// actually sent. `coalesced` marks emissions batched ahead of this
    /// port's own due time (domain epoch batching).
    ///
    /// A successful emission reschedules the port's sync timer to when the
    /// flat promise would catch up with the widened one (`ts - Δ`), so a
    /// single SYNC covers a whole idle gap instead of creeping through it at
    /// δ steps.
    pub fn send_promise(&mut self, now: SimTime, ts: SimTime, coalesced: bool) -> bool {
        if !self.sync_enabled() || self.finalized {
            return false;
        }
        let ts = ts.max(now.saturating_add(self.latency()));
        if ts <= self.last_promise {
            self.stats.syncs_suppressed += 1;
            // No gain to promise: push the timer out a full interval so a
            // stuck horizon is not retried on every advance.
            self.next_sync_due = now.saturating_add(self.cur_interval);
            return false;
        }
        if coalesced {
            self.stats.syncs_coalesced += 1;
        }
        self.enqueue(ts, MSG_SYNC, &[]);
        self.stats.syncs_sent += 1;
        self.last_promise = ts;
        self.widen_interval();
        self.next_sync_due = now
            .saturating_add(self.cur_interval)
            .max(ts.saturating_sub(self.latency()));
        true
    }

    /// Skip a due SYNC whose promise gain is not yet worth a message
    /// (hierarchical sync): count it as suppressed and push the due timer out
    /// a full interval so the gain can accumulate. Safe at any cadence up to
    /// the sync cap — the peer already holds `last_promise`, and a blocked
    /// fabric falls back to unconditional gain forwarding.
    pub fn defer_sync(&mut self, now: SimTime) {
        self.stats.syncs_suppressed += 1;
        self.next_sync_due = now.saturating_add(self.cur_interval);
    }

    /// Half the effective sync interval: the slack the kernel uses to batch
    /// sibling-port SYNC emission (zero when adaptive batching is disabled,
    /// preserving the strict fixed-interval cadence).
    pub fn coalesce_slack(&self) -> SimTime {
        if self.chan.params().adaptive_sync {
            SimTime::from_ps(self.cur_interval.as_ps() / 2)
        } else {
            SimTime::ZERO
        }
    }

    /// Whether a raw (not yet polled) message is waiting on the incoming
    /// queue. Executors use this to decide when a parked kernel must be woken:
    /// a kernel blocked on peer promises can only become runnable again once
    /// new input arrives on some port.
    pub fn has_raw_input(&self) -> bool {
        self.chan.peek_timestamp().is_some()
    }

    /// Unconditionally emit a SYNC promise at local time `now` (checkpoint
    /// quiesce): the peer learns nothing will be sent before `now + Δ`, so it
    /// can deliver every event strictly below `now` and then pause too.
    /// Early emission is always safe (the promise is monotonic in `now`); the
    /// adaptive interval is left untouched so the post-restore cadence
    /// matches the saved state.
    pub fn emit_promise(&mut self, now: SimTime) {
        if !self.sync_enabled() || self.finalized {
            return;
        }
        let ts = now.saturating_add(self.latency()).max(self.last_promise);
        self.enqueue(ts, MSG_SYNC, &[]);
        self.stats.syncs_sent += 1;
        self.last_promise = ts;
        self.next_sync_due = self.next_sync_due.max(now.saturating_add(self.cur_interval));
    }

    /// Send the final "end of time" promise so the peer never waits for this
    /// component again after it finishes.
    pub fn finalize(&mut self) {
        // A packet still held back for reordering when the simulation ends is
        // dropped deterministically (it counts as lost): flushing it here
        // would make delivery depend on *when* finalize runs, which differs
        // across executors.
        if self.impair.take_deferred().is_some() {
            self.impair.lost += 1;
        }
        if self.sync_enabled() && !self.finalized {
            self.enqueue(SimTime::MAX, MSG_SYNC, &[]);
            self.stats.syncs_sent += 1;
            self.last_promise = SimTime::MAX;
        }
        self.finalized = true;
    }

    /// True once the peer endpoint has been dropped.
    pub fn peer_gone(&self) -> bool {
        self.chan.peer_closed()
    }

    /// True if all outgoing messages have reached the shared queue.
    pub fn flushed(&self) -> bool {
        self.outbox.is_empty()
    }

    /// Number of received data messages polled off the channel but not yet
    /// delivered to the model — the port's instantaneous queue depth.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn enqueue(&mut self, ts: SimTime, ty: MsgType, payload: &[u8]) {
        if self.try_send_direct(ts, ty, payload) {
            return;
        }
        // Overflow: park a pooled copy (no heap traffic on a warm pool).
        let buf = if payload.is_empty() {
            PktBuf::empty()
        } else {
            self.chan.pool().copy_from_slice(payload)
        };
        self.outbox.push_back((ts, ty, buf));
    }

    fn enqueue_buf(&mut self, ts: SimTime, ty: MsgType, payload: PktBuf) {
        if self.try_send_direct(ts, ty, &payload) {
            return;
        }
        // Overflow: the owned buffer moves into the outbox, zero copies.
        self.outbox.push_back((ts, ty, payload));
    }

    /// Try to place a message directly into the shared queue. Returns true
    /// when the message needs no outbox entry (sent, or peer gone); false on
    /// backpressure.
    fn try_send_direct(&mut self, ts: SimTime, ty: MsgType, payload: &[u8]) -> bool {
        if !self.outbox.is_empty() {
            return false;
        }
        match self.chan.send_raw(ts, ty, payload) {
            Ok(()) => true,
            Err(SendError::Disconnected) => true,
            Err(SendError::TooLarge) => {
                panic!("message payload of {} bytes exceeds slot size", payload.len())
            }
            Err(SendError::Full) => {
                self.stats.backpressured += 1;
                false
            }
        }
    }

    /// Whether this port is fully quiesced for a checkpoint at time `t`:
    /// every outgoing message reached the shared queue, nothing raw is
    /// waiting to be polled, and the peer has promised at least `t + Δ`
    /// (its own pause promise), so every in-flight message is already in
    /// this port's pending buffer.
    pub fn quiesced_at(&self, t: SimTime) -> bool {
        if !self.sync_enabled() {
            return true;
        }
        self.flushed()
            && !self.has_raw_input()
            && self.horizon() >= t.saturating_add(self.latency())
    }

    fn flush_outbox(&mut self) {
        while let Some((ts, ty, payload)) = self.outbox.front() {
            match self.chan.send_raw(*ts, *ty, payload) {
                Ok(()) => {
                    self.outbox.pop_front();
                }
                Err(SendError::Disconnected) => {
                    self.outbox.clear();
                }
                Err(_) => break,
            }
        }
    }
}

impl Snapshot for SyncPort {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.time(self.in_horizon);
        w.usize(self.pending.len());
        for m in &self.pending {
            w.time(m.timestamp);
            w.u8(m.ty);
            w.bytes(&m.data);
        }
        w.time(self.next_sync_due);
        w.usize(self.outbox.len());
        for (ts, ty, payload) in &self.outbox {
            w.time(*ts);
            w.u8(*ty);
            w.bytes(payload);
        }
        w.bool(self.finalized);
        w.time(self.cur_interval);
        w.time(self.last_promise);
        self.stats.snapshot(w)?;
        self.impair.snapshot(w)
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.in_horizon = r.time()?;
        let n = r.usize()?;
        if n > 1 << 24 {
            return Err(SnapError::Corrupt(format!("absurd pending count {n}")));
        }
        self.pending.clear();
        for _ in 0..n {
            let timestamp = r.time()?;
            let ty = r.u8()?;
            let data = r.bytes()?;
            self.pending.push_back(OwnedMsg::new(timestamp, ty, data));
        }
        self.next_sync_due = r.time()?;
        let n = r.usize()?;
        if n > 1 << 24 {
            return Err(SnapError::Corrupt(format!("absurd outbox count {n}")));
        }
        self.outbox.clear();
        for _ in 0..n {
            let ts = r.time()?;
            let ty = r.u8()?;
            let payload = r.bytes()?;
            self.outbox.push_back((ts, ty, PktBuf::from_vec(payload)));
        }
        self.finalized = r.bool()?;
        self.cur_interval = r.time()?;
        self.last_promise = r.time()?;
        self.stats.restore(r)?;
        self.impair.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{channel_pair, ChannelParams};

    fn pair() -> (SyncPort, SyncPort) {
        let (a, b) = channel_pair(ChannelParams::default_sync());
        (SyncPort::new(a), SyncPort::new(b))
    }

    #[test]
    fn data_message_carries_latency_timestamp() {
        let (mut a, mut b) = pair();
        a.send_data(SimTime::from_ns(100), 3, b"xyz");
        b.poll();
        assert_eq!(b.horizon(), SimTime::from_ns(600));
        let m = b.pop_due(SimTime::from_ns(600)).unwrap();
        assert_eq!(m.ty, 3);
        assert_eq!(m.timestamp, SimTime::from_ns(600));
    }

    #[test]
    fn message_not_delivered_before_due_time() {
        let (mut a, mut b) = pair();
        a.send_data(SimTime::from_ns(0), 3, b"p");
        b.poll();
        assert!(b.pop_due(SimTime::from_ns(499)).is_none());
        assert!(b.pop_due(SimTime::from_ns(500)).is_some());
    }

    #[test]
    fn sync_messages_raise_horizon_but_are_not_delivered() {
        let (mut a, mut b) = pair();
        a.maybe_send_sync(SimTime::ZERO);
        b.poll();
        assert_eq!(b.horizon(), SimTime::from_ns(500));
        assert!(b.next_pending().is_none());
        assert!(b.pop_due(SimTime::MAX).is_none());
        assert_eq!(b.stats().syncs_received, 1);
    }

    #[test]
    fn sync_due_tracking() {
        let (mut a, _b) = pair();
        // Initially due immediately (initial sync of Fig. 5 Init).
        assert_eq!(a.next_sync_due(), Some(SimTime::ZERO));
        a.maybe_send_sync(SimTime::ZERO);
        assert_eq!(a.next_sync_due(), Some(SimTime::from_ns(500)));
        // Not due yet: nothing happens.
        a.maybe_send_sync(SimTime::from_ns(100));
        assert_eq!(a.next_sync_due(), Some(SimTime::from_ns(500)));
        // Sending data also resets the timer.
        a.send_data(SimTime::from_ns(300), 1, &[]);
        assert_eq!(a.next_sync_due(), Some(SimTime::from_ns(800)));
        assert_eq!(a.stats().syncs_sent, 1);
        assert_eq!(a.stats().data_sent, 1);
    }

    #[test]
    fn unsync_port_has_infinite_horizon_and_immediate_delivery() {
        let (a, b) = channel_pair(ChannelParams::default_unsync());
        let (mut a, mut b) = (SyncPort::new(a), SyncPort::new(b));
        assert_eq!(b.horizon(), SimTime::MAX);
        assert!(a.next_sync_due().is_none());
        a.send_data(SimTime::from_ns(1000), 2, b"k");
        b.poll();
        // Delivered even though the local clock is "behind" the timestamp.
        assert!(b.pop_due(SimTime::ZERO).is_some());
    }

    #[test]
    fn finalize_promises_end_of_time() {
        let (mut a, mut b) = pair();
        a.finalize();
        b.poll();
        assert_eq!(b.horizon(), SimTime::MAX);
        // Finalized port no longer schedules syncs.
        assert!(a.next_sync_due().is_none());
    }

    #[test]
    fn horizon_is_max_once_peer_dropped_and_drained() {
        let (mut a, mut b) = pair();
        a.send_data(SimTime::ZERO, 1, &[1]);
        drop(a);
        b.poll();
        // Still has a pending message: horizon stays at its timestamp.
        assert_eq!(b.horizon(), SimTime::from_ns(500));
        b.pop_due(SimTime::MAX).unwrap();
        assert_eq!(b.horizon(), SimTime::MAX);
    }

    #[test]
    fn outbox_absorbs_full_queue_and_preserves_order() {
        let (a, b) = channel_pair(ChannelParams::default_sync().with_queue_len(2));
        let (mut a, mut b) = (SyncPort::new(a), SyncPort::new(b));
        for i in 0..10u8 {
            a.send_data(SimTime::from_ns(i as u64), 1, &[i]);
        }
        assert!(!a.flushed());
        assert!(a.stats().backpressured > 0);
        let mut got = Vec::new();
        for _ in 0..20 {
            a.poll(); // flushes outbox as space frees up
            b.poll();
            while let Some(m) = b.pop_due(SimTime::MAX) {
                got.push(m.data[0]);
            }
        }
        assert_eq!(got, (0..10u8).collect::<Vec<_>>());
        assert!(a.flushed());
    }

    #[test]
    fn snapshot_roundtrip_preserves_protocol_state() {
        let (mut a, mut b) = pair();
        a.send_data(SimTime::from_ns(10), 1, b"one");
        a.send_data(SimTime::from_ns(20), 2, b"two");
        a.maybe_send_sync(SimTime::from_ns(600));
        b.poll();
        // b now holds pending messages and a raised horizon.
        let mut w = SnapWriter::new();
        b.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        // Restore into a freshly built port over a new channel pair.
        let (_a2, b2) = channel_pair(ChannelParams::default_sync());
        let mut b2 = SyncPort::new(b2);
        b2.restore(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(b2.horizon(), b.horizon());
        assert_eq!(b2.next_pending(), b.next_pending());
        assert_eq!(b2.stats(), b.stats());
        let m1 = b2.pop_due(SimTime::MAX).unwrap();
        assert_eq!((m1.ty, m1.data.as_slice()), (1, b"one".as_slice()));
        let m2 = b2.pop_due(SimTime::MAX).unwrap();
        assert_eq!((m2.ty, m2.data.as_slice()), (2, b"two".as_slice()));
    }

    /// The hierarchical-sync promise ratchet must survive checkpoints: a
    /// restored port remembers the furthest promise it made and keeps
    /// suppressing emissions that would not raise the peer's horizon.
    #[test]
    fn snapshot_roundtrip_preserves_promise_ratchet() {
        let (mut a, _b) = pair();
        assert!(a.send_promise(SimTime::from_ns(100), SimTime::from_us(5), false));
        assert_eq!(a.last_promise(), SimTime::from_us(5));
        let mut w = SnapWriter::new();
        a.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        let (a2, _b2) = channel_pair(ChannelParams::default_sync());
        let mut a2 = SyncPort::new(a2);
        a2.restore(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(a2.last_promise(), SimTime::from_us(5));
        assert_eq!(a2.stats(), a.stats());
        // A promise at or below the restored ratchet is suppressed, exactly
        // as it would have been without the checkpoint.
        assert!(!a2.send_promise(SimTime::from_ns(200), SimTime::from_us(5), false));
        assert_eq!(a2.stats().syncs_suppressed, 1);
        // A higher promise still goes out.
        assert!(a2.send_promise(SimTime::from_ns(300), SimTime::from_us(6), false));
    }

    /// Truncating the port snapshot anywhere (including inside the appended
    /// `last_promise` field) fails with a clean error, never a panic or a
    /// silent misparse.
    #[test]
    fn truncated_port_snapshot_is_rejected() {
        let (mut a, _b) = pair();
        a.send_data(SimTime::from_ns(10), 1, b"x");
        a.send_promise(SimTime::from_ns(20), SimTime::from_us(2), false);
        let mut w = SnapWriter::new();
        a.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        for cut in 0..buf.len() {
            let (fresh, _peer) = channel_pair(ChannelParams::default_sync());
            let mut fresh = SyncPort::new(fresh);
            let err = fresh.restore(&mut SnapReader::new(&buf[..cut]));
            assert!(
                matches!(err, Err(SnapError::Truncated) | Err(SnapError::Corrupt(_))),
                "cut at {cut}: unexpected result {err:?}"
            );
        }
    }

    #[test]
    fn emit_promise_raises_peer_horizon_and_keeps_interval() {
        let (mut a, mut b) = pair();
        let before = a.effective_sync_interval();
        a.emit_promise(SimTime::from_ns(100));
        assert_eq!(a.effective_sync_interval(), before, "no adaptive widening");
        b.poll();
        assert_eq!(b.horizon(), SimTime::from_ns(600));
        assert!(b.quiesced_at(SimTime::from_ns(100)));
        assert!(!b.quiesced_at(SimTime::from_ns(101)));
    }

    #[test]
    fn multiple_data_same_timestamp_kept_fifo() {
        let (mut a, mut b) = pair();
        a.send_data(SimTime::from_ns(10), 1, &[1]);
        a.send_data(SimTime::from_ns(10), 2, &[2]);
        b.poll();
        assert_eq!(b.pop_due(SimTime::MAX).unwrap().ty, 1);
        assert_eq!(b.pop_due(SimTime::MAX).unwrap().ty, 2);
    }

    use crate::impair::Impairment;

    fn impaired_pair(imp: Impairment) -> (SyncPort, SyncPort) {
        let params = ChannelParams::default_sync()
            .with_latency(SimTime::from_ns(500))
            .with_queue_len(256)
            .with_impairment(imp);
        let (a, b) = channel_pair(params);
        (SyncPort::new(a), SyncPort::new(b))
    }

    /// Drive `n` sends through an impaired port and return the delivered
    /// (timestamp, ty) sequence plus the sender's impairment counters.
    fn run_impaired(imp: Impairment, n: u64) -> (Vec<(SimTime, MsgType)>, (u64, u64, u64)) {
        let (mut a, mut b) = impaired_pair(imp);
        for i in 0..n {
            a.send_data(SimTime::from_ns(i * 100), (1 + (i % 100)) as u8, &[i as u8]);
            b.poll();
        }
        a.finalize();
        b.poll();
        let mut out = Vec::new();
        while let Some(m) = b.pop_due(SimTime::MAX) {
            out.push((m.timestamp, m.ty));
        }
        (out, a.impair_counters())
    }

    #[test]
    fn impaired_send_is_deterministic_and_seed_sensitive() {
        let imp = Impairment::none()
            .with_bernoulli_loss(100)
            .with_jitter(SimTime::from_ns(50))
            .with_reorder(100)
            .with_seed(7);
        let (run1, c1) = run_impaired(imp, 200);
        let (run2, c2) = run_impaired(imp, 200);
        assert_eq!(run1, run2, "same seed must replay bit-identically");
        assert_eq!(c1, c2);
        assert!(c1.0 > 0, "expected some losses at 10%");
        let (run3, _) = run_impaired(imp.with_seed(8), 200);
        assert_ne!(run1, run3, "different seed must change the trace");
    }

    #[test]
    fn impaired_timestamps_stay_monotonic_and_delayed() {
        let imp = Impairment::none()
            .with_bernoulli_loss(150)
            .with_jitter(SimTime::from_ns(400))
            .with_reorder(200)
            .with_seed(3);
        let (out, counters) = run_impaired(imp, 300);
        let mut last = SimTime::ZERO;
        for (ts, _) in &out {
            assert!(*ts >= last, "wire timestamps must never regress");
            last = *ts;
        }
        let (lost, delayed, reordered) = counters;
        assert!(lost > 0 && delayed > 0 && reordered > 0);
        // Every surviving packet arrives (losses may include a deferred one
        // dropped at finalize).
        assert_eq!(out.len() as u64, 300 - lost);
    }

    #[test]
    fn lost_packet_still_promises_progress() {
        // Loss rate 100%: nothing is delivered, but the peer's horizon must
        // still advance via replacement SYNCs.
        let imp = Impairment::none().with_bernoulli_loss(1000).with_seed(1);
        let (mut a, mut b) = impaired_pair(imp);
        a.send_data(SimTime::from_ns(100), 1, &[1]);
        b.poll();
        assert!(b.pop_due(SimTime::MAX).is_none());
        assert_eq!(b.horizon(), SimTime::from_ns(600), "SYNC at un-jittered base");
        assert_eq!(a.impair_counters().0, 1);
    }

    #[test]
    fn deferred_packet_survives_snapshot_restore() {
        let imp = Impairment::none().with_reorder(1000).with_seed(5);
        let (mut a, _b) = impaired_pair(imp);
        // reorder probability 1000‰: the first send is always deferred.
        a.send_data(SimTime::from_ns(10), 7, &[42]);
        assert_eq!(a.stats().data_sent, 0, "deferred packet not yet on the wire");
        let mut w = SnapWriter::new();
        a.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        let (a2, mut b2) = impaired_pair(imp);
        let mut a2 = {
            let mut p = a2;
            p.restore(&mut SnapReader::new(&buf)).unwrap();
            p
        };
        // The next send flushes the restored deferred packet behind it.
        a2.send_data(SimTime::from_ns(20), 8, &[43]);
        b2.poll();
        let first = b2.pop_due(SimTime::MAX).unwrap();
        let second = b2.pop_due(SimTime::MAX).unwrap();
        assert_eq!(first.ty, 8, "current packet overtakes the deferred one");
        assert_eq!(second.ty, 7, "deferred packet restored across snapshot");
        assert!(second.timestamp >= first.timestamp);
    }

    #[test]
    fn deferred_packet_still_promises_progress() {
        // Reorder probability 1000‰: the first send is always deferred. The
        // send still resets the sync timer, so it must leave a SYNC at the
        // un-jittered base arrival — a silent deferral strands the peer on a
        // stale horizon and can close a pairwise deadlock cycle (both sides
        // blocked with t_sync > bound). Regression test for a livelock found
        // by checkpoint-ring recording over a reorder-impaired link.
        let imp = Impairment::none()
            .with_reorder(1000)
            .with_jitter(SimTime::from_ns(200))
            .with_seed(5);
        let (mut a, mut b) = impaired_pair(imp);
        a.send_data(SimTime::from_ns(100), 7, &[42]);
        b.poll();
        assert!(b.pop_due(SimTime::MAX).is_none(), "packet held back");
        assert_eq!(
            b.horizon(),
            SimTime::from_ns(600),
            "deferral must promise the un-jittered base arrival"
        );
        assert!(a.last_promise() >= SimTime::from_ns(600));
    }

    #[test]
    fn finalize_drops_deferred_deterministically() {
        let imp = Impairment::none().with_reorder(1000).with_seed(9);
        let (mut a, mut b) = impaired_pair(imp);
        a.send_data(SimTime::from_ns(10), 7, &[42]);
        a.finalize();
        b.poll();
        assert!(b.pop_due(SimTime::MAX).is_none(), "deferred packet dropped at end");
        assert_eq!(a.impair_counters().0, 1, "counted as lost");
        assert_eq!(b.horizon(), SimTime::MAX);
    }
}
