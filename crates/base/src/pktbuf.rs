//! Pooled, reference-counted packet buffers.
//!
//! The per-message cost that dominates a steady-state SimBricks run is not
//! simulation logic but allocator traffic: every hop used to heap-allocate a
//! fresh `Vec<u8>`, copy the payload into it, and free it a few nanoseconds
//! later. [`PktBuf`] replaces that with fixed-capacity segments recycled
//! through a freelist arena:
//!
//! * **alloc** pops a ready-to-use segment off the current thread's freelist
//!   (a *hit*); only a cold freelist pays for a real heap allocation (a
//!   *miss*),
//! * **clone** is a reference-count bump — a switch flooding a frame to N
//!   ports performs N pointer copies, zero byte copies,
//! * **drop** of the last reference pushes the segment back onto the
//!   freelist instead of freeing it — no locks, no atomic read-modify-writes,
//! * segments carry **headroom** so protocol code can prepend Ethernet/IP/TCP
//!   headers in place, and **tailroom** so GRO-style coalescing can extend a
//!   buffer without reallocating,
//! * payloads larger than [`SEG_CAPACITY`] fall back to a plain heap
//!   allocation (a *fallback*), so jumbo paths stay correct, just not pooled.
//!
//! The freelist is **thread-local** (segments allocated and dropped on the
//! same thread — the overwhelmingly common case, since each kernel runs on
//! one thread at a time — never touch shared state), while each [`BufPool`]
//! handle carries its own hit/miss/fallback counters so allocator behaviour
//! is attributable per component in
//! [`KernelStats`](crate::stats::KernelStats).
//!
//! Buffer pooling is invisible to simulation results: it changes where bytes
//! live, never what they contain or when they are delivered, so determinism
//! (§7.6) is unaffected. Snapshots serialize buffer *contents*; a restored
//! buffer is rebuilt as a fresh (heap-backed) segment with identical bytes.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Capacity in bytes of one pooled segment: a jumbo slot payload
/// ([`crate::slot::MAX_PAYLOAD`] = 9216 B) plus [`DEFAULT_HEADROOM`], so any
/// message that fits a queue slot can be received into a pooled segment with
/// full headroom intact.
pub const SEG_CAPACITY: usize = 9216 + DEFAULT_HEADROOM;

/// Default headroom reserved at the front of a freshly allocated segment:
/// enough for Ethernet (14 B) + IPv4 (20 B) + TCP with options (60 B), with
/// slack for encapsulation experiments.
pub const DEFAULT_HEADROOM: usize = 128;

/// Bound on segments parked per thread. Segments released beyond this bound
/// are genuinely freed, so idle threads shrink back (at most ~2.4 MiB of
/// parked segments per thread).
const MAX_FREE_PER_THREAD: usize = 256;

thread_local! {
    /// Per-thread freelist of ready-to-reuse segments. Thread-local by
    /// design: the recycle path is a plain `Vec` push with zero atomics.
    static FREELIST: RefCell<Vec<Arc<Seg>>> = const { RefCell::new(Vec::new()) };
    /// Segments recycled on this thread so far (telemetry).
    static RECYCLED: Cell<u64> = const { Cell::new(0) };
}

/// Pop a unique, ready segment off the current thread's freelist.
fn freelist_pop() -> Option<Arc<Seg>> {
    FREELIST.with(|f| f.borrow_mut().pop())
}

/// Park a unique segment on the current thread's freelist (or free it when
/// the list is at capacity).
fn freelist_push(seg: Arc<Seg>) {
    FREELIST.with(|f| {
        let mut v = f.borrow_mut();
        if v.len() < MAX_FREE_PER_THREAD {
            v.push(seg);
            RECYCLED.with(|r| r.set(r.get() + 1));
        }
        // else: drop here — the storage is genuinely freed.
    });
}

/// Counters describing a [`BufPool`]'s allocator behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from the freelist (no heap traffic).
    pub hits: u64,
    /// Allocations that had to create a fresh segment (cold freelist).
    pub misses: u64,
    /// Allocations that exceeded [`SEG_CAPACITY`] and fell back to a plain
    /// heap buffer (never pooled).
    pub fallbacks: u64,
    /// Segments recycled into the freelist on drop — on the calling thread
    /// (freelists are thread-local).
    pub recycled: u64,
    /// Segments currently parked in the calling thread's freelist
    /// (instantaneous occupancy).
    pub free: u64,
}

impl PoolStats {
    /// Fraction of pooled allocations served from the freelist, in `0..=1`.
    /// 1.0 when no allocation happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct PoolCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    fallbacks: AtomicU64,
}

/// Relaxed load+store increment: a pool is used by one thread at a time (a
/// kernel's pool migrates with the kernel, with happens-before provided by
/// the executor handoff), so counters avoid the much costlier atomic
/// read-modify-write. Under exotic concurrent sharing this can undercount —
/// counters are telemetry, never correctness.
#[inline]
fn bump(c: &AtomicU64) {
    c.store(c.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
}

/// A handle onto the packet-buffer arena, carrying per-component allocation
/// counters. Cloning the handle shares the counters; each kernel owns one
/// handle (shared by all its ports), so allocator behaviour lands in that
/// component's [`KernelStats`](crate::stats::KernelStats). The backing
/// freelist itself is per-thread and shared by all pools on that thread.
#[derive(Clone)]
pub struct BufPool {
    counters: Arc<PoolCounters>,
}

impl Default for BufPool {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for BufPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufPool").field("stats", &self.stats()).finish()
    }
}

impl BufPool {
    /// A new counter scope over the thread-local arena.
    pub fn new() -> Self {
        BufPool {
            counters: Arc::new(PoolCounters {
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                fallbacks: AtomicU64::new(0),
            }),
        }
    }

    /// Snapshot of this handle's counters plus the calling thread's freelist
    /// occupancy.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            fallbacks: self.counters.fallbacks.load(Ordering::Relaxed),
            recycled: RECYCLED.with(|r| r.get()),
            free: FREELIST.with(|f| f.borrow().len()) as u64,
        }
    }

    /// Pop a unique, pool-owned segment (hit) or create one (miss).
    fn take_seg(&self) -> Arc<Seg> {
        if let Some(seg) = freelist_pop() {
            bump(&self.counters.hits);
            debug_assert_eq!(Arc::strong_count(&seg), 1);
            return seg;
        }
        bump(&self.counters.misses);
        new_seg()
    }

    /// An empty buffer with `headroom` bytes reserved at the front.
    pub fn alloc_headroom(&self, headroom: usize) -> PktBuf {
        let headroom = headroom.min(SEG_CAPACITY);
        PktBuf {
            seg: Some(self.take_seg()),
            off: headroom as u32,
            len: 0,
        }
    }

    /// An empty buffer with [`DEFAULT_HEADROOM`] reserved.
    pub fn alloc(&self) -> PktBuf {
        self.alloc_headroom(DEFAULT_HEADROOM)
    }

    /// An empty buffer able to hold at least `capacity` bytes: pooled when it
    /// fits a segment, otherwise a heap fallback (counted).
    pub fn alloc_capacity(&self, capacity: usize, headroom: usize) -> PktBuf {
        if capacity + headroom <= SEG_CAPACITY {
            self.alloc_headroom(headroom)
        } else if capacity <= SEG_CAPACITY {
            self.alloc_headroom(SEG_CAPACITY - capacity)
        } else {
            bump(&self.counters.fallbacks);
            PktBuf::heap_with_capacity(capacity + headroom, headroom)
        }
    }

    /// Copy `data` into a pooled buffer (heap fallback for jumbo payloads).
    pub fn copy_from_slice(&self, data: &[u8]) -> PktBuf {
        let mut b = self.alloc_capacity(data.len(), DEFAULT_HEADROOM);
        b.extend_from_slice(data);
        b
    }
}

fn new_seg() -> Arc<Seg> {
    Arc::new(Seg {
        storage: vec![0u8; SEG_CAPACITY].into_boxed_slice(),
    })
}

/// Refcounted segment storage. While parked in a thread's freelist the list
/// holds the only reference; while in flight, every [`PktBuf`] clone shares
/// one `Arc`. A segment is recyclable iff its storage has exactly
/// [`SEG_CAPACITY`] bytes (heap fallbacks and `from_vec` wrappers differ and
/// are simply freed).
struct Seg {
    storage: Box<[u8]>,
}

/// A cheaply clonable, pool-backed byte buffer with headroom and tailroom.
///
/// `PktBuf` dereferences to `[u8]`, so read paths treat it exactly like a
/// byte slice. Clones share the underlying segment (refcount bump); mutation
/// through [`PktBuf::make_mut`], [`PktBuf::prepend`] or
/// [`PktBuf::extend_from_slice`] is in-place while the buffer is uniquely
/// owned and degrades to copy-on-write when shared.
pub struct PktBuf {
    /// `None` encodes the empty buffer (no allocation — SYNC messages are the
    /// most frequent payloads in a synchronized run).
    seg: Option<Arc<Seg>>,
    off: u32,
    len: u32,
}

impl PktBuf {
    /// The empty buffer. Allocation-free.
    pub const fn empty() -> PktBuf {
        PktBuf {
            seg: None,
            off: 0,
            len: 0,
        }
    }

    fn heap_with_capacity(capacity: usize, headroom: usize) -> PktBuf {
        PktBuf {
            seg: Some(Arc::new(Seg {
                storage: vec![0u8; capacity.max(1)].into_boxed_slice(),
            })),
            off: headroom.min(capacity) as u32,
            len: 0,
        }
    }

    /// Wrap an existing vector without copying (heap-backed, not pooled).
    pub fn from_vec(v: Vec<u8>) -> PktBuf {
        if v.is_empty() {
            return PktBuf::empty();
        }
        let len = v.len() as u32;
        PktBuf {
            seg: Some(Arc::new(Seg {
                storage: v.into_boxed_slice(),
            })),
            off: 0,
            len,
        }
    }

    /// Number of readable bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the buffer holds no bytes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The readable bytes as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.seg {
            Some(s) => &s.storage[self.off as usize..(self.off + self.len) as usize],
            None => &[],
        }
    }

    /// Bytes available in front of the data for in-place [`PktBuf::prepend`].
    pub fn headroom(&self) -> usize {
        self.off as usize
    }

    /// Bytes available behind the data for in-place
    /// [`PktBuf::extend_from_slice`].
    pub fn tailroom(&self) -> usize {
        match &self.seg {
            Some(s) => s.storage.len() - (self.off + self.len) as usize,
            None => 0,
        }
    }

    /// Whether this buffer is the only reference to its segment (mutation is
    /// in-place; a shared buffer copies on write).
    pub fn is_unique(&self) -> bool {
        match &self.seg {
            Some(s) => Arc::strong_count(s) == 1,
            None => true,
        }
    }

    /// A sub-view of `self` covering `start..end` (refcount bump, no copy).
    pub fn slice(&self, start: usize, end: usize) -> PktBuf {
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        if start == end {
            return PktBuf::empty();
        }
        PktBuf {
            seg: self.seg.clone(),
            off: self.off + start as u32,
            len: (end - start) as u32,
        }
    }

    /// Mutable access to the readable bytes, copying into a fresh segment
    /// first if the buffer is shared (copy-on-write).
    pub fn make_mut(&mut self) -> &mut [u8] {
        if self.len == 0 {
            return &mut [];
        }
        if !self.is_unique() {
            self.reallocate(self.len(), self.headroom());
        }
        let off = self.off as usize;
        let len = self.len as usize;
        let seg = Arc::get_mut(self.seg.as_mut().expect("non-empty buffer has a segment"))
            .expect("buffer was made unique above");
        &mut seg.storage[off..off + len]
    }

    /// Append `data`, in place when uniquely owned with enough tailroom,
    /// otherwise relocating into a larger (pooled when possible) segment.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.extend_with(data.len(), |dst| dst.copy_from_slice(data));
    }

    /// Append `n` bytes produced by `fill` (which receives the tail region):
    /// the one-copy path for reading out of raw memory (mmap regions, guest
    /// memory) straight into a pooled buffer.
    pub fn extend_with(&mut self, n: usize, fill: impl FnOnce(&mut [u8])) {
        if n == 0 {
            return;
        }
        if self.seg.is_none() {
            // Empty buffer: materialize a segment (recycled if the size
            // permits; pooled callers allocate via `BufPool::alloc*`).
            *self = if n + DEFAULT_HEADROOM <= SEG_CAPACITY {
                PktBuf {
                    seg: Some(freelist_pop().unwrap_or_else(new_seg)),
                    off: DEFAULT_HEADROOM as u32,
                    len: 0,
                }
            } else {
                PktBuf::heap_with_capacity(n + DEFAULT_HEADROOM, DEFAULT_HEADROOM)
            };
        }
        if !self.is_unique() || self.tailroom() < n {
            let need = self.len() + n;
            self.reallocate(need, self.headroom().min(DEFAULT_HEADROOM));
        }
        let off = self.off as usize;
        let len = self.len as usize;
        let seg = Arc::get_mut(self.seg.as_mut().expect("segment present"))
            .expect("unique after reallocate");
        fill(&mut seg.storage[off + len..off + len + n]);
        self.len += n as u32;
    }

    /// Prepend `data` in front of the current bytes, in place when uniquely
    /// owned with enough headroom, otherwise relocating.
    pub fn prepend(&mut self, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        if self.seg.is_none() || !self.is_unique() || self.headroom() < data.len() {
            let mut fresh = PktBuf::empty();
            fresh.extend_with(data.len() + self.len(), |dst| {
                dst[..data.len()].copy_from_slice(data);
                dst[data.len()..].copy_from_slice(self.as_slice());
            });
            *self = fresh;
            return;
        }
        let off = self.off as usize - data.len();
        let seg = Arc::get_mut(self.seg.as_mut().expect("segment present"))
            .expect("unique checked above");
        seg.storage[off..off + data.len()].copy_from_slice(data);
        self.off = off as u32;
        self.len += data.len() as u32;
    }

    /// Keep only the first `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.len = len as u32;
        }
    }

    /// Drop the first `n` bytes (view adjustment, no copy).
    pub fn advance(&mut self, n: usize) {
        let n = n.min(self.len()) as u32;
        self.off += n;
        self.len -= n;
    }

    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Move the data into a new segment of at least `capacity` bytes with
    /// `headroom` in front, recycling a thread-local segment when the size
    /// permits.
    fn reallocate(&mut self, capacity: usize, headroom: usize) {
        let mut fresh = if capacity + headroom <= SEG_CAPACITY {
            PktBuf {
                seg: Some(freelist_pop().unwrap_or_else(new_seg)),
                off: headroom as u32,
                len: 0,
            }
        } else {
            PktBuf::heap_with_capacity(capacity + headroom, headroom)
        };
        fresh.extend_from_slice(self.as_slice());
        *self = fresh;
    }
}

impl Drop for PktBuf {
    fn drop(&mut self) {
        if let Some(seg) = self.seg.take() {
            // Fast path: last reference to a standard-size segment — park the
            // whole `Arc` (storage included) in the thread's freelist instead
            // of freeing it. `strong_count == 1` is definitive: we hold the
            // only handle.
            if Arc::strong_count(&seg) == 1 && seg.storage.len() == SEG_CAPACITY {
                freelist_push(seg);
            }
        }
    }
}

impl Clone for PktBuf {
    fn clone(&self) -> Self {
        PktBuf {
            seg: self.seg.clone(),
            off: self.off,
            len: self.len,
        }
    }
}

impl Default for PktBuf {
    fn default() -> Self {
        PktBuf::empty()
    }
}

impl Deref for PktBuf {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PktBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for PktBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PktBuf({} B", self.len())?;
        if self.len() <= 16 {
            write!(f, ": {:02x?}", self.as_slice())?;
        }
        write!(f, ")")
    }
}

impl From<Vec<u8>> for PktBuf {
    fn from(v: Vec<u8>) -> Self {
        PktBuf::from_vec(v)
    }
}

impl From<&[u8]> for PktBuf {
    fn from(s: &[u8]) -> Self {
        let mut b = PktBuf::empty();
        b.extend_from_slice(s);
        b
    }
}

impl<const N: usize> From<&[u8; N]> for PktBuf {
    fn from(s: &[u8; N]) -> Self {
        PktBuf::from(&s[..])
    }
}

impl PartialEq for PktBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for PktBuf {}

impl PartialEq<[u8]> for PktBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for PktBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for PktBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<PktBuf> for Vec<u8> {
    fn eq(&self, other: &PktBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for PktBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for PktBuf {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_is_allocation_free() {
        let b = PktBuf::empty();
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert_eq!(b.as_slice(), &[] as &[u8]);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn pool_recycles_segments() {
        let pool = BufPool::new();
        let free0 = pool.stats().free;
        let a = pool.copy_from_slice(b"hello");
        let (h0, m0) = (pool.stats().hits, pool.stats().misses);
        assert_eq!(h0 + m0, 1, "exactly one allocation so far");
        drop(a);
        assert_eq!(pool.stats().free, free0 + 1, "segment parked on drop");
        let b = pool.copy_from_slice(b"world");
        assert_eq!(pool.stats().hits, h0 + 1, "second allocation reuses it");
        assert_eq!(pool.stats().free, free0);
        assert_eq!(b, b"world");
    }

    #[test]
    fn clone_shares_and_last_drop_recycles() {
        let pool = BufPool::new();
        let a = pool.copy_from_slice(&[1, 2, 3]);
        let free_live = pool.stats().free;
        let b = a.clone();
        let c = b.clone();
        assert!(!a.is_unique());
        drop(a);
        drop(b);
        assert_eq!(pool.stats().free, free_live, "live reference keeps the segment");
        assert_eq!(c, [1, 2, 3]);
        drop(c);
        assert_eq!(pool.stats().free, free_live + 1, "last drop recycles");
    }

    #[test]
    fn headroom_prepend_in_place() {
        let pool = BufPool::new();
        let mut b = pool.copy_from_slice(b"payload");
        assert_eq!(b.headroom(), DEFAULT_HEADROOM);
        let allocs = pool.stats().hits + pool.stats().misses;
        b.prepend(b"hdr:");
        assert_eq!(b, b"hdr:payload");
        assert_eq!(b.headroom(), DEFAULT_HEADROOM - 4);
        assert_eq!(
            pool.stats().hits + pool.stats().misses,
            allocs,
            "prepend with headroom does not reallocate"
        );
    }

    #[test]
    fn prepend_on_shared_buffer_copies_on_write() {
        let pool = BufPool::new();
        let mut a = pool.copy_from_slice(b"data");
        let b = a.clone();
        a.prepend(b"x");
        assert_eq!(a, b"xdata");
        assert_eq!(b, b"data", "shared clone unaffected");
    }

    #[test]
    fn extend_uses_tailroom_then_grows() {
        let pool = BufPool::new();
        let mut b = pool.alloc();
        b.extend_from_slice(&[7u8; 100]);
        assert_eq!(b.len(), 100);
        assert_eq!(b.tailroom(), SEG_CAPACITY - DEFAULT_HEADROOM - 100);
        // Exceeding segment capacity falls back to the heap.
        let big = vec![9u8; SEG_CAPACITY + 1];
        let mut j = pool.copy_from_slice(&big);
        assert_eq!(pool.stats().fallbacks, 1);
        assert_eq!(j.len(), big.len());
        j.extend_from_slice(&[1]);
        assert_eq!(j.len(), big.len() + 1);
        assert_eq!(&j[big.len()..], &[1]);
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        let pool = BufPool::new();
        let b = pool.copy_from_slice(b"abcdefgh");
        let s = b.slice(2, 6);
        assert_eq!(s, b"cdef");
        assert!(!b.is_unique(), "slice shares the segment");
        let empty = b.slice(3, 3);
        assert!(empty.is_empty());
    }

    #[test]
    fn make_mut_copy_on_write_isolates_clones() {
        let pool = BufPool::new();
        let mut a = pool.copy_from_slice(&[1, 2, 3, 4]);
        let b = a.clone();
        a.make_mut()[0] = 99;
        assert_eq!(a, [99, 2, 3, 4]);
        assert_eq!(b, [1, 2, 3, 4]);
        // Unique mutation is in place (no new allocations).
        let before = pool.stats().hits + pool.stats().misses;
        a.make_mut()[1] = 98;
        assert_eq!(pool.stats().hits + pool.stats().misses, before);
    }

    #[test]
    fn truncate_and_advance_adjust_the_view() {
        let pool = BufPool::new();
        let mut b = pool.copy_from_slice(b"0123456789");
        b.advance(3);
        assert_eq!(b, b"3456789");
        b.truncate(4);
        assert_eq!(b, b"3456");
        b.advance(100);
        assert!(b.is_empty());
    }

    #[test]
    fn from_vec_is_zero_copy_and_not_recycled() {
        let pool = BufPool::new();
        let free0 = pool.stats().free;
        let v = vec![5u8; 32];
        let b = PktBuf::from_vec(v.clone());
        assert_eq!(b, v);
        drop(b);
        assert_eq!(
            pool.stats().free,
            free0,
            "odd-size heap buffers never enter the freelist"
        );
    }

    #[test]
    fn freelist_is_bounded_per_thread() {
        let bufs: Vec<PktBuf> = {
            let pool = BufPool::new();
            (0..MAX_FREE_PER_THREAD + 50)
                .map(|i| pool.copy_from_slice(&[(i % 251) as u8]))
                .collect()
        };
        drop(bufs);
        let free = FREELIST.with(|f| f.borrow().len());
        assert!(free <= MAX_FREE_PER_THREAD, "freelist bounded, got {free}");
    }

    #[test]
    fn dropping_the_pool_does_not_invalidate_live_buffers() {
        let pool = BufPool::new();
        let b = pool.copy_from_slice(b"survivor");
        drop(pool);
        assert_eq!(b, b"survivor");
        drop(b); // recycles onto the thread freelist; nothing dangles
    }

    #[test]
    fn equality_against_common_byte_containers() {
        let pool = BufPool::new();
        let b = pool.copy_from_slice(&[1, 2, 3]);
        assert_eq!(b, vec![1, 2, 3]);
        assert_eq!(vec![1, 2, 3], b);
        assert_eq!(b, [1, 2, 3]);
        assert_eq!(b, &[1u8, 2, 3][..]);
        assert_eq!(b, PktBuf::from(vec![1, 2, 3]));
    }

    #[test]
    fn extend_with_fills_exactly_the_new_tail() {
        let pool = BufPool::new();
        let mut b = pool.copy_from_slice(b"head");
        b.extend_with(4, |dst| {
            assert_eq!(dst.len(), 4);
            dst.copy_from_slice(b"tail");
        });
        assert_eq!(b, b"headtail");
        b.extend_with(0, |_| panic!("never called for n == 0"));
        assert_eq!(b, b"headtail");
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One random operation against the buffer-vs-model pair.
        #[derive(Clone, Debug)]
        enum Op {
            Extend(Vec<u8>),
            Prepend(Vec<u8>),
            Truncate(usize),
            Advance(usize),
            Slice(usize, usize),
            CloneIt,
            DropClone,
            Mutate(u8),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                proptest::collection::vec(any::<u8>(), 0..200).prop_map(Op::Extend),
                proptest::collection::vec(any::<u8>(), 0..64).prop_map(Op::Prepend),
                (0usize..300).prop_map(Op::Truncate),
                (0usize..300).prop_map(Op::Advance),
                (0usize..100, 0usize..100).prop_map(|(a, b)| Op::Slice(a, b)),
                Just(Op::CloneIt),
                Just(Op::DropClone),
                any::<u8>().prop_map(Op::Mutate),
            ]
        }

        proptest! {
            /// Random split/chain/clone/drop/mutate sequences behave exactly
            /// like a `Vec<u8>` model, clones stay isolated under mutation,
            /// and the freelist never leaks or double-frees a segment (a
            /// double-free or use-after-recycle would corrupt the contents
            /// checked after every step, or abort).
            #[test]
            fn pktbuf_matches_vec_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
                let pool = BufPool::new();
                let mut buf = pool.alloc();
                let mut model: Vec<u8> = Vec::new();
                let mut clones: Vec<(PktBuf, Vec<u8>)> = Vec::new();
                for op in ops {
                    match op {
                        Op::Extend(d) => { buf.extend_from_slice(&d); model.extend_from_slice(&d); }
                        Op::Prepend(d) => {
                            buf.prepend(&d);
                            let mut m = d.clone();
                            m.extend_from_slice(&model);
                            model = m;
                        }
                        Op::Truncate(n) => { buf.truncate(n); model.truncate(n.min(model.len())); }
                        Op::Advance(n) => {
                            buf.advance(n);
                            let n = n.min(model.len());
                            model.drain(..n);
                        }
                        Op::Slice(a, b) => {
                            let (a, b) = (a.min(model.len()), b.min(model.len()));
                            let (a, b) = (a.min(b), a.max(b));
                            let s = buf.slice(a, b);
                            prop_assert_eq!(s.as_slice(), &model[a..b]);
                        }
                        Op::CloneIt => clones.push((buf.clone(), model.clone())),
                        Op::DropClone => { clones.pop(); }
                        Op::Mutate(v) => {
                            if !model.is_empty() {
                                buf.make_mut()[0] = v;
                                model[0] = v;
                            }
                        }
                    }
                    prop_assert_eq!(buf.as_slice(), model.as_slice());
                }
                // Clones were never disturbed by mutations of the original.
                for (c, m) in &clones {
                    prop_assert_eq!(c.as_slice(), m.as_slice());
                }
                drop(buf);
                drop(clones);
                // The thread freelist stays within its bound — segments are
                // recycled at most once (a double recycle would blow past the
                // number of live allocations long before tripping the bound).
                let free = FREELIST.with(|f| f.borrow().len());
                prop_assert!(free <= MAX_FREE_PER_THREAD);
            }
        }
    }
}
