//! Cross-component trace analysis (§8.1 of the paper).
//!
//! Synchronized SimBricks simulations can produce detailed timestamped logs
//! in every component *without affecting simulated behaviour* (logging costs
//! wall-clock time only). The paper leverages this to debug the Corundum
//! throughput anomaly: PCI activity, NIC activity, and CPU activity are
//! traced separately and then *combined into an end-to-end view of the RPC
//! latency*. This module implements that combination step: it merges the
//! per-component [`EventLog`]s of a run into one named timeline and provides
//! latency-breakdown queries over it.

use std::collections::BTreeMap;
use std::fmt;

use crate::log::{EventLog, LogEntry};
use crate::time::SimTime;

/// One record of a merged, named trace: which component logged it, when, and
/// the tag/operands of the underlying [`LogEntry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the underlying log entry.
    pub time: SimTime,
    /// Name of the component that logged it.
    pub component: String,
    /// Static tag naming the event kind.
    pub tag: &'static str,
    /// First tag-dependent operand.
    pub a: u64,
    /// Second tag-dependent operand.
    pub b: u64,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>14} ps  {:<16} {:<14} {:>8} {:>8}",
            self.time.as_ps(),
            self.component,
            self.tag,
            self.a,
            self.b
        )
    }
}

/// Statistics of a set of observed latencies (all values in virtual time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of latencies observed.
    pub count: u64,
    /// Sum of all observed latencies.
    pub total: SimTime,
    /// Smallest observed latency.
    pub min: SimTime,
    /// Largest observed latency.
    pub max: SimTime,
}

impl SpanStats {
    fn observe(&mut self, d: SimTime) {
        if self.count == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.count += 1;
        self.total += d;
    }

    /// Mean observed latency; zero when nothing was observed.
    pub fn mean(&self) -> SimTime {
        self.total
            .as_ps()
            .checked_div(self.count)
            .map_or(SimTime::ZERO, SimTime::from_ps)
    }
}

impl fmt::Display for SpanStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count,
            self.mean(),
            self.min,
            self.max
        )
    }
}

/// A phase of an end-to-end breakdown: an event with tag `tag` logged by the
/// component whose name contains `component` (substring match, so "client"
/// matches "client-host").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Substring matched against component names.
    pub component: String,
    /// Tag the matching entry must carry.
    pub tag: &'static str,
    /// Human-readable label used in reports.
    pub label: String,
}

impl Phase {
    /// Define a phase by component substring, tag, and report label.
    pub fn new(component: impl Into<String>, tag: &'static str, label: impl Into<String>) -> Self {
        Phase {
            component: component.into(),
            tag,
            label: label.into(),
        }
    }

    fn matches(&self, e: &TraceEntry) -> bool {
        e.tag == self.tag && e.component.contains(self.component.as_str())
    }
}

/// One segment of a completed [`Breakdown`]: the latency between two
/// consecutive phases, aggregated over every traversal found in the trace.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Label of the segment's starting phase.
    pub from: String,
    /// Label of the segment's ending phase.
    pub to: String,
    /// Latency statistics aggregated over all traversals.
    pub stats: SpanStats,
}

/// The result of [`Trace::breakdown`]: per-segment latency statistics plus
/// the end-to-end total, i.e. the "end-to-end view of the RPC latency" of
/// §8.1.
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    /// Per-segment latency statistics, in phase order.
    pub segments: Vec<Segment>,
    /// Latency from the first to the last phase.
    pub end_to_end: SpanStats,
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.segments {
            writeln!(f, "{:<28} -> {:<28} {}", s.from, s.to, s.stats)?;
        }
        write!(f, "{:<60} {}", "end-to-end", self.end_to_end)
    }
}

/// A merged, named, time-ordered trace built from per-component event logs.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Merge per-component logs (as returned by the runner: parallel arrays
    /// of component names and event logs) into one global timeline. Entries
    /// are ordered by time; ties are broken by component position and then by
    /// log order, which keeps the merge deterministic.
    pub fn from_logs<S: AsRef<str>>(names: &[S], logs: &[EventLog]) -> Trace {
        let mut entries: Vec<(usize, usize, TraceEntry)> = Vec::new();
        for (ci, (name, log)) in names.iter().zip(logs.iter()).enumerate() {
            for (ei, e) in log.entries().iter().enumerate() {
                entries.push((
                    ci,
                    ei,
                    TraceEntry {
                        time: e.time,
                        component: name.as_ref().to_string(),
                        tag: e.tag,
                        a: e.a,
                        b: e.b,
                    },
                ));
            }
        }
        entries.sort_by(|(ca, ea, a), (cb, eb, b)| {
            a.time.cmp(&b.time).then(ca.cmp(cb)).then(ea.cmp(eb))
        });
        Trace {
            entries: entries.into_iter().map(|(_, _, e)| e).collect(),
        }
    }

    /// All merged entries, time-ordered.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of merged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries within the half-open virtual-time window `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> Vec<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| e.time >= from && e.time < to)
            .collect()
    }

    /// Per-component, per-tag event counts — the first thing to look at when
    /// debugging a misbehaving configuration.
    pub fn activity_summary(&self) -> BTreeMap<(String, &'static str), u64> {
        let mut out = BTreeMap::new();
        for e in &self.entries {
            *out.entry((e.component.clone(), e.tag)).or_insert(0u64) += 1;
        }
        out
    }

    /// For every occurrence of `(from_component, from_tag)`, find the next
    /// later occurrence of `(to_component, to_tag)` and aggregate the
    /// latencies. Occurrences of the target are consumed, so back-to-back
    /// requests pair up one-to-one.
    pub fn span_between(&self, from: &Phase, to: &Phase) -> SpanStats {
        let mut stats = SpanStats::default();
        let mut to_idx = 0usize;
        for (i, e) in self.entries.iter().enumerate() {
            if !from.matches(e) {
                continue;
            }
            // Advance the target cursor to the first matching entry at or
            // after this source entry.
            if to_idx <= i {
                to_idx = i + 1;
            }
            while to_idx < self.entries.len() && !to.matches(&self.entries[to_idx]) {
                to_idx += 1;
            }
            if to_idx >= self.entries.len() {
                break;
            }
            stats.observe(self.entries[to_idx].time - e.time);
            to_idx += 1;
        }
        stats
    }

    /// Walk the trace through an ordered list of phases and report the mean /
    /// min / max latency of each consecutive segment, plus the end-to-end
    /// latency from the first to the last phase. Each traversal starts at an
    /// occurrence of the first phase and greedily consumes the next
    /// occurrence of each subsequent phase; incomplete traversals (e.g. the
    /// final request cut off by the end of the run) are dropped.
    pub fn breakdown(&self, phases: &[Phase]) -> Breakdown {
        let mut out = Breakdown::default();
        if phases.len() < 2 {
            return out;
        }
        let mut seg_stats = vec![SpanStats::default(); phases.len() - 1];
        let mut cursor = 0usize;
        // Walk every occurrence of the first phase.
        while let Some(start_idx) = self.entries[cursor..]
            .iter()
            .position(|e| phases[0].matches(e))
            .map(|p| p + cursor)
        {
            let mut times = Vec::with_capacity(phases.len());
            times.push(self.entries[start_idx].time);
            let mut idx = start_idx;
            let mut complete = true;
            for phase in &phases[1..] {
                let Some(next) = self.entries[idx + 1..]
                    .iter()
                    .position(|e| phase.matches(e))
                    .map(|p| p + idx + 1)
                else {
                    complete = false;
                    break;
                };
                times.push(self.entries[next].time);
                idx = next;
            }
            if !complete {
                break;
            }
            for (i, w) in times.windows(2).enumerate() {
                seg_stats[i].observe(w[1] - w[0]);
            }
            out.end_to_end
                .observe(*times.last().unwrap() - times[0]);
            // The next traversal starts after the first phase of this one so
            // overlapping (pipelined) requests are still counted once each.
            cursor = start_idx + 1;
        }
        out.segments = phases
            .windows(2)
            .zip(seg_stats)
            .map(|(pair, stats)| Segment {
                from: pair[0].label.clone(),
                to: pair[1].label.clone(),
                stats,
            })
            .collect();
        out
    }

    /// Render the first `limit` entries as a human-readable timeline.
    pub fn render(&self, limit: usize) -> String {
        let mut s = String::new();
        for e in self.entries.iter().take(limit) {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        if self.entries.len() > limit {
            s.push_str(&format!("... ({} more entries)\n", self.entries.len() - limit));
        }
        s
    }
}

/// Convenience: build a [`Trace`] straight from `(name, log)` pairs.
impl<S: AsRef<str>> FromIterator<(S, EventLog)> for Trace {
    fn from_iter<T: IntoIterator<Item = (S, EventLog)>>(iter: T) -> Self {
        let (names, logs): (Vec<_>, Vec<_>) = iter.into_iter().unzip();
        Trace::from_logs(&names, &logs)
    }
}

/// Helper used by tests and harnesses that already hold raw entries.
pub fn trace_from_entries(entries: Vec<(SimTime, &str, &'static str, u64, u64)>) -> Trace {
    let mut by_component: BTreeMap<String, EventLog> = BTreeMap::new();
    for (t, c, tag, a, b) in entries {
        by_component
            .entry(c.to_string())
            .or_insert_with(EventLog::enabled)
            .record(t, tag, a, b);
    }
    let (names, logs): (Vec<_>, Vec<_>) = by_component.into_iter().unzip();
    Trace::from_logs(&names, &logs)
}

/// Re-export of the raw log entry type for harnesses that post-process logs
/// directly.
pub type RawLogEntry = LogEntry;

#[cfg(test)]
mod tests {
    use super::*;

    fn rpc_trace() -> Trace {
        // Two request/response cycles: client sends, server receives+replies,
        // client receives.
        trace_from_entries(vec![
            (SimTime::from_us(10), "client-host", "host_tx", 100, 0),
            (SimTime::from_us(11), "client-nic", "nic_tx", 100, 0),
            (SimTime::from_us(13), "server-nic", "nic_rx", 100, 0),
            (SimTime::from_us(14), "server-host", "host_irq", 1, 0),
            (SimTime::from_us(15), "server-host", "host_rx", 100, 0),
            (SimTime::from_us(18), "server-host", "host_tx", 100, 0),
            (SimTime::from_us(21), "client-host", "host_rx", 100, 0),
            // second cycle, a bit slower in the network
            (SimTime::from_us(30), "client-host", "host_tx", 100, 0),
            (SimTime::from_us(31), "client-nic", "nic_tx", 100, 0),
            (SimTime::from_us(35), "server-nic", "nic_rx", 100, 0),
            (SimTime::from_us(36), "server-host", "host_irq", 2, 0),
            (SimTime::from_us(37), "server-host", "host_rx", 100, 0),
            (SimTime::from_us(40), "server-host", "host_tx", 100, 0),
            (SimTime::from_us(45), "client-host", "host_rx", 100, 0),
        ])
    }

    #[test]
    fn merge_orders_by_time_and_is_deterministic() {
        let mut a = EventLog::enabled();
        a.record(SimTime::from_ns(30), "x", 1, 0);
        a.record(SimTime::from_ns(10), "x", 2, 0);
        let mut b = EventLog::enabled();
        b.record(SimTime::from_ns(10), "y", 3, 0);
        let t1 = Trace::from_logs(&["a", "b"], &[a.clone(), b.clone()]);
        let t2 = Trace::from_logs(&["a", "b"], &[a, b]);
        assert_eq!(t1.entries(), t2.entries());
        let times: Vec<u64> = t1.entries().iter().map(|e| e.time.as_ns()).collect();
        assert_eq!(times, vec![10, 10, 30]);
        // Tie at 10 ns: component "a" (earlier position) comes first.
        assert_eq!(t1.entries()[0].component, "a");
    }

    #[test]
    fn activity_summary_counts_per_component_and_tag() {
        let t = rpc_trace();
        let summary = t.activity_summary();
        assert_eq!(summary[&("client-host".to_string(), "host_tx")], 2);
        assert_eq!(summary[&("server-host".to_string(), "host_rx")], 2);
        assert_eq!(summary[&("server-host".to_string(), "host_irq")], 2);
        assert!(!summary.contains_key(&("client-nic".to_string(), "nic_rx")));
    }

    #[test]
    fn span_between_pairs_up_requests() {
        let t = rpc_trace();
        let s = t.span_between(
            &Phase::new("client-host", "host_tx", "client send"),
            &Phase::new("client-host", "host_rx", "client recv"),
        );
        assert_eq!(s.count, 2);
        assert_eq!(s.min, SimTime::from_us(11));
        assert_eq!(s.max, SimTime::from_us(15));
        assert_eq!(s.mean(), SimTime::from_us(13));
    }

    #[test]
    fn breakdown_reports_each_segment_and_end_to_end() {
        let t = rpc_trace();
        let phases = vec![
            Phase::new("client-host", "host_tx", "client TX"),
            Phase::new("server-nic", "nic_rx", "server NIC RX"),
            Phase::new("server-host", "host_rx", "server app RX"),
            Phase::new("client-host", "host_rx", "client app RX"),
        ];
        let b = t.breakdown(&phases);
        assert_eq!(b.segments.len(), 3);
        assert_eq!(b.end_to_end.count, 2);
        // network + NIC segment: 3 us then 5 us.
        assert_eq!(b.segments[0].stats.min, SimTime::from_us(3));
        assert_eq!(b.segments[0].stats.max, SimTime::from_us(5));
        // server processing segment: 2 us both times.
        assert_eq!(b.segments[1].stats.mean(), SimTime::from_us(2));
        // end-to-end mean of 11 and 15 us.
        assert_eq!(b.end_to_end.mean(), SimTime::from_us(13));
        // Display renders a line per segment plus the total.
        let text = b.to_string();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("end-to-end"));
    }

    #[test]
    fn breakdown_with_too_few_phases_is_empty() {
        let t = rpc_trace();
        let b = t.breakdown(&[Phase::new("client-host", "host_tx", "only")]);
        assert!(b.segments.is_empty());
        assert_eq!(b.end_to_end.count, 0);
    }

    #[test]
    fn incomplete_final_traversal_is_dropped() {
        let t = trace_from_entries(vec![
            (SimTime::from_us(1), "c", "host_tx", 0, 0),
            (SimTime::from_us(2), "c", "host_rx", 0, 0),
            // a trailing request whose response never arrived
            (SimTime::from_us(3), "c", "host_tx", 0, 0),
        ]);
        let b = t.breakdown(&[
            Phase::new("c", "host_tx", "tx"),
            Phase::new("c", "host_rx", "rx"),
        ]);
        assert_eq!(b.end_to_end.count, 1);
        assert_eq!(b.end_to_end.mean(), SimTime::from_us(1));
    }

    #[test]
    fn window_and_render() {
        let t = rpc_trace();
        let w = t.window(SimTime::from_us(10), SimTime::from_us(14));
        assert_eq!(w.len(), 3);
        let rendered = t.render(5);
        assert_eq!(rendered.lines().count(), 6, "5 entries + continuation line");
        assert!(rendered.contains("more entries"));
        let all = t.render(1000);
        assert_eq!(all.lines().count(), t.len());
    }

    #[test]
    fn span_stats_observation_math() {
        let mut s = SpanStats::default();
        assert_eq!(s.mean(), SimTime::ZERO);
        s.observe(SimTime::from_ns(10));
        s.observe(SimTime::from_ns(30));
        assert_eq!(s.count, 2);
        assert_eq!(s.min, SimTime::from_ns(10));
        assert_eq!(s.max, SimTime::from_ns(30));
        assert_eq!(s.mean(), SimTime::from_ns(20));
        assert!(s.to_string().contains("n=2"));
    }

    #[test]
    fn from_iterator_of_named_logs() {
        let mut a = EventLog::enabled();
        a.record(SimTime::from_ns(5), "t", 0, 0);
        let t: Trace = vec![("comp-a", a)].into_iter().collect();
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].component, "comp-a");
    }

    #[test]
    fn phase_component_substring_matching() {
        let p = Phase::new("client", "host_tx", "tx");
        let e = TraceEntry {
            time: SimTime::ZERO,
            component: "client-host-3".into(),
            tag: "host_tx",
            a: 0,
            b: 0,
        };
        assert!(p.matches(&e));
        let other = TraceEntry {
            component: "server-host".into(),
            ..e.clone()
        };
        assert!(!p.matches(&other));
        let wrong_tag = TraceEntry {
            tag: "host_rx",
            ..e
        };
        assert!(!p.matches(&wrong_tag));
    }
}
