//! The component kernel: SimBricks adapter plus event loop.
//!
//! Every component simulator (host, NIC, network, storage device) is written
//! as a [`Model`]: a state machine that reacts to incoming interface messages
//! and to its own timers. The [`Kernel`] owns the component's channels and
//! timer queue and enforces the synchronization protocol of §5.5: it advances
//! the component's virtual clock only as far as every synchronized peer has
//! promised, emits SYNC messages for liveness, timestamps outgoing messages
//! with the link latency, and delivers incoming messages at exactly their
//! timestamps.
//!
//! The kernel exposes a non-blocking [`Kernel::step`] so components can be
//! driven either by one thread each (mirroring the one-process-per-simulator
//! architecture of the paper) or cooperatively by a sequential executor on a
//! single core. Both executors live in the `simbricks-runner` crate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::barrier::BarrierMember;
use crate::channel::ChannelEnd;
use crate::event::{EventId, EventQueue};
use crate::log::EventLog;
use crate::pktbuf::{BufPool, PktBuf};
use crate::slot::{MsgType, OwnedMsg};
use crate::snap::{SnapError, SnapReader, SnapResult, SnapWriter, Snapshot};
use crate::stats::KernelStats;
use crate::sync::SyncPort;
use crate::time::SimTime;

/// Index of a channel attached to a kernel (assigned by [`Kernel::add_port`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub usize);

/// What a blocked kernel is waiting for, reported by [`Kernel::step`] so
/// executors can park idle kernels instead of spin-polling them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WakeHint {
    /// Earliest virtual time at which the kernel has a locally-known
    /// obligation (pending message, timer, or SYNC emission) it will act on
    /// once its peers permit; [`SimTime::MAX`] when it is purely
    /// input-driven (nothing scheduled, waiting for messages).
    pub next_event: SimTime,
    /// True when the kernel cannot possibly make progress until a new
    /// message arrives on one of its ports. A parkable kernel need not be
    /// stepped again until [`Kernel::has_new_input`] reports fresh input
    /// (or an external stop is requested). Kernels under global-barrier
    /// synchronization or wall-clock pacing are never parkable: they can be
    /// unblocked by events no port will signal.
    pub parkable: bool,
}

/// Outcome of one [`Kernel::step`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// At least one event was processed or the clock advanced.
    Progressed,
    /// No progress possible until a peer sends a promise; the [`WakeHint`]
    /// tells the executor when and whether to try again.
    Blocked(WakeHint),
    /// The component is quiesced at a checkpoint pause time (see
    /// [`Kernel::set_pause_at`]): every event strictly below the pause time
    /// has been processed, nothing at or beyond it has, and a promise
    /// covering the pause time has been sent to every peer. The kernel stays
    /// paused (polling its ports so in-flight messages drain) until
    /// [`Kernel::clear_pause`].
    Paused,
    /// The component reached the end of its simulation.
    Finished,
}

/// A declared lookahead for hierarchical sync: a bound, asserted by the
/// model, on how quickly an input can cause a send on a given port. The
/// kernel turns the declaration into wider promises; a false declaration
/// breaks causality, so each flavor states its obligation precisely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncLookahead {
    /// Sends on this port are never an immediate reaction to input on the
    /// *same* port (no hairpin): every input-triggered send is caused by an
    /// input on a different port, at least the carried delay earlier.
    /// Store-and-forward switches satisfy this with a delay of zero — a
    /// frame is never echoed to its ingress port. Promises widen through
    /// the exclude-one minimum of the other ports' input horizons.
    ExcludeSelf(SimTime),
    /// Every input-triggered send on this port — including replies to input
    /// on the port itself — happens at least the carried delay after the
    /// triggering input (a modeled reaction latency). Promises widen
    /// through the minimum over *all* ports' input horizons plus the delay,
    /// which is the classic Chandy–Misra lookahead and the only sound
    /// declaration for a component whose single link both receives requests
    /// and carries the replies.
    Reaction(SimTime),
}

/// A component simulator's behaviour.
///
/// All methods receive the kernel so the model can consult the clock, send
/// messages, schedule timers, write the log, or terminate the simulation.
pub trait Model: Send {
    /// Called once before the first event, at virtual time zero.
    fn init(&mut self, _k: &mut Kernel) {}

    /// A data message arrived on `port` and is due for processing now.
    fn on_msg(&mut self, k: &mut Kernel, port: PortId, msg: OwnedMsg);

    /// A timer scheduled through [`Kernel::schedule_at`] fired.
    fn on_timer(&mut self, _k: &mut Kernel, _token: u64) {}

    /// Called once when the simulation ends (end time reached or quit).
    ///
    /// Under hierarchical sync, widened promises may already cover times
    /// beyond `now` when this runs, so `finish` must not send data messages
    /// (none of the built-in models do); emit final state through the log or
    /// statistics instead.
    fn finish(&mut self, _k: &mut Kernel) {}

    /// Declared forwarding lookahead for hierarchical sync (`None`, the
    /// default, declares nothing). The kernel uses a declaration to widen
    /// the port's promises beyond `now + Δ` — see [`SyncLookahead`] for the
    /// two declaration flavors and the obligations each one places on the
    /// model. Sends performed by timers the model has already scheduled are
    /// always covered separately (the widening takes the earliest pending
    /// timer into account), so declarations only constrain input-triggered
    /// sends.
    fn sync_lookahead(&self) -> Option<SyncLookahead> {
        None
    }

    /// Per-port refinement of [`Model::sync_lookahead`]: the declaration for
    /// sends on `port` specifically. The default delegates to the model-wide
    /// declaration; override it when ports differ — a NIC, for example, can
    /// declare zero exclude-self lookahead on its Ethernet port (frames
    /// leave only in response to DMA timers and doorbells on the PCIe side)
    /// while staying undeclared on PCIe, where a doorbell write can hairpin
    /// into an immediate DMA read on the same link.
    fn sync_lookahead_on(&self, port: PortId) -> Option<SyncLookahead> {
        let _ = port;
        self.sync_lookahead()
    }

    /// Checkpoint support: append this model's dynamic state to `w` (see
    /// [`Snapshot`]). The default declines, so checkpointing an experiment
    /// that contains a model without snapshot support fails with a clear
    /// error instead of silently losing state.
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        let _ = w;
        Err(SnapError::Unsupported(
            "model does not implement Model::snapshot".into(),
        ))
    }

    /// Checkpoint support: load state written by [`Model::snapshot`] back
    /// into this freshly rebuilt model.
    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        let _ = r;
        Err(SnapError::Unsupported(
            "model does not implement Model::restore".into(),
        ))
    }
}

/// The per-component simulation kernel.
pub struct Kernel {
    name: String,
    now: SimTime,
    end: SimTime,
    ports: Vec<SyncPort>,
    timers: EventQueue<u64>,
    barrier: Option<BarrierMember>,
    log: EventLog,
    stats: KernelStats,
    started: bool,
    finished: bool,
    quit: bool,
    /// Checkpoint pause: virtual time at which the kernel must quiesce (all
    /// events strictly below processed, nothing at or beyond touched).
    pause_at: Option<SimTime>,
    /// Set once the kernel reached its pause time and emitted the pause
    /// promise on every port.
    paused: bool,
    stop_flag: Option<Arc<AtomicBool>>,
    /// Emulation-mode wall-clock anchor: virtual nanoseconds the clock may
    /// advance per elapsed wall-clock nanosecond. `None` (the default) leaves
    /// clock advancement purely event-driven (synchronized simulation).
    wall_scale: Option<f64>,
    wall_start: Option<std::time::Instant>,
    /// Per-component packet-buffer arena, shared by every port attached to
    /// this kernel (and available to the model through [`Kernel::pool`]).
    pool: BufPool,
    /// Hierarchical sync domains enabled (see [`Kernel::enable_hier_sync`]).
    hier: bool,
    /// Per-port domain tag (parallel to `ports`); `u32::MAX` means
    /// "unassigned", grouped automatically by link-latency class.
    port_domain: Vec<u32>,
    /// Sealed domain membership: indices into `ports`, one vec per domain,
    /// built lazily on the first hierarchical step.
    domains: Vec<Vec<usize>>,
    domains_built: bool,
    /// Per-port forwarding-lookahead declarations (parallel to `ports`),
    /// captured from [`Model::sync_lookahead_on`] alongside the domain build.
    port_look: Vec<Option<SyncLookahead>>,
}

impl Kernel {
    /// Create a kernel that simulates until virtual time `end` (exclusive).
    pub fn new(name: impl Into<String>, end: SimTime) -> Self {
        Kernel {
            name: name.into(),
            now: SimTime::ZERO,
            end,
            ports: Vec::new(),
            timers: EventQueue::new(),
            barrier: None,
            log: EventLog::disabled(),
            stats: KernelStats::default(),
            started: false,
            finished: false,
            quit: false,
            pause_at: None,
            paused: false,
            stop_flag: None,
            wall_scale: None,
            wall_start: None,
            pool: BufPool::new(),
            hier: false,
            port_domain: Vec::new(),
            domains: Vec::new(),
            domains_built: false,
            port_look: Vec::new(),
        }
    }

    /// Attach a channel endpoint; returns the port id used in [`Model::on_msg`].
    /// The endpoint's receive side is rebased onto this kernel's buffer pool
    /// so pool counters aggregate per component.
    pub fn add_port(&mut self, mut chan: ChannelEnd) -> PortId {
        chan.set_pool(self.pool.clone());
        self.ports.push(SyncPort::new(chan));
        self.port_domain.push(u32::MAX);
        PortId(self.ports.len() - 1)
    }

    /// Switch this kernel to hierarchical sync domains: SYNC emission is
    /// batched per domain epoch instead of per port, promises are widened
    /// through the earliest local cause of a future send (next timer,
    /// earliest uncleared input, plus a declared [`Model::sync_lookahead`]),
    /// and emissions that would not raise the peer's horizon are suppressed.
    /// Simulation results are bit-identical to the flat protocol — only the
    /// volume and cadence of SYNC messages changes.
    pub fn enable_hier_sync(&mut self) {
        self.hier = true;
        for p in &mut self.ports {
            p.set_hier(true);
        }
    }

    /// Whether hierarchical sync domains are enabled.
    pub fn hier_sync_enabled(&self) -> bool {
        self.hier
    }

    /// Assign `port` to the sync domain `domain` (hierarchical mode only).
    /// Ports left unassigned are grouped automatically by link-latency class
    /// when the domains are sealed on the first step.
    pub fn set_port_domain(&mut self, port: PortId, domain: u32) {
        self.port_domain[port.0] = domain;
        self.domains_built = false;
    }

    /// Raise the adaptive sync-interval cap of `port` beyond the default
    /// link latency Δ (hierarchical mode; the runner computes a static
    /// multi-hop path floor per port from the channel graph).
    pub fn set_port_sync_cap(&mut self, port: PortId, cap: SimTime) {
        self.ports[port.0].set_sync_cap(cap);
    }

    /// Put this kernel under epoch-based global-barrier synchronization
    /// (dist-gem5 baseline). Channels should then be created unsynchronized.
    pub fn set_barrier(&mut self, member: BarrierMember) {
        self.barrier = Some(member);
    }

    /// Enable timestamped event logging (disabled by default).
    pub fn enable_log(&mut self) {
        self.log = EventLog::enabled();
    }

    /// Enable event logging in fingerprint-only mode: entries are folded
    /// into per-epoch FNV accumulators instead of being materialized, so
    /// memory stays O(run length / epoch) — the mode the replay bisector
    /// records with.
    pub fn enable_fingerprint_log(&mut self, epoch: SimTime) {
        self.log = EventLog::fingerprint_only(epoch);
    }

    /// Install a shared stop flag; the orchestrator uses this to terminate
    /// unsynchronized components that have no natural end.
    pub fn set_stop_flag(&mut self, flag: Arc<AtomicBool>) {
        self.stop_flag = Some(flag);
    }

    /// Anchor this component's virtual clock to the wall clock (emulation
    /// mode, §2 "Comparison to Emulation"): the clock may advance at most
    /// `virtual_per_wall` virtual nanoseconds per elapsed wall-clock
    /// nanosecond. Without synchronization this keeps free-running components
    /// loosely aligned — exactly the guarantee (and the accuracy limitation)
    /// real emulation has. 1.0 means real time.
    pub fn set_wall_clock(&mut self, virtual_per_wall: f64) {
        self.wall_scale = Some(virtual_per_wall.max(f64::MIN_POSITIVE));
    }

    // ----- API used by models ------------------------------------------------

    /// The component's name (as given to [`Kernel::new`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time of this component.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Configured end of simulation.
    pub fn end_time(&self) -> SimTime {
        self.end
    }

    /// Number of channel endpoints attached to this kernel.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Link latency Δ of the given port.
    pub fn port_latency(&self, port: PortId) -> SimTime {
        self.ports[port.0].latency()
    }

    /// Connection id of the channel behind the given port (shared with the
    /// peer endpoint; used by the runner to reconstruct the channel graph).
    pub fn port_conn_id(&self, port: PortId) -> u64 {
        self.ports[port.0].conn_id()
    }

    /// Whether the given port's channel participates in synchronization.
    pub fn port_sync_enabled(&self, port: PortId) -> bool {
        self.ports[port.0].sync_enabled()
    }

    /// Send a data message on `port`; it will be processed by the peer at
    /// `now + Δ`.
    pub fn send(&mut self, port: PortId, ty: MsgType, payload: &[u8]) {
        let now = self.now;
        self.ports[port.0].send_data(now, ty, payload);
    }

    /// Send a data message whose payload the model already owns as a
    /// [`PktBuf`]; on queue backpressure the buffer moves into the port's
    /// outbox without a copy.
    pub fn send_buf(&mut self, port: PortId, ty: MsgType, payload: PktBuf) {
        let now = self.now;
        self.ports[port.0].send_data_buf(now, ty, payload);
    }

    /// This component's packet-buffer arena. Models allocate transmit
    /// buffers from it so the whole component shares one freelist (and one
    /// set of pool counters in [`KernelStats`]).
    pub fn pool(&self) -> &BufPool {
        &self.pool
    }

    /// Schedule a timer at absolute virtual time `at`.
    pub fn schedule_at(&mut self, at: SimTime, token: u64) -> EventId {
        debug_assert!(at >= self.now, "cannot schedule a timer in the past");
        self.timers.schedule(at.max(self.now), token)
    }

    /// Schedule a timer `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, token: u64) -> EventId {
        let at = self.now.saturating_add(delay);
        self.timers.schedule(at, token)
    }

    /// Cancel a previously scheduled timer.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.timers.cancel(id)
    }

    /// Terminate this component's simulation at the current time.
    pub fn quit(&mut self) {
        self.quit = true;
    }

    /// Record a timestamped log entry (no-op unless logging is enabled).
    #[inline]
    pub fn log(&mut self, tag: &'static str, a: u64, b: u64) {
        let now = self.now;
        self.log.record(now, tag, a, b);
    }

    /// Whether event logging is enabled.
    pub fn log_enabled(&self) -> bool {
        self.log.is_enabled()
    }

    // ----- results ------------------------------------------------------------

    /// Run statistics accumulated so far (complete once finished). Pool
    /// counters always reflect the live arena.
    pub fn stats(&self) -> KernelStats {
        let mut s = self.stats;
        s.absorb_pool(self.pool.stats());
        s
    }

    /// The component's timestamped event log.
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// Mutable access to the event log (the replay layer uses this to switch
    /// a restored log's recording mode before stepping on).
    pub fn event_log_mut(&mut self) -> &mut EventLog {
        &mut self.log
    }

    /// Take ownership of the event log, leaving an empty one behind.
    pub fn take_event_log(&mut self) -> EventLog {
        std::mem::take(&mut self.log)
    }

    /// Number of received-but-not-yet-delivered messages queued on the given
    /// port — the instantaneous link queue depth the replay inspector shows.
    pub fn port_pending(&self, port: PortId) -> usize {
        self.ports[port.0].pending_len()
    }

    /// One-line synchronization diagnostic for `port`: incoming horizon,
    /// standing outgoing promise, sync timer, earliest pending input, and
    /// flush/deferral flags. Quiesce-failure and deadlock reports embed this
    /// so a stuck pairwise wait is attributable without a debugger.
    pub fn port_sync_describe(&self, port: PortId) -> String {
        let p = &self.ports[port.0];
        format!(
            "horizon={} promised={} sync_due={} pending={} flushed={} raw={} deferred={}",
            p.horizon(),
            p.last_promise(),
            match p.next_sync_due() {
                Some(t) => t.to_string(),
                None => "-".into(),
            },
            match p.next_pending() {
                Some(t) => t.to_string(),
                None => "-".into(),
            },
            p.flushed(),
            p.has_raw_input(),
            p.has_deferred(),
        )
    }

    /// Whether the component has reached the end of its simulation.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Whether any port has a raw, not-yet-polled incoming message. This is a
    /// cheap peek at the head slot of each incoming queue; executors use it to
    /// decide when a parked kernel (see [`WakeHint::parkable`]) must be woken.
    pub fn has_new_input(&self) -> bool {
        self.ports.iter().any(|p| p.has_raw_input())
    }

    // ----- checkpointing --------------------------------------------------------

    /// Arm a checkpoint pause at virtual time `t` (exclusive: every event
    /// strictly below `t` is processed before pausing, nothing at or beyond
    /// `t` is touched). [`Kernel::step`] returns [`StepOutcome::Paused`]
    /// once quiesced; [`Kernel::clear_pause`] resumes.
    pub fn set_pause_at(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "cannot pause in the past");
        self.pause_at = Some(t);
    }

    /// Resume after a checkpoint pause (or disarm one that never fired).
    pub fn clear_pause(&mut self) {
        self.pause_at = None;
        self.paused = false;
    }

    /// Whether the kernel is currently quiesced at its pause time.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Poll every port (drain the shared queues, flush buffered sends)
    /// without running the model — used while quiescing for a checkpoint so
    /// in-flight messages settle into the ports' pending buffers.
    pub fn checkpoint_poll(&mut self) {
        for p in &mut self.ports {
            p.poll();
        }
    }

    /// Whether this kernel is fully quiesced for a checkpoint at time `t`:
    /// paused (or already finished), with every synchronized port flushed,
    /// drained, and holding the peer's `t + Δ` pause promise, so all
    /// in-flight channel state lives in the ports' pending buffers.
    pub fn quiesced_at(&self, t: SimTime) -> bool {
        (self.paused || self.finished) && self.ports.iter().all(|p| p.quiesced_at(t))
    }

    /// Serialize the kernel's complete dynamic state: clock, lifecycle
    /// flags, timer queue (with tie-break sequence numbers), per-port
    /// synchronization state including in-flight messages, the event log,
    /// and statistics. Static configuration (name, end time, port count and
    /// channel parameters) is written only for validation — restore rebuilds
    /// it from the experiment definition and rejects mismatches.
    pub fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.u8(1); // kernel record version
        w.str(&self.name);
        w.time(self.now);
        w.time(self.end);
        w.bool(self.started);
        w.bool(self.finished);
        w.bool(self.quit);
        self.stats.snapshot(w)?;
        self.log.snapshot(w)?;
        self.timers.snapshot_with(w, |tok, w| w.u64(*tok))?;
        w.usize(self.ports.len());
        for p in &self.ports {
            p.snapshot(w)?;
        }
        Ok(())
    }

    /// Load state written by [`Kernel::snapshot`] into this freshly rebuilt
    /// kernel. The kernel must have been reconstructed with the same name,
    /// end time, and port topology; mismatches are rejected with a clear
    /// error rather than silently misrestoring.
    pub fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        let ver = r.u8()?;
        if ver != 1 {
            return Err(SnapError::Version {
                found: ver as u16,
                expected: 1,
            });
        }
        let name = r.str()?;
        if name != self.name {
            return Err(SnapError::Corrupt(format!(
                "component name mismatch: snapshot has {name:?}, experiment built {:?}",
                self.name
            )));
        }
        self.now = r.time()?;
        let end = r.time()?;
        if end != self.end {
            return Err(SnapError::Corrupt(format!(
                "component {name:?}: end time mismatch (snapshot {end}, built {})",
                self.end
            )));
        }
        self.started = r.bool()?;
        self.finished = r.bool()?;
        self.quit = r.bool()?;
        self.stats.restore(r)?;
        self.log.restore(r)?;
        self.timers = EventQueue::restore_with(r, |r| r.u64())?;
        let nports = r.usize()?;
        if nports != self.ports.len() {
            return Err(SnapError::Corrupt(format!(
                "component {name:?}: port count mismatch (snapshot {nports}, built {})",
                self.ports.len()
            )));
        }
        for p in &mut self.ports {
            p.restore(r)?;
        }
        self.pause_at = None;
        self.paused = false;
        Ok(())
    }

    // ----- execution ------------------------------------------------------------

    /// Run to completion on the current thread, yielding whenever blocked.
    /// This is the one-component-per-thread execution mode.
    pub fn run(&mut self, model: &mut dyn Model) -> KernelStats {
        loop {
            match self.step(model, 4096) {
                StepOutcome::Finished => break,
                StepOutcome::Progressed => {}
                StepOutcome::Blocked(_) => std::thread::yield_now(),
                // Checkpoint pauses are orchestrated by the runner's
                // cooperative quiesce loop; a free-running thread simply
                // stops here and the orchestrator takes over.
                StepOutcome::Paused => break,
            }
        }
        self.stats
    }

    /// Make bounded progress: process at most `max_steps` clock advances.
    /// Never blocks; returns [`StepOutcome::Blocked`] when waiting on peers.
    pub fn step(&mut self, model: &mut dyn Model, max_steps: usize) -> StepOutcome {
        if self.finished {
            return StepOutcome::Finished;
        }
        if self.paused {
            // Quiesced at the pause time: keep draining/flushing the ports
            // (peers may still be sending their pre-pause messages) but run
            // nothing model-visible.
            for p in &mut self.ports {
                p.poll();
            }
            return StepOutcome::Paused;
        }
        if !self.started {
            self.started = true;
            model.init(self);
            let now = self.now;
            for p in &mut self.ports {
                p.maybe_send_sync(now);
            }
            // Initialization may have sent messages (e.g. a device announcing
            // itself) even if nothing is deliverable locally yet; report it as
            // progress so round-robin executors keep going.
            return StepOutcome::Progressed;
        }
        if self.wall_scale.is_some() && self.wall_start.is_none() {
            // Never active in simulation mode.
            #[allow(clippy::disallowed_methods)]
            {
                // det-ok: emulation pacing throttles virtual time against the host clock by definition
                self.wall_start = Some(std::time::Instant::now());
            }
        }
        // Emulation mode: how far the wall clock currently allows the virtual
        // clock to advance.
        let wall_limit = match (self.wall_scale, self.wall_start) {
            // det-ok: wall-pacing limit only gates delivery, never timestamps.
            (Some(scale), Some(t0)) => Some(SimTime::from_ns(
                (t0.elapsed().as_nanos() as f64 * scale) as u64,
            )),
            _ => None,
        };

        if self.hier && !self.domains_built {
            // Lookahead declarations are static per model, so capture them
            // once alongside the domain build (they only matter for
            // hierarchical promise widening).
            self.port_look = (0..self.ports.len())
                .map(|i| model.sync_lookahead_on(PortId(i)))
                .collect();
            self.build_domains();
        }

        let mut progressed = false;
        for _ in 0..max_steps {
            if self.quit || self.stop_requested() {
                self.do_finish(model);
                return StepOutcome::Finished;
            }

            for p in &mut self.ports {
                p.poll();
            }

            // Unsynchronized channels deliver immediately (emulation mode).
            if self.deliver_unsync(model) {
                progressed = true;
            }
            if self.quit {
                self.do_finish(model);
                return StepOutcome::Finished;
            }

            // Strict bound for model-visible events: every synchronized peer
            // must have promised a time strictly greater than the event time,
            // which guarantees all same-time messages have already arrived
            // and keeps delivery order deterministic.
            let mut bound = SimTime::MAX;
            if self.hier {
                // O(domains) fold: one aggregate horizon per sync domain
                // (every synchronized port belongs to exactly one domain).
                for members in &self.domains {
                    let mut dh = SimTime::MAX;
                    for &i in members {
                        dh = dh.min(self.ports[i].horizon());
                    }
                    bound = bound.min(dh);
                }
            } else {
                for p in &self.ports {
                    if p.sync_enabled() {
                        bound = bound.min(p.horizon());
                    }
                }
            }
            if let Some(b) = &self.barrier {
                bound = bound.min(b.horizon());
            }

            // Earliest model-visible event (pending messages and timers).
            let mut t_model = SimTime::MAX;
            if let Some(t) = self.timers.next_time() {
                t_model = t_model.min(t);
            }
            for p in &self.ports {
                if p.sync_enabled() {
                    if let Some(t) = p.next_pending() {
                        t_model = t_model.min(t);
                    }
                }
            }

            // Earliest kernel-internal obligation (SYNC emission).
            let mut t_sync = SimTime::MAX;
            for p in &self.ports {
                if let Some(t) = p.next_sync_due() {
                    t_sync = t_sync.min(t);
                }
            }

            // End of simulation: permitted once nothing model-visible remains
            // below `end` and the peers have promised at least `end`. A
            // component with an open-ended horizon (`end == MAX`, typical for
            // unsynchronized emulation) never finishes this way; it waits for
            // messages until its peers disappear or the orchestrator stops it.
            if bound >= self.end
                && t_model >= self.end
                && self.pause_at.is_none_or(|p| p >= self.end)
            {
                if !self.end.is_max() {
                    self.now = self.end;
                    self.do_finish(model);
                    return StepOutcome::Finished;
                }
                let all_peers_gone = !self.ports.is_empty()
                    && self
                        .ports
                        .iter()
                        .all(|p| p.peer_gone() && p.next_pending().is_none());
                if all_peers_gone && self.timers.is_empty() {
                    self.do_finish(model);
                    return StepOutcome::Finished;
                }
            }

            // Checkpoint pause: once every peer has promised the pause time
            // and nothing model-visible remains strictly below it, advance
            // the clock to exactly the pause time, promise `pause + Δ` to
            // every peer (so they can quiesce too), and stop without
            // finishing. Events at or beyond the pause time stay queued —
            // they belong to the resumed run.
            if let Some(pause) = self.pause_at {
                if bound >= pause && t_model >= pause {
                    if pause > self.now {
                        self.now = pause;
                        self.stats.advances += 1;
                    }
                    self.paused = true;
                    let now = self.now;
                    for p in &mut self.ports {
                        p.emit_promise(now);
                        p.poll();
                    }
                    return StepOutcome::Paused;
                }
            }
            let pause_limit = self.pause_at.unwrap_or(SimTime::MAX);

            let wall_ok = |t: SimTime| wall_limit.is_none_or(|w| t <= w);
            let can_model =
                t_model < bound && t_model < self.end && t_model < pause_limit && wall_ok(t_model);
            let can_sync =
                t_sync <= bound && t_sync < self.end && t_sync < pause_limit && wall_ok(t_sync);

            let target = match (can_model, can_sync) {
                (true, true) => t_model.min(t_sync),
                (true, false) => t_model,
                (false, true) => t_sync,
                (false, false) => {
                    // Try to pass the global barrier, if any; otherwise we are
                    // genuinely waiting for a peer promise. Passing an epoch
                    // boundary counts as progress: the component's time bound
                    // advanced even if no model event fired.
                    if let Some(b) = &mut self.barrier {
                        if b.try_pass() {
                            self.stats.barrier_waits = b.waits();
                            progressed = true;
                            continue;
                        }
                        self.stats.barrier_waits = b.waits();
                    }
                    if self.hier {
                        // Null-message backstop: a blocked kernel forwards any
                        // horizon gain its inputs imply before parking. This
                        // is what makes cadences wider than Δ deadlock-free:
                        // whenever a cycle of kernels is simultaneously
                        // blocked, at least one port has a promise gain
                        // (otherwise the per-link latencies telescope into a
                        // contradiction), so horizons keep rising.
                        self.emit_hier_promises(true);
                    }
                    self.stats.blocked_polls += 1;
                    return if progressed {
                        StepOutcome::Progressed
                    } else {
                        StepOutcome::Blocked(WakeHint {
                            next_event: t_model.min(t_sync),
                            // Barrier members are unblocked by epoch advances
                            // and wall-clock-paced kernels by the passage of
                            // real time; neither arrives as port input, so
                            // such kernels must keep being polled. A port with
                            // a backed-up outbox must also keep being polled:
                            // flushing happens in poll(), and a peer may be
                            // waiting on exactly those messages.
                            parkable: self.barrier.is_none()
                                && wall_limit.is_none()
                                && self.ports.iter().all(|p| p.flushed()),
                        })
                    };
                }
            };

            if target > self.now {
                self.now = target;
                self.stats.advances += 1;
            }
            progressed = true;

            // Emit any due SYNC messages at the new time. When this advance
            // was (at least partly) driven by a SYNC obligation, batch: also
            // emit on sibling ports whose SYNC becomes due within their
            // coalescing slack, so staggered per-port timers collapse into
            // one wakeup instead of several closely spaced advances.
            let now = self.now;
            let sync_driven = can_sync && t_sync <= now;
            if self.hier {
                self.emit_hier_promises(false);
            } else {
                for p in &mut self.ports {
                    let slack = if sync_driven {
                        p.coalesce_slack()
                    } else {
                        SimTime::ZERO
                    };
                    p.maybe_send_sync_batched(now, slack);
                }
            }

            // Deliver model-visible events due at the new time.
            if can_model && t_model <= self.now {
                self.deliver_sync_msgs(model);
                self.fire_timers(model);
            }
        }
        StepOutcome::Progressed
    }

    /// Seal hierarchical sync domains: synchronized ports with an explicit
    /// tag group by tag, the rest group by link-latency class. Deterministic
    /// (sorted by tag, then latency), so domain order never depends on
    /// execution timing.
    fn build_domains(&mut self) {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(u32, u64), Vec<usize>> = BTreeMap::new();
        for (i, p) in self.ports.iter().enumerate() {
            if !p.sync_enabled() {
                continue;
            }
            let key = match self.port_domain[i] {
                u32::MAX => (u32::MAX, p.latency().as_ps()),
                tag => (tag, 0),
            };
            groups.entry(key).or_default().push(i);
        }
        self.domains = groups.into_values().collect();
        self.domains_built = true;
    }

    /// Hierarchical SYNC emission at the current time.
    ///
    /// Every promise is widened through the earliest cause of a future send:
    /// the next local timer, plus the earliest input no peer has cleared yet
    /// (any future model invocation happens at or after that time, so any
    /// send it performs carries at least that time plus Δ). A port with a
    /// declared lookahead ([`Model::sync_lookahead_on`]) widens further
    /// according to the declaration flavor — see [`SyncLookahead`].
    /// Widening requires every attached channel to be synchronized — an
    /// unsynchronized input could trigger a send at any time.
    ///
    /// Emission is batched per domain epoch: once any member of a domain is
    /// due, every member gets an emission attempt (early members count as
    /// coalesced, gain-less members as suppressed). With `blocked` set the
    /// due times are ignored and only ports whose promise would actually
    /// rise emit — the liveness backstop that keeps a blocked fabric's
    /// horizons climbing.
    fn emit_hier_promises(&mut self, blocked: bool) {
        let now = self.now;
        let widen_ok = self.ports.iter().all(|p| p.sync_enabled());
        let t_timer = self.timers.next_time().unwrap_or(SimTime::MAX);
        // min1/min2 over per-port input floors, so the exclude-one minimum
        // under a declared lookahead costs one pass instead of O(ports²).
        let (mut min1, mut min2, mut arg1) = (SimTime::MAX, SimTime::MAX, usize::MAX);
        if widen_ok {
            for (i, p) in self.ports.iter().enumerate() {
                let f = p.horizon().min(p.next_pending().unwrap_or(SimTime::MAX));
                if f < min1 {
                    min2 = min1;
                    min1 = f;
                    arg1 = i;
                } else if f < min2 {
                    min2 = f;
                }
            }
        }
        let port_look = &self.port_look;
        let base_for = |i: usize| -> SimTime {
            if !widen_ok {
                return now;
            }
            let inputs = match port_look.get(i).copied().flatten() {
                // Exclude-one minimum plus forwarding delay: sends on port i
                // are caused by inputs on other ports (or timers).
                Some(SyncLookahead::ExcludeSelf(l)) => {
                    let m = if arg1 == i { min2 } else { min1 };
                    m.saturating_add(l)
                }
                // Reaction delay: any input (same port included) can cause a
                // send, but only after the declared latency.
                Some(SyncLookahead::Reaction(d)) => min1.saturating_add(d),
                // No declaration: a send can follow any input, including one
                // on the same port, immediately.
                None => min1,
            };
            t_timer.min(inputs).max(now)
        };
        if blocked {
            for i in 0..self.ports.len() {
                let ts = base_for(i).saturating_add(self.ports[i].latency());
                if ts > self.ports[i].last_promise() {
                    self.ports[i].send_promise(now, ts, false);
                }
            }
            return;
        }
        for d in 0..self.domains.len() {
            let epoch_due = self.domains[d]
                .iter()
                .any(|&i| self.ports[i].next_sync_due().is_some_and(|t| t <= now));
            if !epoch_due {
                continue;
            }
            for m in 0..self.domains[d].len() {
                let i = self.domains[d][m];
                let own_due = self.ports[i].next_sync_due().is_some_and(|t| t <= now);
                let ts = base_for(i).saturating_add(self.ports[i].latency());
                // Gain gate: emit only when the promise is worth a message —
                // at least half the port's current idle interval beyond the
                // standing promise. A due port with a stalled-but-nonzero
                // gain defers (the gain accumulates; the peer holds the
                // previous promise and cannot be starved within the cap).
                let floor = self.ports[i]
                    .last_promise()
                    .saturating_add(self.ports[i].coalesce_slack());
                if own_due {
                    if ts > floor {
                        self.ports[i].send_promise(now, ts, false);
                    } else {
                        self.ports[i].defer_sync(now);
                    }
                } else if ts > floor {
                    // Sibling pulled into the epoch early: its own due timer
                    // stays in place unless the widened promise clears the
                    // gate. Without the gate every domain member re-promises
                    // at the cadence of the *finest* port in the domain and
                    // the multi-hop cap never pays off.
                    self.ports[i].send_promise(now, ts, true);
                }
            }
        }
    }

    fn stop_requested(&self) -> bool {
        self.stop_flag
            .as_ref()
            .map(|f| f.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    fn deliver_unsync(&mut self, model: &mut dyn Model) -> bool {
        let mut any = false;
        for i in 0..self.ports.len() {
            if self.ports[i].sync_enabled() {
                continue;
            }
            while let Some(msg) = self.ports[i].pop_due(SimTime::MAX) {
                self.stats.msgs_delivered += 1;
                any = true;
                model.on_msg(self, PortId(i), msg);
                if self.quit {
                    return any;
                }
            }
        }
        any
    }

    fn deliver_sync_msgs(&mut self, model: &mut dyn Model) {
        for i in 0..self.ports.len() {
            if !self.ports[i].sync_enabled() {
                continue;
            }
            loop {
                let now = self.now;
                let msg = match self.ports[i].pop_due(now) {
                    Some(m) => m,
                    None => break,
                };
                self.stats.msgs_delivered += 1;
                model.on_msg(self, PortId(i), msg);
                if self.quit {
                    return;
                }
            }
        }
    }

    fn fire_timers(&mut self, model: &mut dyn Model) {
        loop {
            let now = self.now;
            let (_, token) = match self.timers.pop_due(now) {
                Some(e) => e,
                None => break,
            };
            self.stats.timers_fired += 1;
            model.on_timer(self, token);
            if self.quit {
                return;
            }
        }
    }

    fn do_finish(&mut self, model: &mut dyn Model) {
        if self.finished {
            return;
        }
        model.finish(self);
        for p in &mut self.ports {
            p.poll();
            p.finalize();
            // Best effort: push buffered messages out so peers see them.
            p.poll();
        }
        if let Some(b) = &mut self.barrier {
            b.depart();
            self.stats.barrier_waits = b.waits();
        }
        self.finished = true;
        self.stats.final_time = self.now;
        let port_stats: Vec<_> = self.ports.iter().map(|p| p.stats()).collect();
        for ps in port_stats {
            self.stats.absorb_port(ps);
        }
        self.stats.absorb_pool(self.pool.stats());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{channel_pair, ChannelParams};

    /// A test model that sends `count` messages spaced `gap` apart and records
    /// every message it receives.
    struct Pinger {
        port: PortId,
        to_send: u64,
        gap: SimTime,
        received: Vec<(SimTime, Vec<u8>)>,
        seq: u64,
    }

    impl Pinger {
        fn new(port: PortId, to_send: u64, gap: SimTime) -> Self {
            Pinger {
                port,
                to_send,
                gap,
                received: Vec::new(),
                seq: 0,
            }
        }
    }

    impl Model for Pinger {
        fn init(&mut self, k: &mut Kernel) {
            if self.to_send > 0 {
                k.schedule_at(SimTime::ZERO, 0);
            }
        }
        fn on_msg(&mut self, k: &mut Kernel, _port: PortId, msg: OwnedMsg) {
            self.received.push((k.now().max(msg.timestamp), msg.data.to_vec()));
        }
        fn on_timer(&mut self, k: &mut Kernel, _token: u64) {
            let payload = self.seq.to_le_bytes();
            k.send(self.port, 1, &payload);
            self.seq += 1;
            if self.seq < self.to_send {
                k.schedule_in(self.gap, 0);
            }
        }
    }

    fn run_pair(end: SimTime, params: ChannelParams, na: u64, nb: u64) -> (Pinger, Pinger) {
        let (ca, cb) = channel_pair(params);
        let mut ka = Kernel::new("a", end);
        let mut kb = Kernel::new("b", end);
        let pa = ka.add_port(ca);
        let pb = kb.add_port(cb);
        let mut a = Pinger::new(pa, na, SimTime::from_ns(100));
        let mut b = Pinger::new(pb, nb, SimTime::from_ns(100));
        // Cooperative sequential execution of both components.
        loop {
            let ra = ka.step(&mut a, 64);
            let rb = kb.step(&mut b, 64);
            if ra == StepOutcome::Finished && rb == StepOutcome::Finished {
                break;
            }
            assert!(
                !(matches!(ra, StepOutcome::Blocked(_)) && matches!(rb, StepOutcome::Blocked(_))),
                "deadlock: both components blocked (a@{} b@{})",
                ka.now(),
                kb.now()
            );
        }
        (a, b)
    }

    #[test]
    fn synchronized_exchange_delivers_all_messages_at_correct_times() {
        let params = ChannelParams::default_sync();
        let (a, b) = run_pair(SimTime::from_us(100), params, 10, 10);
        assert_eq!(a.received.len(), 10);
        assert_eq!(b.received.len(), 10);
        // messages sent at i*100ns arrive at i*100ns + 500ns
        for (i, (t, data)) in b.received.iter().enumerate() {
            assert_eq!(*t, SimTime::from_ns(i as u64 * 100 + 500));
            assert_eq!(data, &(i as u64).to_le_bytes().to_vec());
        }
    }

    #[test]
    fn one_sided_traffic_still_progresses() {
        // b sends nothing: liveness must come from SYNC messages.
        let params = ChannelParams::default_sync();
        let (a, b) = run_pair(SimTime::from_us(50), params, 5, 0);
        assert_eq!(b.received.len(), 5);
        assert!(a.received.is_empty());
    }

    #[test]
    fn unsynchronized_exchange_delivers_messages() {
        let params = ChannelParams::default_unsync();
        let (ca, cb) = channel_pair(params);
        let mut ka = Kernel::new("a", SimTime::from_us(10));
        let mut kb = Kernel::new("b", SimTime::from_us(10));
        let pa = ka.add_port(ca);
        let pb = kb.add_port(cb);
        let mut a = Pinger::new(pa, 5, SimTime::from_ns(100));
        let mut b = Pinger::new(pb, 0, SimTime::from_ns(100));
        // Drive a to completion first, then b: emulation mode does not need
        // interleaving for correctness.
        while ka.step(&mut a, 64) != StepOutcome::Finished {}
        // b has no own events; it must still receive a's messages.
        for _ in 0..100 {
            if kb.step(&mut b, 64) == StepOutcome::Finished {
                break;
            }
        }
        assert_eq!(b.received.len(), 5);
    }

    #[test]
    fn different_latencies_respected() {
        let params = ChannelParams::default_sync().with_latency(SimTime::from_us(2));
        let (_a, b) = run_pair(SimTime::from_us(100), params, 3, 0);
        assert_eq!(b.received[0].0, SimTime::from_us(2));
        assert_eq!(b.received[1].0, SimTime::from_ns(2100));
    }

    #[test]
    fn stats_reflect_traffic_and_syncs() {
        let params = ChannelParams::default_sync();
        let (ca, cb) = channel_pair(params);
        let mut ka = Kernel::new("a", SimTime::from_us(20));
        let mut kb = Kernel::new("b", SimTime::from_us(20));
        let pa = ka.add_port(ca);
        let pb = kb.add_port(cb);
        let mut a = Pinger::new(pa, 4, SimTime::from_ns(100));
        let mut b = Pinger::new(pb, 0, SimTime::from_ns(100));
        loop {
            let ra = ka.step(&mut a, 64);
            let rb = kb.step(&mut b, 64);
            if ra == StepOutcome::Finished && rb == StepOutcome::Finished {
                break;
            }
        }
        let sa = ka.stats();
        let sb = kb.stats();
        assert_eq!(sa.data_sent, 4);
        assert_eq!(sb.data_received, 4);
        assert_eq!(sb.msgs_delivered, 4);
        assert!(sa.syncs_sent > 0, "sync messages keep the pair live");
        assert!(sb.syncs_sent > 0);
        assert_eq!(sa.final_time, SimTime::from_us(20));
        assert_eq!(sb.final_time, SimTime::from_us(20));
    }

    #[test]
    fn quit_ends_simulation_early() {
        struct Quitter;
        impl Model for Quitter {
            fn init(&mut self, k: &mut Kernel) {
                k.schedule_at(SimTime::from_ns(300), 7);
            }
            fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, _m: OwnedMsg) {}
            fn on_timer(&mut self, k: &mut Kernel, token: u64) {
                assert_eq!(token, 7);
                k.quit();
            }
        }
        let mut k = Kernel::new("q", SimTime::from_sec(1));
        let mut m = Quitter;
        let stats = k.run(&mut m);
        assert_eq!(stats.final_time, SimTime::from_ns(300));
        assert!(k.is_finished());
    }

    #[test]
    fn stop_flag_terminates_component() {
        struct Idle;
        impl Model for Idle {
            fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, _m: OwnedMsg) {}
        }
        // Unsynchronized idle component never finishes on its own, the
        // orchestrator stops it through the flag.
        let mut k = Kernel::new("idle", SimTime::MAX);
        let flag = Arc::new(AtomicBool::new(false));
        k.set_stop_flag(flag.clone());
        let mut m = Idle;
        // The first step only runs initialization; after that the idle
        // component blocks until the orchestrator raises the stop flag.
        assert_eq!(k.step(&mut m, 16), StepOutcome::Progressed);
        let outcome = k.step(&mut m, 16);
        match outcome {
            StepOutcome::Blocked(hint) => {
                assert!(hint.parkable, "idle synchronized kernel is parkable");
                assert_eq!(hint.next_event, SimTime::MAX, "purely input-driven");
            }
            other => panic!("expected Blocked, got {other:?}"),
        }
        flag.store(true, Ordering::Relaxed);
        assert_eq!(k.step(&mut m, 16), StepOutcome::Finished);
    }

    #[test]
    fn threaded_run_of_a_synchronized_pair() {
        let params = ChannelParams::default_sync();
        let (ca, cb) = channel_pair(params);
        let end = SimTime::from_us(200);
        let h = std::thread::spawn(move || {
            let mut k = Kernel::new("a", end);
            let p = k.add_port(ca);
            let mut m = Pinger::new(p, 50, SimTime::from_ns(200));
            k.run(&mut m);
            (k.stats(), m.received.len())
        });
        let mut k = Kernel::new("b", end);
        let p = k.add_port(cb);
        let mut m = Pinger::new(p, 50, SimTime::from_ns(200));
        k.run(&mut m);
        let (sa, a_rx) = h.join().unwrap();
        assert_eq!(a_rx, 50);
        assert_eq!(m.received.len(), 50);
        assert_eq!(sa.data_sent, 50);
    }

    #[test]
    fn timer_cancellation_prevents_firing() {
        struct C {
            fired: u64,
        }
        impl Model for C {
            fn init(&mut self, k: &mut Kernel) {
                let id = k.schedule_at(SimTime::from_ns(100), 1);
                k.schedule_at(SimTime::from_ns(200), 2);
                k.cancel(id);
            }
            fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, _m: OwnedMsg) {}
            fn on_timer(&mut self, _k: &mut Kernel, token: u64) {
                assert_eq!(token, 2);
                self.fired += 1;
            }
        }
        let mut k = Kernel::new("c", SimTime::from_us(1));
        let mut m = C { fired: 0 };
        k.run(&mut m);
        assert_eq!(m.fired, 1);
    }

    /// Checkpoint pause: both kernels of a synchronized pair quiesce at
    /// exactly the pause time, a snapshot round-trips their state into fresh
    /// kernels, and the resumed pair delivers the identical remaining
    /// messages at the identical virtual times.
    #[test]
    fn pause_snapshot_restore_resumes_identically() {
        use crate::snap::{SnapReader, SnapWriter};

        let params = ChannelParams::default_sync();
        let end = SimTime::from_us(100);
        let pause = SimTime::from_ns(550);

        // Reference: uninterrupted run.
        let (ra, rb) = run_pair(end, params, 10, 0);
        assert_eq!(rb.received.len(), 10);
        let _ = ra;

        // Checkpointed run: pause both kernels at `pause`.
        let (ca, cb) = channel_pair(params);
        let mut ka = Kernel::new("a", end);
        let mut kb = Kernel::new("b", end);
        let pa = ka.add_port(ca);
        let pb = kb.add_port(cb);
        let mut a = Pinger::new(pa, 10, SimTime::from_ns(100));
        let mut b = Pinger::new(pb, 0, SimTime::from_ns(100));
        ka.set_pause_at(pause);
        kb.set_pause_at(pause);
        for _ in 0..10_000 {
            let ra = ka.step(&mut a, 64);
            let rb = kb.step(&mut b, 64);
            if ra == StepOutcome::Paused && rb == StepOutcome::Paused {
                break;
            }
        }
        assert!(ka.is_paused() && kb.is_paused(), "both quiesced");
        assert_eq!(ka.now(), pause);
        assert_eq!(kb.now(), pause);
        // Drain in-flight messages into the ports' pending buffers.
        for _ in 0..16 {
            ka.checkpoint_poll();
            kb.checkpoint_poll();
        }
        assert!(ka.quiesced_at(pause) && kb.quiesced_at(pause));
        // b has received the messages due before 550 ns (sent at 0 ns,
        // arriving at 500 ns); the one arriving at 600 ns is in flight.
        assert_eq!(b.received.len(), 1);

        let mut wa = SnapWriter::new();
        ka.snapshot(&mut wa).unwrap();
        let mut wb = SnapWriter::new();
        kb.snapshot(&mut wb).unwrap();
        let (ba, bb) = (wa.into_vec(), wb.into_vec());

        // Restore into freshly built kernels over a fresh channel pair and
        // run to completion.
        let (ca2, cb2) = channel_pair(params);
        let mut ka2 = Kernel::new("a", end);
        let mut kb2 = Kernel::new("b", end);
        let pa2 = ka2.add_port(ca2);
        let pb2 = kb2.add_port(cb2);
        ka2.restore(&mut SnapReader::new(&ba)).unwrap();
        kb2.restore(&mut SnapReader::new(&bb)).unwrap();
        assert_eq!(ka2.now(), pause);
        // The models' own state carries over directly in this test.
        let mut a2 = Pinger { port: pa2, ..a };
        let mut b2 = Pinger { port: pb2, ..b };
        loop {
            let ra = ka2.step(&mut a2, 64);
            let rb = kb2.step(&mut b2, 64);
            if ra == StepOutcome::Finished && rb == StepOutcome::Finished {
                break;
            }
            assert!(
                !(matches!(ra, StepOutcome::Blocked(_)) && matches!(rb, StepOutcome::Blocked(_))),
                "deadlock after restore"
            );
        }
        assert_eq!(b2.received, rb.received, "continuation identical to uninterrupted run");
    }

    /// Regression (checkpoint hardening): [`Kernel::cancel`] of a timer
    /// that already fired, or of an [`EventId`] belonging to a different
    /// kernel, must be a safe no-op returning false — never cancelling an
    /// unrelated local timer.
    #[test]
    fn kernel_cancel_of_fired_or_foreign_timer_is_a_noop() {
        struct C {
            fired: Vec<u64>,
            first: Option<EventId>,
        }
        impl Model for C {
            fn init(&mut self, k: &mut Kernel) {
                self.first = Some(k.schedule_at(SimTime::from_ns(100), 1));
                k.schedule_at(SimTime::from_ns(200), 2);
            }
            fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, _m: OwnedMsg) {}
            fn on_timer(&mut self, k: &mut Kernel, token: u64) {
                self.fired.push(token);
                if token == 1 {
                    // Cancelling the timer that is firing right now (already
                    // popped) must not succeed or disturb the next one.
                    let id = self.first.unwrap();
                    assert!(!k.cancel(id), "already-fired timer cannot be cancelled");
                }
            }
        }
        // A sibling kernel whose EventId must be foreign to `k`.
        let mut other = Kernel::new("other", SimTime::from_us(1));
        let foreign = other.schedule_at(SimTime::from_ns(50), 9);

        let mut k = Kernel::new("c", SimTime::from_us(1));
        let mut m = C {
            fired: Vec::new(),
            first: None,
        };
        assert!(!k.cancel(foreign), "foreign EventId is unknown to this kernel");
        k.run(&mut m);
        assert_eq!(m.fired, vec![1, 2], "both local timers fired exactly once");
    }

    #[test]
    fn restore_rejects_mismatched_topology() {
        use crate::snap::{SnapError, SnapReader, SnapWriter};
        let k = Kernel::new("x", SimTime::from_us(1));
        let mut w = SnapWriter::new();
        k.snapshot(&mut w).unwrap();
        let blob = w.into_vec();
        // Wrong name.
        let mut other = Kernel::new("y", SimTime::from_us(1));
        assert!(matches!(
            other.restore(&mut SnapReader::new(&blob)),
            Err(SnapError::Corrupt(_))
        ));
        // Wrong end time.
        let mut other = Kernel::new("x", SimTime::from_us(2));
        assert!(matches!(
            other.restore(&mut SnapReader::new(&blob)),
            Err(SnapError::Corrupt(_))
        ));
        // Wrong port count.
        let (ca, _cb) = channel_pair(ChannelParams::default_sync());
        let mut other = Kernel::new("x", SimTime::from_us(1));
        other.add_port(ca);
        assert!(matches!(
            other.restore(&mut SnapReader::new(&blob)),
            Err(SnapError::Corrupt(_))
        ));
        // Truncated blob.
        let mut other = Kernel::new("x", SimTime::from_us(1));
        assert!(other.restore(&mut SnapReader::new(&blob[..blob.len() - 1])).is_err());
    }

    /// Hierarchical sync must deliver exactly the same messages at the same
    /// times as the flat protocol — with no more (and on idle stretches far
    /// fewer) SYNC messages. Both-blocked rounds are tolerated here: a
    /// blocked hierarchical kernel still emits widening promises (the
    /// liveness backstop), so the pair converges without either clock
    /// creeping through the idle tail at δ steps.
    #[test]
    fn hier_sync_pair_matches_flat_results_with_fewer_syncs() {
        let params = ChannelParams::default_sync();
        let end = SimTime::from_us(50);
        let run = |hier: bool| {
            let (ca, cb) = channel_pair(params);
            let mut ka = Kernel::new("a", end);
            let mut kb = Kernel::new("b", end);
            if hier {
                ka.enable_hier_sync();
                kb.enable_hier_sync();
            }
            let pa = ka.add_port(ca);
            let pb = kb.add_port(cb);
            let mut a = Pinger::new(pa, 5, SimTime::from_ns(100));
            let mut b = Pinger::new(pb, 0, SimTime::from_ns(100));
            let mut stalls = 0;
            loop {
                let ra = ka.step(&mut a, 64);
                let rb = kb.step(&mut b, 64);
                if ra == StepOutcome::Finished && rb == StepOutcome::Finished {
                    break;
                }
                if matches!(ra, StepOutcome::Blocked(_)) && matches!(rb, StepOutcome::Blocked(_)) {
                    stalls += 1;
                    assert!(stalls < 100_000, "deadlock: both blocked (a@{})", ka.now());
                } else {
                    stalls = 0;
                }
            }
            (b.received.clone(), ka.stats().syncs_sent + kb.stats().syncs_sent)
        };
        let (flat_rx, flat_syncs) = run(false);
        let (hier_rx, hier_syncs) = run(true);
        assert_eq!(flat_rx, hier_rx, "identical deliveries at identical times");
        assert_eq!(flat_rx.len(), 5);
        assert!(
            hier_syncs <= flat_syncs,
            "hier syncs ({hier_syncs}) must not exceed flat ({flat_syncs})"
        );
    }

    /// Satellite regression: adaptive idle-widening composes with aggregate
    /// domain horizons. A store-and-forward middle kernel (declared
    /// lookahead 0, both ports in one auto domain) has one hot input and one
    /// idle output peer; the idle peer's port widens its interval while the
    /// hot one stays at δ, and the domain's epoch batching must not let the
    /// idle peer's horizon regress or stall — deliveries stay bit-identical
    /// to the flat protocol.
    #[test]
    fn hier_domain_with_hot_and_idle_port_matches_flat() {
        struct Fwd {
            from: PortId,
            to: PortId,
        }
        impl Model for Fwd {
            fn on_msg(&mut self, k: &mut Kernel, port: PortId, msg: OwnedMsg) {
                if port == self.from {
                    k.send(self.to, msg.ty, &msg.data);
                }
            }
            fn sync_lookahead(&self) -> Option<SyncLookahead> {
                Some(SyncLookahead::ExcludeSelf(SimTime::ZERO))
            }
        }
        let params = ChannelParams::default_sync();
        let end = SimTime::from_us(20);
        let run = |hier: bool| {
            let (cx, sx) = channel_pair(params);
            let (sy, cy) = channel_pair(params);
            let mut kx = Kernel::new("x", end);
            let mut ks = Kernel::new("s", end);
            let mut ky = Kernel::new("y", end);
            if hier {
                kx.enable_hier_sync();
                ks.enable_hier_sync();
                ky.enable_hier_sync();
            }
            let px = kx.add_port(cx);
            let s_from = ks.add_port(sx);
            let s_to = ks.add_port(sy);
            let py = ky.add_port(cy);
            let mut x = Pinger::new(px, 20, SimTime::from_ns(100));
            let mut s = Fwd { from: s_from, to: s_to };
            let mut y = Pinger::new(py, 0, SimTime::from_ns(100));
            let mut stalls = 0;
            loop {
                let rx = kx.step(&mut x, 64);
                let rs = ks.step(&mut s, 64);
                let ry = ky.step(&mut y, 64);
                if rx == StepOutcome::Finished
                    && rs == StepOutcome::Finished
                    && ry == StepOutcome::Finished
                {
                    break;
                }
                let all_blocked = matches!(rx, StepOutcome::Blocked(_))
                    && matches!(rs, StepOutcome::Blocked(_))
                    && matches!(ry, StepOutcome::Blocked(_));
                if all_blocked {
                    stalls += 1;
                    assert!(stalls < 100_000, "deadlock: all blocked (s@{})", ks.now());
                } else {
                    stalls = 0;
                }
            }
            (y.received.clone(), ks.stats().syncs_sent)
        };
        let (flat_rx, _) = run(false);
        let (hier_rx, _) = run(true);
        assert_eq!(flat_rx.len(), 20, "all frames forwarded");
        assert_eq!(flat_rx, hier_rx, "hot+idle domain delivers identically");
    }

    #[test]
    fn event_log_records_with_virtual_time() {
        struct L;
        impl Model for L {
            fn init(&mut self, k: &mut Kernel) {
                k.schedule_at(SimTime::from_ns(400), 0);
            }
            fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, _m: OwnedMsg) {}
            fn on_timer(&mut self, k: &mut Kernel, _t: u64) {
                k.log("tick", 1, 2);
            }
        }
        let mut k = Kernel::new("l", SimTime::from_us(1));
        k.enable_log();
        let mut m = L;
        k.run(&mut m);
        let log = k.event_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].time, SimTime::from_ns(400));
        assert_eq!(log.entries()[0].tag, "tick");
    }
}
