//! Virtual simulation time.
//!
//! SimBricks components each maintain their own virtual clock. Clocks are
//! expressed in integer **picoseconds** so that cycle-accurate models (e.g.
//! the 250 MHz Corundum RTL model, 4 ns per cycle) and sub-nanosecond
//! instruction costs (0.43 ns/instruction for the calibrated gem5-like host)
//! can be represented exactly.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (picoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (picoseconds).
pub type Duration = SimTime;

/// Picoseconds per picosecond (the base unit).
pub const PS: u64 = 1;
/// Picoseconds per nanosecond.
pub const NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const SEC: u64 = 1_000_000_000_000;

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// "End of time" sentinel: used as the horizon of unsynchronized channels.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// A time `ps` picoseconds after simulation start.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// A time `ns` nanoseconds after simulation start.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * NS)
    }
    /// A time `us` microseconds after simulation start.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * US)
    }
    /// A time `ms` milliseconds after simulation start.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * MS)
    }
    /// A time `s` seconds after simulation start.
    #[inline]
    pub const fn from_sec(s: u64) -> Self {
        SimTime(s * SEC)
    }

    /// This time in whole picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// This time in whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / NS
    }
    /// This time in whole microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / US
    }
    /// This time in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SEC as f64
    }

    /// Saturating addition; adding anything to [`SimTime::MAX`] stays at MAX.
    #[inline]
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction; never wraps below zero.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Integer multiplication of a duration, saturating.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn mul(self, n: u64) -> SimTime {
        SimTime(self.0.saturating_mul(n))
    }

    /// Whether this is the MAX sentinel.
    #[inline]
    pub fn is_max(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_max() {
            return write!(f, "t=+inf");
        }
        let ps = self.0;
        if ps.is_multiple_of(SEC) {
            write!(f, "{}s", ps / SEC)
        } else if ps.is_multiple_of(MS) {
            write!(f, "{}ms", ps / MS)
        } else if ps.is_multiple_of(US) {
            write!(f, "{}us", ps / US)
        } else if ps.is_multiple_of(NS) {
            write!(f, "{}ns", ps / NS)
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

/// Compute the virtual time required to transmit `bytes` at `bits_per_sec`
/// (rounded up to the next picosecond).
pub fn transmission_time(bytes: usize, bits_per_sec: u64) -> SimTime {
    if bits_per_sec == 0 {
        return SimTime::ZERO;
    }
    let bits = bytes as u128 * 8;
    let ps = (bits * SEC as u128).div_ceil(bits_per_sec as u128);
    SimTime(ps.min(u64::MAX as u128) as u64)
}

/// Common link bandwidth constants in bits per second.
pub mod bw {
    /// One gigabit per second.
    pub const GBPS: u64 = 1_000_000_000;
    /// One megabit per second.
    pub const MBPS: u64 = 1_000_000;
    /// 10 Gbps Ethernet.
    pub const B10G: u64 = 10 * GBPS;
    /// 40 Gbps Ethernet.
    pub const B40G: u64 = 40 * GBPS;
    /// 100 Gbps Ethernet.
    pub const B100G: u64 = 100 * GBPS;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_roundtrip() {
        assert_eq!(SimTime::from_ns(5).as_ps(), 5_000);
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_us(), 2_000);
        assert_eq!(SimTime::from_sec(1).as_ps(), SEC);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(20);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::MAX.max(a), SimTime::MAX);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(SimTime::MAX + SimTime::from_ns(1), SimTime::MAX);
        assert_eq!(SimTime::from_ns(1) - SimTime::from_ns(5), SimTime::ZERO);
        assert!(SimTime::MAX.is_max());
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_ns(500).to_string(), "500ns");
        assert_eq!(SimTime::from_us(20).to_string(), "20us");
        assert_eq!(SimTime::from_sec(10).to_string(), "10s");
        assert_eq!(SimTime(1).to_string(), "1ps");
        assert_eq!(SimTime::MAX.to_string(), "t=+inf");
    }

    #[test]
    fn transmission_time_10g() {
        // 1250 bytes at 10 Gbps = 1 us.
        assert_eq!(transmission_time(1250, bw::B10G), SimTime::from_us(1));
        // 0 bandwidth treated as instantaneous.
        assert_eq!(transmission_time(1500, 0), SimTime::ZERO);
    }

    #[test]
    fn transmission_time_rounds_up() {
        // 1 byte at 3 bits/s: 8/3 s -> ceil in ps.
        let t = transmission_time(1, 3);
        assert_eq!(t.as_ps(), (8 * SEC).div_ceil(3));
    }
}
