//! Epoch-based global-barrier synchronization.
//!
//! This is the conventional synchronization scheme used by dist-gem5 /
//! pd-gem5 (§5.5.1, §7.3.1): simulation time is divided into epochs no larger
//! than the smallest link latency, and **all** components must reach the end
//! of the current epoch before any may enter the next one. SimBricks' own
//! pairwise mechanism ([`crate::sync`]) avoids this global coordination; this
//! module exists as the baseline the paper compares against in Fig. 6.
//!
//! The controller is poll-based (no OS blocking primitives) so it works both
//! with one component per thread and with the cooperative sequential
//! executor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::time::SimTime;

#[derive(Debug)]
struct Inner {
    /// Components that have arrived at the end of the current epoch.
    arrived: u64,
    /// Components still participating (not yet finished).
    participants: u64,
    /// Total barrier waits observed (for reporting overhead).
    barrier_rounds: u64,
}

/// Shared coordinator for epoch-based global synchronization.
#[derive(Debug)]
pub struct EpochController {
    epoch_len: SimTime,
    epoch: AtomicU64,
    inner: Mutex<Inner>,
}

impl EpochController {
    /// Create a controller for `participants` components with the given epoch
    /// length (must not exceed the smallest link latency in the simulation).
    pub fn new(epoch_len: SimTime, participants: u64) -> Arc<Self> {
        assert!(epoch_len > SimTime::ZERO, "epoch length must be non-zero");
        assert!(participants > 0, "need at least one participant");
        Arc::new(EpochController {
            epoch_len,
            epoch: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                arrived: 0,
                participants,
                barrier_rounds: 0,
            }),
        })
    }

    /// Length of one epoch in virtual time.
    pub fn epoch_len(&self) -> SimTime {
        self.epoch_len
    }

    /// Index of the epoch currently executing.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Virtual time at which epoch `epoch` ends (exclusive bound for events).
    pub fn epoch_end(&self, epoch: u64) -> SimTime {
        SimTime::from_ps(self.epoch_len.as_ps().saturating_mul(epoch + 1))
    }

    /// Number of completed barrier rounds (reporting only).
    pub fn barrier_rounds(&self) -> u64 {
        self.inner.lock().unwrap().barrier_rounds
    }

    /// Report that the calling component has finished epoch `epoch`. Returns
    /// true if this call released the barrier (i.e. the epoch advanced).
    pub fn arrive(&self, epoch: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        debug_assert_eq!(
            epoch,
            self.epoch.load(Ordering::Relaxed),
            "components must all be in the same epoch under global-barrier sync"
        );
        inner.arrived += 1;
        if inner.arrived >= inner.participants {
            inner.arrived = 0;
            inner.barrier_rounds += 1;
            self.epoch.fetch_add(1, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Remove the calling component from the barrier (it reached the end of
    /// its simulation). If it was the last straggler of the current epoch the
    /// epoch advances.
    pub fn depart(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.participants = inner.participants.saturating_sub(1);
        if inner.participants > 0 && inner.arrived >= inner.participants {
            inner.arrived = 0;
            inner.barrier_rounds += 1;
            self.epoch.fetch_add(1, Ordering::Release);
        }
    }
}

/// Per-component view of the global barrier, tracking which epoch the
/// component is executing and whether it already arrived at the barrier.
#[derive(Debug)]
pub struct BarrierMember {
    controller: Arc<EpochController>,
    my_epoch: u64,
    arrived: bool,
    departed: bool,
    /// Number of times this member had to wait at the barrier.
    waits: u64,
}

impl BarrierMember {
    /// Register a new member with the shared controller.
    pub fn new(controller: Arc<EpochController>) -> Self {
        BarrierMember {
            controller,
            my_epoch: 0,
            arrived: false,
            departed: false,
            waits: 0,
        }
    }

    /// Exclusive upper bound on event times the component may currently
    /// process: the end of its current epoch.
    pub fn horizon(&self) -> SimTime {
        self.controller.epoch_end(self.my_epoch)
    }

    /// Number of times this member had to wait at the barrier so far.
    pub fn waits(&self) -> u64 {
        self.waits
    }

    /// Called when the component cannot make progress below the epoch end.
    /// Registers arrival (once) and checks whether the global epoch has
    /// advanced; returns true if the component may now continue.
    pub fn try_pass(&mut self) -> bool {
        if self.departed {
            return true;
        }
        if !self.arrived {
            self.controller.arrive(self.my_epoch);
            self.arrived = true;
            self.waits += 1;
        }
        let cur = self.controller.current_epoch();
        if cur > self.my_epoch {
            self.my_epoch = cur;
            self.arrived = false;
            true
        } else {
            false
        }
    }

    /// Called once when the component finishes its simulation entirely.
    pub fn depart(&mut self) {
        if !self.departed {
            self.departed = true;
            self.controller.depart();
        }
    }
}

impl Drop for BarrierMember {
    fn drop(&mut self) {
        self.depart();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bounds() {
        let c = EpochController::new(SimTime::from_ns(500), 2);
        assert_eq!(c.epoch_end(0), SimTime::from_ns(500));
        assert_eq!(c.epoch_end(3), SimTime::from_ns(2000));
        assert_eq!(c.current_epoch(), 0);
    }

    #[test]
    fn two_members_advance_in_lockstep() {
        let c = EpochController::new(SimTime::from_ns(100), 2);
        let mut a = BarrierMember::new(c.clone());
        let mut b = BarrierMember::new(c.clone());
        assert_eq!(a.horizon(), SimTime::from_ns(100));
        // A arrives first and must wait.
        assert!(!a.try_pass());
        assert!(!a.try_pass());
        assert_eq!(c.current_epoch(), 0);
        // B arrives: barrier releases.
        assert!(b.try_pass());
        assert!(a.try_pass());
        assert_eq!(c.current_epoch(), 1);
        assert_eq!(a.horizon(), SimTime::from_ns(200));
        assert_eq!(b.horizon(), SimTime::from_ns(200));
        assert_eq!(c.barrier_rounds(), 1);
    }

    #[test]
    fn departure_releases_waiters() {
        let c = EpochController::new(SimTime::from_ns(100), 2);
        let mut a = BarrierMember::new(c.clone());
        let mut b = BarrierMember::new(c);
        assert!(!a.try_pass());
        b.depart();
        assert!(a.try_pass(), "departure of b must release a");
        // Single remaining participant now advances freely.
        assert!(!a.try_pass() || true);
    }

    #[test]
    fn drop_departs_automatically() {
        let c = EpochController::new(SimTime::from_ns(100), 2);
        let mut a = BarrierMember::new(c.clone());
        {
            let _b = BarrierMember::new(c.clone());
        }
        assert!(!a.try_pass() || a.try_pass());
        // With b gone, a alone releases every barrier.
        for _ in 0..5 {
            while !a.try_pass() {}
        }
        assert!(c.current_epoch() >= 5);
    }

    #[test]
    fn wait_counter_increments() {
        let c = EpochController::new(SimTime::from_ns(100), 1);
        let mut a = BarrierMember::new(c);
        assert!(a.try_pass());
        assert!(a.try_pass());
        assert_eq!(a.waits(), 2);
    }
}
