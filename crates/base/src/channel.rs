//! Bidirectional SimBricks channels.
//!
//! A channel between two component simulators consists of a pair of
//! unidirectional SPSC queues in opposite directions (§5.2). The channel is
//! configured with the modelled link latency Δ and synchronization interval δ
//! (§5.5), which the synchronization layer uses to timestamp outgoing
//! messages and to decide when SYNC messages must be emitted.

use crate::impair::Impairment;
use crate::pktbuf::BufPool;
use crate::slot::{MsgType, OwnedMsg};
use crate::spsc::{self, Consumer, Producer, SendError, DEFAULT_QUEUE_LEN};
use crate::time::SimTime;

/// Static configuration of one channel direction pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelParams {
    /// Link propagation latency Δ: a message sent at local time `T` must be
    /// processed by the peer at `T + latency`.
    pub latency: SimTime,
    /// Synchronization interval δ ≤ Δ: if no message has been sent for this
    /// long, a SYNC message is emitted to guarantee liveness.
    pub sync_interval: SimTime,
    /// Whether this channel participates in time synchronization. When
    /// false the channel operates in unsynchronized "emulation" mode.
    pub sync: bool,
    /// Number of slots per unidirectional queue.
    pub queue_len: usize,
    /// Adaptive sync batching (§5.5 extension): when enabled, the effective
    /// synchronization interval starts at `sync_interval` and widens towards
    /// the link latency Δ while the channel carries no data, snapping back to
    /// `sync_interval` on the next data message. This cuts pure-SYNC traffic
    /// on idle channels without affecting simulation results (promises are
    /// only ever emitted earlier or at a coarser cadence, never late).
    pub adaptive_sync: bool,
    /// Deterministic link impairment (loss, jitter, reordering, rate
    /// variation) applied by the sending endpoint of each direction. Both
    /// sides of a distributed link must agree on it, exactly like the
    /// latency — the proxy handshake verifies equality.
    pub impairment: Impairment,
}

impl ChannelParams {
    /// The paper's default configuration: 500 ns link latency, sync interval
    /// equal to the latency, synchronization enabled.
    pub fn default_sync() -> Self {
        ChannelParams {
            latency: SimTime::from_ns(500),
            sync_interval: SimTime::from_ns(500),
            sync: true,
            queue_len: DEFAULT_QUEUE_LEN,
            adaptive_sync: true,
            impairment: Impairment::none(),
        }
    }

    /// Unsynchronized channel for emulation-style runs (e.g. QEMU-KVM hosts).
    pub fn default_unsync() -> Self {
        ChannelParams {
            sync: false,
            ..Self::default_sync()
        }
    }

    /// Set the link latency Δ, clamping the sync interval δ down to it.
    pub fn with_latency(mut self, latency: SimTime) -> Self {
        self.latency = latency;
        if self.sync_interval > latency {
            self.sync_interval = latency;
        }
        self
    }

    /// Set the synchronization interval δ.
    pub fn with_sync_interval(mut self, interval: SimTime) -> Self {
        self.sync_interval = interval;
        self
    }

    /// Set the number of slots per unidirectional queue.
    pub fn with_queue_len(mut self, len: usize) -> Self {
        self.queue_len = len;
        self
    }

    /// Enable or disable time synchronization on this channel.
    pub fn with_sync(mut self, sync: bool) -> Self {
        self.sync = sync;
        self
    }

    /// Enable or disable adaptive widening of the synchronization interval
    /// on idle channels (enabled by default, see [`ChannelParams::adaptive_sync`]).
    pub fn with_adaptive_sync(mut self, adaptive: bool) -> Self {
        self.adaptive_sync = adaptive;
        self
    }

    /// Set the link impairment model (disabled by default).
    pub fn with_impairment(mut self, impairment: Impairment) -> Self {
        self.impairment = impairment;
        self
    }

    /// Size in bytes of the wire encoding produced by [`ChannelParams::to_wire`].
    pub const WIRE_LEN: usize = 26 + Impairment::WIRE_LEN;

    /// Serialize the parameters for transmission between the two halves of a
    /// distributed proxy pair (§5.4): both sides must agree on latency, sync
    /// interval, and synchronization mode, so the connecting side sends its
    /// parameters in the handshake frame and the accepting side verifies
    /// them. Layout (little-endian): u64 latency ps, u64 sync interval ps,
    /// u64 queue length, u8 flags (bit 0 = sync, bit 1 = adaptive sync),
    /// u8 reserved, then the fixed [`Impairment::WIRE_LEN`]-byte impairment
    /// block (see [`Impairment::to_wire`]).
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0..8].copy_from_slice(&self.latency.as_ps().to_le_bytes());
        out[8..16].copy_from_slice(&self.sync_interval.as_ps().to_le_bytes());
        out[16..24].copy_from_slice(&(self.queue_len as u64).to_le_bytes());
        out[24] = (self.sync as u8) | ((self.adaptive_sync as u8) << 1);
        out[26..].copy_from_slice(&self.impairment.to_wire());
        out
    }

    /// Parse parameters previously encoded with [`ChannelParams::to_wire`].
    /// Returns `None` if `buf` is shorter than [`ChannelParams::WIRE_LEN`],
    /// contains undefined flag bits, or carries an invalid impairment block.
    pub fn from_wire(buf: &[u8]) -> Option<ChannelParams> {
        if buf.len() < Self::WIRE_LEN {
            return None;
        }
        let flags = buf[24];
        if flags & !0x03 != 0 {
            return None;
        }
        Some(ChannelParams {
            latency: SimTime::from_ps(u64::from_le_bytes(buf[0..8].try_into().unwrap())),
            sync_interval: SimTime::from_ps(u64::from_le_bytes(buf[8..16].try_into().unwrap())),
            queue_len: u64::from_le_bytes(buf[16..24].try_into().unwrap()) as usize,
            sync: flags & 0x01 != 0,
            adaptive_sync: flags & 0x02 != 0,
            impairment: Impairment::from_wire(&buf[26..])?,
        })
    }
}

impl Default for ChannelParams {
    fn default() -> Self {
        Self::default_sync()
    }
}

/// One endpoint of a bidirectional channel.
pub struct ChannelEnd {
    tx: Producer,
    rx: Consumer,
    params: ChannelParams,
    conn_id: u64,
    dir: u8,
}

/// Create a connected pair of channel endpoints. Both endpoints share a
/// process-wide unique connection id, which lets the runner reconstruct the
/// channel graph of an experiment (topology-aware sync lookahead, automatic
/// partitioning) after the endpoints have been moved into their kernels.
pub fn channel_pair(params: ChannelParams) -> (ChannelEnd, ChannelEnd) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_CONN: AtomicU64 = AtomicU64::new(1);
    let conn_id = NEXT_CONN.fetch_add(1, Ordering::Relaxed);
    let (pa, ca) = spsc::queue(params.queue_len);
    let (pb, cb) = spsc::queue(params.queue_len);
    (
        ChannelEnd {
            tx: pa,
            rx: cb,
            params,
            conn_id,
            dir: 0,
        },
        ChannelEnd {
            tx: pb,
            rx: ca,
            params,
            conn_id,
            dir: 1,
        },
    )
}

impl ChannelEnd {
    /// The channel's static configuration.
    pub fn params(&self) -> ChannelParams {
        self.params
    }

    /// Process-wide unique id shared by both endpoints of this channel.
    pub fn conn_id(&self) -> u64 {
        self.conn_id
    }

    /// Direction tag: 0 for the `.0` endpoint of [`channel_pair`], 1 for the
    /// `.1` endpoint. Impairment streams are seeded per direction from this
    /// tag (never from `conn_id`, whose allocation order depends on the
    /// process and partitioning), so impaired traffic is bit-identical no
    /// matter how the experiment is partitioned.
    pub fn dir(&self) -> u8 {
        self.dir
    }

    /// Override the direction tag. Only the distributed runner uses this:
    /// a cross-partition endpoint is materialized from a fresh local pair,
    /// so its tag must be set explicitly to the side (`a` = 0, `b` = 1) it
    /// represents in the logical topology.
    pub fn set_dir(&mut self, dir: u8) {
        self.dir = dir;
    }

    /// Install the buffer pool received payloads are allocated from (the
    /// owning kernel's per-component arena).
    pub fn set_pool(&mut self, pool: BufPool) {
        self.rx.set_pool(pool);
    }

    /// The buffer pool received payloads are allocated from.
    pub fn pool(&self) -> &BufPool {
        self.rx.pool()
    }

    /// Link latency Δ of the channel.
    pub fn latency(&self) -> SimTime {
        self.params.latency
    }

    /// Whether the channel participates in time synchronization.
    pub fn sync_enabled(&self) -> bool {
        self.params.sync
    }

    /// Enqueue a message with an explicit receiver-side timestamp.
    pub fn send_raw(
        &mut self,
        timestamp: SimTime,
        ty: MsgType,
        payload: &[u8],
    ) -> Result<(), SendError> {
        self.tx.try_send(timestamp, ty, payload)
    }

    /// Dequeue the next message if one is available.
    pub fn recv_raw(&mut self) -> Option<OwnedMsg> {
        self.rx.try_recv()
    }

    /// Timestamp of the next pending incoming message, if any.
    pub fn peek_timestamp(&self) -> Option<SimTime> {
        self.rx.peek_timestamp()
    }

    /// Whether there is room to enqueue at least one more message.
    pub fn can_send(&self) -> bool {
        self.tx.can_send()
    }

    /// Whether the peer endpoint has been dropped.
    pub fn peer_closed(&self) -> bool {
        self.rx.peer_closed()
    }

    /// Messages sent / received on this endpoint so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.tx.sent(), self.rx.received())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_cross_connected() {
        let (mut a, mut b) = channel_pair(ChannelParams::default_sync());
        a.send_raw(SimTime::from_ns(10), 1, b"ab").unwrap();
        b.send_raw(SimTime::from_ns(20), 2, b"cd").unwrap();
        let at_b = b.recv_raw().unwrap();
        assert_eq!(at_b.ty, 1);
        assert_eq!(at_b.data, b"ab");
        let at_a = a.recv_raw().unwrap();
        assert_eq!(at_a.ty, 2);
        assert_eq!(at_a.data, b"cd");
    }

    #[test]
    fn params_builders() {
        let p = ChannelParams::default_sync()
            .with_latency(SimTime::from_ns(100))
            .with_queue_len(8);
        assert_eq!(p.latency, SimTime::from_ns(100));
        // sync interval clamps down to the latency
        assert_eq!(p.sync_interval, SimTime::from_ns(100));
        assert_eq!(p.queue_len, 8);
        assert!(p.sync);
        let u = ChannelParams::default_unsync();
        assert!(!u.sync);
    }

    #[test]
    fn counters_track_traffic() {
        let (mut a, mut b) = channel_pair(ChannelParams::default_sync());
        for i in 0..5 {
            a.send_raw(SimTime::from_ns(i), 1, &[]).unwrap();
        }
        for _ in 0..3 {
            b.recv_raw().unwrap();
        }
        assert_eq!(a.counters().0, 5);
        assert_eq!(b.counters().1, 3);
    }

    #[test]
    fn params_wire_roundtrip() {
        let p = ChannelParams::default_sync()
            .with_latency(SimTime::from_ns(123))
            .with_sync_interval(SimTime::from_ns(77))
            .with_queue_len(17)
            .with_adaptive_sync(false);
        let w = p.to_wire();
        assert_eq!(ChannelParams::from_wire(&w), Some(p));
        let u = ChannelParams::default_unsync();
        assert_eq!(ChannelParams::from_wire(&u.to_wire()), Some(u));
        // Truncated or corrupted encodings are rejected.
        assert_eq!(ChannelParams::from_wire(&w[..ChannelParams::WIRE_LEN - 1]), None);
        let mut bad = w;
        bad[24] = 0xff;
        assert_eq!(ChannelParams::from_wire(&bad), None);
        // Impairment parameters travel too, and invalid blocks are rejected.
        let imp = crate::impair::Impairment::none()
            .with_bernoulli_loss(25)
            .with_jitter(SimTime::from_ns(40))
            .with_seed(99);
        let pi = ChannelParams::default_sync().with_impairment(imp);
        assert_eq!(ChannelParams::from_wire(&pi.to_wire()), Some(pi));
        let mut bad = pi.to_wire();
        bad[26] = 0x7f; // unknown loss-model kind
        assert_eq!(ChannelParams::from_wire(&bad), None);
    }

    #[test]
    fn peer_close_detected() {
        let (a, b) = channel_pair(ChannelParams::default_sync());
        assert!(!b.peer_closed());
        drop(a);
        assert!(b.peer_closed());
    }
}
