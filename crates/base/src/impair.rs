//! Deterministic link impairments: loss, jitter, reordering, rate variation.
//!
//! Real fabrics are not clean. To evaluate protocols (DCTCP vs. L4S, loss
//! masking, AQM behaviour) the channel layer can apply a configurable
//! [`Impairment`] to every data message a [`SyncPort`](crate::sync::SyncPort)
//! sends. All decisions are driven by a seeded xorshift PRNG that advances
//! **only on data sends** — never on SYNC traffic, whose emission timing is
//! executor-dependent — so the impaired packet sequence is a pure function of
//! the virtual-time history and the seed, and merged event logs stay
//! bit-identical across executors, transports and checkpoint/restore.
//!
//! Monotonicity: the §5.5 protocol requires per-channel timestamps to be
//! non-decreasing (every timestamp is a promise). Impairments therefore only
//! ever *add* delay (`arrival = send + Δ + extra`), lost packets are replaced
//! by a SYNC carrying the un-jittered base promise `send + Δ`, and a held-back
//! (reordered) packet is re-emitted at `max(its own arrival, last promise)`.

use crate::pktbuf::PktBuf;
use crate::slot::MsgType;
use crate::snap::{SnapReader, SnapResult, SnapWriter, Snapshot};
use crate::time::SimTime;

/// Packet-loss process applied per data message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossModel {
    /// No loss.
    None,
    /// Independent (Bernoulli) loss with the given probability in permille
    /// (0..=1000).
    Bernoulli {
        /// Loss probability, permille.
        permille: u16,
    },
    /// Two-state Gilbert–Elliott loss: a Markov chain alternates between a
    /// good state (no loss) and a bad state (bursty loss). All probabilities
    /// are per data message, in permille.
    GilbertElliott {
        /// Probability of moving good → bad, permille.
        to_bad_permille: u16,
        /// Probability of moving bad → good, permille.
        to_good_permille: u16,
        /// Loss probability while in the bad state, permille.
        bad_loss_permille: u16,
    },
}

/// Declarative link impairment configuration, carried inside
/// [`ChannelParams`](crate::channel::ChannelParams) (both endpoints and every
/// proxy handshake must agree on it, exactly like latency).
///
/// The per-direction random stream is seeded from `seed` mixed with the
/// endpoint direction tag ([`ChannelEnd::dir`](crate::channel::ChannelEnd::dir)),
/// so the two directions of one link are impaired independently but
/// reproducibly — independent of process boundaries or partitioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Impairment {
    /// Loss process.
    pub loss: LossModel,
    /// Maximum extra one-way delay added per delivered packet, drawn
    /// uniformly from `[0, jitter_max]`. Zero disables jitter.
    pub jitter_max: SimTime,
    /// Probability (permille) of holding a packet back so that the *next*
    /// data message overtakes it (one-slot reordering). Zero disables.
    pub reorder_permille: u16,
    /// Epoch length of slow rate variation. Within one epoch every packet
    /// gets the same extra delay (a hash of the epoch number); across epochs
    /// the extra delay varies in `[0, rate_jitter_max]`. Zero disables.
    pub rate_period: SimTime,
    /// Maximum per-epoch extra delay of the rate-variation process.
    pub rate_jitter_max: SimTime,
    /// Seed of the per-direction impairment streams.
    pub seed: u64,
}

impl Impairment {
    /// The disabled impairment: a clean link. This is the default everywhere.
    pub const fn none() -> Self {
        Impairment {
            loss: LossModel::None,
            jitter_max: SimTime::ZERO,
            reorder_permille: 0,
            rate_period: SimTime::ZERO,
            rate_jitter_max: SimTime::ZERO,
            seed: 0,
        }
    }

    /// True when every impairment dimension is disabled (the hot-path check:
    /// clean links skip the impairment machinery entirely).
    pub fn is_none(&self) -> bool {
        matches!(self.loss, LossModel::None)
            && self.jitter_max == SimTime::ZERO
            && self.reorder_permille == 0
            && (self.rate_period == SimTime::ZERO || self.rate_jitter_max == SimTime::ZERO)
    }

    /// Independent loss with probability `permille`/1000.
    pub fn with_bernoulli_loss(mut self, permille: u16) -> Self {
        self.loss = LossModel::Bernoulli { permille };
        self
    }

    /// Gilbert–Elliott bursty loss (see [`LossModel::GilbertElliott`]).
    pub fn with_gilbert_elliott(
        mut self,
        to_bad_permille: u16,
        to_good_permille: u16,
        bad_loss_permille: u16,
    ) -> Self {
        self.loss = LossModel::GilbertElliott {
            to_bad_permille,
            to_good_permille,
            bad_loss_permille,
        };
        self
    }

    /// Uniform extra delay in `[0, jitter_max]` per delivered packet.
    pub fn with_jitter(mut self, jitter_max: SimTime) -> Self {
        self.jitter_max = jitter_max;
        self
    }

    /// One-slot reordering with probability `permille`/1000.
    pub fn with_reorder(mut self, permille: u16) -> Self {
        self.reorder_permille = permille;
        self
    }

    /// Slow rate variation: per `period`-long epoch, a pseudo-random extra
    /// delay in `[0, max_extra]` applied to every packet of the epoch.
    pub fn with_rate_variation(mut self, period: SimTime, max_extra: SimTime) -> Self {
        self.rate_period = period;
        self.rate_jitter_max = max_extra;
        self
    }

    /// Set the stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Check every probability is a valid permille value (0..=1000).
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let check = |name: &str, v: u16| {
            if v > 1000 {
                Err(format!("{name} is {v}, must be a permille value (0..=1000)"))
            } else {
                Ok(())
            }
        };
        match self.loss {
            LossModel::None => {}
            LossModel::Bernoulli { permille } => check("loss permille", permille)?,
            LossModel::GilbertElliott {
                to_bad_permille,
                to_good_permille,
                bad_loss_permille,
            } => {
                check("gilbert-elliott to-bad permille", to_bad_permille)?;
                check("gilbert-elliott to-good permille", to_good_permille)?;
                check("gilbert-elliott bad-loss permille", bad_loss_permille)?;
            }
        }
        check("reorder permille", self.reorder_permille)
    }

    /// Fixed wire size of the impairment block inside
    /// [`ChannelParams::to_wire`](crate::channel::ChannelParams::to_wire).
    pub const WIRE_LEN: usize = 41;

    /// Encode into the 41-byte wire block (see `ChannelParams::to_wire`).
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        let (kind, p0, p1, p2) = match self.loss {
            LossModel::None => (0u8, 0u16, 0u16, 0u16),
            LossModel::Bernoulli { permille } => (1, permille, 0, 0),
            LossModel::GilbertElliott {
                to_bad_permille,
                to_good_permille,
                bad_loss_permille,
            } => (2, to_bad_permille, to_good_permille, bad_loss_permille),
        };
        out[0] = kind;
        out[1..3].copy_from_slice(&p0.to_le_bytes());
        out[3..5].copy_from_slice(&p1.to_le_bytes());
        out[5..7].copy_from_slice(&p2.to_le_bytes());
        out[7..15].copy_from_slice(&self.jitter_max.as_ps().to_le_bytes());
        out[15..17].copy_from_slice(&self.reorder_permille.to_le_bytes());
        out[17..25].copy_from_slice(&self.rate_period.as_ps().to_le_bytes());
        out[25..33].copy_from_slice(&self.rate_jitter_max.as_ps().to_le_bytes());
        out[33..41].copy_from_slice(&self.seed.to_le_bytes());
        out
    }

    /// Decode the wire block; `None` on a short buffer, an unknown loss-model
    /// kind, or an out-of-range permille value.
    pub fn from_wire(buf: &[u8]) -> Option<Impairment> {
        if buf.len() < Self::WIRE_LEN {
            return None;
        }
        let u16_at = |i: usize| u16::from_le_bytes([buf[i], buf[i + 1]]);
        let u64_at = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().unwrap());
        let loss = match buf[0] {
            0 => LossModel::None,
            1 => LossModel::Bernoulli { permille: u16_at(1) },
            2 => LossModel::GilbertElliott {
                to_bad_permille: u16_at(1),
                to_good_permille: u16_at(3),
                bad_loss_permille: u16_at(5),
            },
            _ => return None,
        };
        let imp = Impairment {
            loss,
            jitter_max: SimTime::from_ps(u64_at(7)),
            reorder_permille: u16_at(15),
            rate_period: SimTime::from_ps(u64_at(17)),
            rate_jitter_max: SimTime::from_ps(u64_at(25)),
            seed: u64_at(33),
        };
        imp.validate().ok()?;
        Some(imp)
    }
}

impl Default for Impairment {
    fn default() -> Self {
        Impairment::none()
    }
}

/// Mix a seed with a small tag (direction, port, name hash) into a non-zero
/// xorshift state. Shared by every impairment-style PRNG in the workspace so
/// streams derived from the same seed but different tags are decorrelated.
pub fn mix_seed(seed: u64, tag: u64) -> u64 {
    (seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        | 1
}

/// FNV-1a over a string — the workspace-standard way to derive per-entity
/// seeds (per link, per switch) from a global scenario seed plus a name, so
/// every partition of a distributed run derives identical streams.
pub fn fnv1a_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Per-direction runtime state of one impaired channel endpoint. Owned by
/// [`SyncPort`](crate::sync::SyncPort) and snapshotted with it.
#[derive(Debug)]
pub struct ImpairState {
    /// Configuration (from the channel parameters at construction).
    // snap-skip: configuration, re-derived from the channel on restore
    cfg: Impairment,
    /// xorshift64* stream state; advances only on data sends.
    rng: u64,
    /// Gilbert–Elliott chain state: currently in the bad (lossy) state.
    in_bad: bool,
    /// One-slot reorder holdback: a packet waiting for its successor to
    /// overtake it. Flushed on the next data send; dropped at finalize.
    deferred: Option<(SimTime, MsgType, PktBuf)>,
    /// Packets dropped by the loss process (including a deferred packet
    /// discarded at finalize).
    pub lost: u64,
    /// Packets delivered with a non-zero extra delay.
    pub delayed: u64,
    /// Packets held back for one-slot reordering.
    pub reordered: u64,
}

impl ImpairState {
    /// State for one endpoint direction (`dir` is 0 for the `.0` end of the
    /// pair, 1 for the `.1` end — see `ChannelEnd::dir`).
    pub fn new(cfg: Impairment, dir: u8) -> Self {
        ImpairState {
            cfg,
            rng: mix_seed(cfg.seed, dir as u64),
            in_bad: false,
            deferred: None,
            lost: 0,
            delayed: 0,
            reordered: 0,
        }
    }

    /// Whether this endpoint impairs traffic at all.
    pub fn active(&self) -> bool {
        !self.cfg.is_none()
    }

    /// A packet is currently held back for reordering.
    pub fn has_deferred(&self) -> bool {
        self.deferred.is_some()
    }

    /// Take the held-back packet (finalize drop, or flush on the next send).
    pub fn take_deferred(&mut self) -> Option<(SimTime, MsgType, PktBuf)> {
        self.deferred.take()
    }

    /// Park a packet in the reorder slot (the caller checked it is free).
    pub fn defer(&mut self, ts: SimTime, ty: MsgType, payload: PktBuf) {
        debug_assert!(self.deferred.is_none());
        self.deferred = Some((ts, ty, payload));
        self.reordered += 1;
    }

    fn draw(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn draw_permille(&mut self) -> u16 {
        (self.draw() % 1000) as u16
    }

    /// Per-packet loss decision (advances the Gilbert–Elliott chain).
    pub fn decide_loss(&mut self) -> bool {
        match self.cfg.loss {
            LossModel::None => false,
            LossModel::Bernoulli { permille } => permille > 0 && self.draw_permille() < permille,
            LossModel::GilbertElliott {
                to_bad_permille,
                to_good_permille,
                bad_loss_permille,
            } => {
                let flip = self.draw_permille();
                if self.in_bad {
                    if flip < to_good_permille {
                        self.in_bad = false;
                    }
                } else if flip < to_bad_permille {
                    self.in_bad = true;
                }
                self.in_bad && self.draw_permille() < bad_loss_permille
            }
        }
    }

    /// Extra delay for a packet whose un-impaired arrival is `base`: jitter
    /// (uniform, one draw) plus the rate-variation epoch offset (stateless
    /// hash of the epoch number — consumes no stream state).
    pub fn extra_delay(&mut self, base: SimTime) -> SimTime {
        let mut extra: u64 = 0;
        let jit = self.cfg.jitter_max.as_ps();
        if jit > 0 {
            extra += self.draw() % (jit + 1);
        }
        let period = self.cfg.rate_period.as_ps();
        let rmax = self.cfg.rate_jitter_max.as_ps();
        if period > 0 && rmax > 0 {
            let epoch = base.as_ps() / period;
            // splitmix64-style stateless hash: same epoch -> same extra.
            let mut z = mix_seed(self.cfg.seed, epoch ^ 0xA076_1D64_78BD_642F);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            extra += (z ^ (z >> 31)) % (rmax + 1);
        }
        if extra > 0 {
            self.delayed += 1;
        }
        SimTime::from_ps(extra)
    }

    /// Per-packet reorder decision (only when the holdback slot is free).
    pub fn decide_defer(&mut self) -> bool {
        self.cfg.reorder_permille > 0
            && self.deferred.is_none()
            && self.draw_permille() < self.cfg.reorder_permille
    }
}

impl Snapshot for ImpairState {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.u64(self.rng);
        w.bool(self.in_bad);
        match &self.deferred {
            Some((ts, ty, payload)) => {
                w.bool(true);
                w.time(*ts);
                w.u8(*ty);
                w.bytes(payload);
            }
            None => w.bool(false),
        }
        w.u64(self.lost);
        w.u64(self.delayed);
        w.u64(self.reordered);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.rng = r.u64()?;
        self.in_bad = r.bool()?;
        self.deferred = if r.bool()? {
            let ts = r.time()?;
            let ty = r.u8()?;
            let payload = r.bytes()?;
            Some((ts, ty, PktBuf::from_vec(payload)))
        } else {
            None
        };
        self.lost = r.u64()?;
        self.delayed = r.u64()?;
        self.reordered = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let mut st = ImpairState::new(Impairment::none(), 0);
        assert!(!st.active());
        for _ in 0..100 {
            assert!(!st.decide_loss());
            assert_eq!(st.extra_delay(SimTime::from_us(1)), SimTime::ZERO);
            assert!(!st.decide_defer());
        }
    }

    #[test]
    fn bernoulli_loss_rate_is_roughly_right_and_reproducible() {
        let cfg = Impairment::none().with_bernoulli_loss(100).with_seed(7);
        let mut a = ImpairState::new(cfg, 0);
        let mut b = ImpairState::new(cfg, 0);
        let mut losses = 0;
        for _ in 0..10_000 {
            let la = a.decide_loss();
            assert_eq!(la, b.decide_loss(), "same seed, same stream");
            losses += la as u32;
        }
        // 10% nominal; allow generous slack for a 10k-sample run.
        assert!((700..1300).contains(&losses), "loss count {losses}");
    }

    /// The two directions of one link draw from decorrelated streams even
    /// though they share the configured seed.
    #[test]
    fn direction_tag_decorrelates_streams() {
        let cfg = Impairment::none().with_bernoulli_loss(500).with_seed(7);
        let mut d0 = ImpairState::new(cfg, 0);
        let mut d1 = ImpairState::new(cfg, 1);
        let s0: Vec<bool> = (0..64).map(|_| d0.decide_loss()).collect();
        let s1: Vec<bool> = (0..64).map(|_| d1.decide_loss()).collect();
        assert_ne!(s0, s1);
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let cfg = Impairment::none()
            .with_gilbert_elliott(50, 300, 900)
            .with_seed(3);
        let mut st = ImpairState::new(cfg, 0);
        let seq: Vec<bool> = (0..20_000).map(|_| st.decide_loss()).collect();
        let losses = seq.iter().filter(|l| **l).count();
        assert!(losses > 200, "bad state visited ({losses} losses)");
        // Bursts: at least one run of >= 3 consecutive losses.
        let mut run = 0usize;
        let mut max_run = 0usize;
        for l in &seq {
            if *l {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_run >= 3, "longest loss burst {max_run}");
    }

    #[test]
    fn jitter_bounded_and_rate_variation_constant_within_epoch() {
        let cfg = Impairment::none()
            .with_jitter(SimTime::from_ns(100))
            .with_seed(9);
        let mut st = ImpairState::new(cfg, 0);
        for _ in 0..1000 {
            let e = st.extra_delay(SimTime::from_us(5));
            assert!(e <= SimTime::from_ns(100));
        }
        let cfg = Impairment::none()
            .with_rate_variation(SimTime::from_us(10), SimTime::from_ns(500))
            .with_seed(9);
        let mut st = ImpairState::new(cfg, 0);
        let e1 = st.extra_delay(SimTime::from_ps(10_000_001));
        let e2 = st.extra_delay(SimTime::from_ps(19_999_999));
        assert_eq!(e1, e2, "same epoch, same extra");
        assert!(e1 <= SimTime::from_ns(500));
    }

    #[test]
    fn wire_roundtrip_and_validation() {
        let imp = Impairment::none()
            .with_gilbert_elliott(10, 400, 800)
            .with_jitter(SimTime::from_ns(250))
            .with_reorder(5)
            .with_rate_variation(SimTime::from_us(50), SimTime::from_us(1))
            .with_seed(0xDEAD_BEEF);
        let w = imp.to_wire();
        assert_eq!(Impairment::from_wire(&w), Some(imp));
        // Truncated block rejected.
        assert_eq!(Impairment::from_wire(&w[..Impairment::WIRE_LEN - 1]), None);
        // Unknown loss kind rejected.
        let mut bad = w;
        bad[0] = 9;
        assert_eq!(Impairment::from_wire(&bad), None);
        // Out-of-range permille rejected.
        let mut bad = w;
        bad[15..17].copy_from_slice(&2000u16.to_le_bytes());
        assert_eq!(Impairment::from_wire(&bad), None);
        // validate() mirrors the wire check.
        assert!(Impairment::none().with_bernoulli_loss(1001).validate().is_err());
        assert!(Impairment::none().with_reorder(1000).validate().is_ok());
    }

    #[test]
    fn snapshot_roundtrip() {
        let cfg = Impairment::none()
            .with_bernoulli_loss(100)
            .with_reorder(100)
            .with_seed(11);
        let mut st = ImpairState::new(cfg, 1);
        for _ in 0..57 {
            st.decide_loss();
        }
        st.defer(SimTime::from_us(3), 4, PktBuf::from_vec(vec![1, 2, 3]));
        st.lost = 5;
        let mut w = SnapWriter::new();
        st.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        let mut back = ImpairState::new(cfg, 1);
        back.restore(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(back.rng, st.rng);
        assert_eq!(back.lost, 5);
        assert_eq!(back.reordered, 1);
        let (ts, ty, payload) = back.take_deferred().unwrap();
        assert_eq!((ts, ty), (SimTime::from_us(3), 4));
        assert_eq!(payload.as_slice(), &[1, 2, 3]);
        // The PRNG stream continues identically after restore.
        let mut cont = ImpairState::new(cfg, 1);
        for _ in 0..57 {
            cont.decide_loss();
        }
        assert_eq!(st.decide_loss(), cont.decide_loss());
    }
}
