//! Run statistics collected by the component kernel.

use std::fmt;

use crate::pktbuf::PoolStats;
use crate::snap::{SnapError, SnapReader, SnapResult, SnapWriter, Snapshot};
use crate::sync::PortStats;
use crate::time::SimTime;

/// Counters describing what one component simulator did during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Virtual time the component reached when it finished.
    pub final_time: SimTime,
    /// Data messages delivered to the model.
    pub msgs_delivered: u64,
    /// Local timer events fired.
    pub timers_fired: u64,
    /// Number of distinct clock advances performed.
    pub advances: u64,
    /// Number of step invocations that could not make progress (waiting for
    /// peer promises); a proxy for synchronization stall time.
    pub blocked_polls: u64,
    /// Times the component waited at the global barrier (barrier mode only).
    pub barrier_waits: u64,
    /// Aggregated per-port counters: data messages sent.
    pub data_sent: u64,
    /// Data messages received.
    pub data_received: u64,
    /// SYNC messages sent.
    pub syncs_sent: u64,
    /// SYNC messages received.
    pub syncs_received: u64,
    /// Sends buffered locally because the shared queue was momentarily full.
    pub backpressured: u64,
    /// SYNC messages emitted ahead of schedule by batched emission (subset of
    /// `syncs_sent`).
    pub syncs_coalesced: u64,
    /// SYNC emissions suppressed by hierarchical sync because their promise
    /// would not have raised the peer's horizon (never reached the wire; not
    /// part of `syncs_sent`).
    pub syncs_suppressed: u64,
    /// Packet-buffer allocations served from the component's freelist arena
    /// (no heap traffic).
    pub pool_hits: u64,
    /// Packet-buffer allocations that had to create a fresh segment.
    pub pool_misses: u64,
    /// Packet-buffer allocations that exceeded the segment capacity and fell
    /// back to a plain heap buffer.
    pub pool_fallbacks: u64,
}

impl KernelStats {
    /// Fold one port's counters into this component's totals.
    pub fn absorb_port(&mut self, p: PortStats) {
        self.data_sent += p.data_sent;
        self.data_received += p.data_received;
        self.syncs_sent += p.syncs_sent;
        self.syncs_received += p.syncs_received;
        self.backpressured += p.backpressured;
        self.syncs_coalesced += p.syncs_coalesced;
        self.syncs_suppressed += p.syncs_suppressed;
    }

    /// Overwrite the pool counters from the component's arena (the arena's
    /// counters are already cumulative, so this is a set, not an add).
    pub fn absorb_pool(&mut self, p: PoolStats) {
        self.pool_hits = p.hits;
        self.pool_misses = p.misses;
        self.pool_fallbacks = p.fallbacks;
    }

    /// Fraction of pooled allocations served from the freelist, in `0..=1`
    /// (1.0 when nothing was allocated).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            1.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Total messages that crossed this component's channels (both kinds and
    /// both directions).
    pub fn total_messages(&self) -> u64 {
        self.data_sent + self.data_received + self.syncs_sent + self.syncs_received
    }

    /// Fraction of all exchanged messages that were pure synchronization.
    pub fn sync_overhead_ratio(&self) -> f64 {
        let total = self.total_messages();
        if total == 0 {
            0.0
        } else {
            (self.syncs_sent + self.syncs_received) as f64 / total as f64
        }
    }

    /// Size in bytes of the wire encoding produced by [`KernelStats::to_wire`].
    pub const WIRE_LEN: usize = 16 * 8;

    /// Serialize the counters as 16 little-endian `u64`s (final time in
    /// picoseconds first, then the counters; `syncs_suppressed` occupies the
    /// formerly reserved final slot so the encoding length never changed).
    /// Used by
    /// distributed runs to ship per-component statistics from worker
    /// processes back to the orchestrator over the control socket.
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let fields = [
            self.final_time.as_ps(),
            self.msgs_delivered,
            self.timers_fired,
            self.advances,
            self.blocked_polls,
            self.barrier_waits,
            self.data_sent,
            self.data_received,
            self.syncs_sent,
            self.syncs_received,
            self.backpressured,
            self.syncs_coalesced,
            self.pool_hits,
            self.pool_misses,
            self.pool_fallbacks,
            self.syncs_suppressed,
        ];
        let mut out = [0u8; Self::WIRE_LEN];
        for (i, f) in fields.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&f.to_le_bytes());
        }
        out
    }

    /// Parse counters previously encoded with [`KernelStats::to_wire`].
    /// Returns `None` if `buf` is shorter than [`KernelStats::WIRE_LEN`].
    pub fn from_wire(buf: &[u8]) -> Option<KernelStats> {
        if buf.len() < Self::WIRE_LEN {
            return None;
        }
        let mut f = [0u64; 16];
        for (i, v) in f.iter_mut().enumerate() {
            *v = u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        Some(KernelStats {
            final_time: SimTime::from_ps(f[0]),
            msgs_delivered: f[1],
            timers_fired: f[2],
            advances: f[3],
            blocked_polls: f[4],
            barrier_waits: f[5],
            data_sent: f[6],
            data_received: f[7],
            syncs_sent: f[8],
            syncs_received: f[9],
            backpressured: f[10],
            syncs_coalesced: f[11],
            pool_hits: f[12],
            pool_misses: f[13],
            pool_fallbacks: f[14],
            syncs_suppressed: f[15],
        })
    }

    /// Merge statistics of several components (for whole-simulation totals).
    pub fn merged(all: &[KernelStats]) -> KernelStats {
        let mut out = KernelStats::default();
        for s in all {
            out.final_time = out.final_time.max(s.final_time);
            out.msgs_delivered += s.msgs_delivered;
            out.timers_fired += s.timers_fired;
            out.advances += s.advances;
            out.blocked_polls += s.blocked_polls;
            out.barrier_waits += s.barrier_waits;
            out.data_sent += s.data_sent;
            out.data_received += s.data_received;
            out.syncs_sent += s.syncs_sent;
            out.syncs_received += s.syncs_received;
            out.backpressured += s.backpressured;
            out.syncs_coalesced += s.syncs_coalesced;
            out.pool_hits += s.pool_hits;
            out.pool_misses += s.pool_misses;
            out.pool_fallbacks += s.pool_fallbacks;
            out.syncs_suppressed += s.syncs_suppressed;
        }
        out
    }
}

impl Snapshot for KernelStats {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.raw(&self.to_wire());
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        let buf = r.take(Self::WIRE_LEN)?;
        *self = KernelStats::from_wire(buf)
            .ok_or_else(|| SnapError::Corrupt("kernel stats encoding".into()))?;
        Ok(())
    }
}

impl Snapshot for PortStats {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        for v in [
            self.data_sent,
            self.data_received,
            self.syncs_sent,
            self.syncs_received,
            self.backpressured,
            self.syncs_coalesced,
            self.syncs_suppressed,
        ] {
            w.u64(v);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.data_sent = r.u64()?;
        self.data_received = r.u64()?;
        self.syncs_sent = r.u64()?;
        self.syncs_received = r.u64()?;
        self.backpressured = r.u64()?;
        self.syncs_coalesced = r.u64()?;
        self.syncs_suppressed = r.u64()?;
        Ok(())
    }
}

impl fmt::Display for KernelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={} delivered={} timers={} advances={} blocked={} data_tx={} data_rx={} sync_tx={} sync_rx={} barrier_waits={}",
            self.final_time,
            self.msgs_delivered,
            self.timers_fired,
            self.advances,
            self.blocked_polls,
            self.data_sent,
            self.data_received,
            self.syncs_sent,
            self.syncs_received,
            self.barrier_waits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_and_ratio() {
        let mut s = KernelStats::default();
        s.absorb_port(PortStats {
            data_sent: 10,
            data_received: 10,
            syncs_sent: 30,
            syncs_received: 30,
            backpressured: 1,
            syncs_coalesced: 0,
            syncs_suppressed: 0,
        });
        assert_eq!(s.total_messages(), 80);
        assert!((s.sync_overhead_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(s.backpressured, 1);
    }

    #[test]
    fn ratio_of_empty_stats_is_zero() {
        assert_eq!(KernelStats::default().sync_overhead_ratio(), 0.0);
    }

    #[test]
    fn wire_roundtrip_preserves_every_counter() {
        let s = KernelStats {
            final_time: SimTime::from_ms(12),
            msgs_delivered: 1,
            timers_fired: 2,
            advances: 3,
            blocked_polls: 4,
            barrier_waits: 5,
            data_sent: 6,
            data_received: 7,
            syncs_sent: 8,
            syncs_received: 9,
            backpressured: 10,
            syncs_coalesced: 11,
            pool_hits: 12,
            pool_misses: 13,
            pool_fallbacks: 14,
            syncs_suppressed: 15,
        };
        let w = s.to_wire();
        assert_eq!(KernelStats::from_wire(&w), Some(s));
        assert_eq!(KernelStats::from_wire(&w[..KernelStats::WIRE_LEN - 1]), None);
    }

    #[test]
    fn merged_takes_max_time_and_sums_counters() {
        let a = KernelStats {
            final_time: SimTime::from_ms(10),
            msgs_delivered: 5,
            syncs_sent: 100,
            ..Default::default()
        };
        let b = KernelStats {
            final_time: SimTime::from_ms(20),
            msgs_delivered: 7,
            syncs_sent: 50,
            ..Default::default()
        };
        let m = KernelStats::merged(&[a, b]);
        assert_eq!(m.final_time, SimTime::from_ms(20));
        assert_eq!(m.msgs_delivered, 12);
        assert_eq!(m.syncs_sent, 150);
    }
}
