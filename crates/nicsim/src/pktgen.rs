//! Dummy packet-generator NIC (§7.3.2).
//!
//! An Ethernet-only component that injects packets at a configured rate and
//! otherwise only participates in synchronization. The paper uses it to
//! isolate the network simulator as a scalability bottleneck and to evaluate
//! decomposing one switch into a ToR/core hierarchy.

use simbricks_base::{Kernel, Model, OwnedMsg, PortId, SimTime};
use simbricks_eth::{send_packet, EthPacket};
use simbricks_proto::{EthHeader, EtherType, MacAddr};

/// Packet generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct PktGenConfig {
    /// Source MAC of generated frames.
    pub mac: MacAddr,
    /// Destination MAC of generated frames.
    pub dst: MacAddr,
    /// Injection rate in bits per second (0 = generate nothing, only sync).
    pub rate_bps: u64,
    /// Frame size in bytes.
    pub frame_len: usize,
    /// Stop generating after this virtual time (frames already queued drain).
    pub duration: SimTime,
}

impl Default for PktGenConfig {
    fn default() -> Self {
        PktGenConfig {
            mac: MacAddr::from_index(1),
            dst: MacAddr::from_index(2),
            rate_bps: simbricks_base::bw::B100G,
            frame_len: 1500,
            duration: SimTime::from_sec(1),
        }
    }
}

/// The packet generator model; port 0 is its Ethernet port.
pub struct PktGen {
    cfg: PktGenConfig,
    interval: SimTime,
    pub sent: u64,
    pub received: u64,
    frame: Vec<u8>,
}

impl PktGen {
    pub fn new(cfg: PktGenConfig) -> Self {
        let interval = if cfg.rate_bps == 0 {
            SimTime::MAX
        } else {
            simbricks_base::transmission_time(cfg.frame_len, cfg.rate_bps)
        };
        let payload_len = cfg.frame_len.saturating_sub(14).max(46);
        let frame = EthHeader::new(cfg.dst, cfg.mac, EtherType::Other(0x88b5))
            .build_frame(&vec![0x5a; payload_len]);
        PktGen {
            cfg,
            interval,
            sent: 0,
            received: 0,
            frame,
        }
    }
}

impl Model for PktGen {
    fn init(&mut self, k: &mut Kernel) {
        if self.cfg.rate_bps > 0 {
            k.schedule_at(SimTime::ZERO, 0);
        }
    }

    fn on_msg(&mut self, _k: &mut Kernel, _port: PortId, msg: OwnedMsg) {
        if EthPacket::decode(&msg).is_some() {
            self.received += 1;
        }
    }

    fn on_timer(&mut self, k: &mut Kernel, _token: u64) {
        if k.now() >= self.cfg.duration {
            return;
        }
        send_packet(k, PortId(0), &self.frame);
        self.sent += 1;
        k.schedule_in(self.interval, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, StepOutcome, MSG_SYNC};
    use simbricks_eth::MSG_ETH_PACKET;

    #[test]
    fn generates_at_configured_rate() {
        let cfg = PktGenConfig {
            rate_bps: simbricks_base::bw::GBPS, // 1500B at 1G = 12 us apart
            frame_len: 1500,
            duration: SimTime::from_us(121),
            ..Default::default()
        };
        let (gen_end, mut peer) = channel_pair(ChannelParams::default_sync());
        let mut kernel = Kernel::new("pktgen", SimTime::from_us(200));
        kernel.add_port(gen_end);
        let mut pg = PktGen::new(cfg);
        peer.send_raw(SimTime::from_us(200), MSG_SYNC, &[]).unwrap();
        // Drain the peer while stepping (SYNC messages every 500 ns would
        // otherwise fill the bounded queue).
        let mut frames = 0;
        let mut last = SimTime::ZERO;
        loop {
            let outcome = kernel.step(&mut pg, 64);
            while let Some(m) = peer.recv_raw() {
                if m.ty == MSG_ETH_PACKET {
                    frames += 1;
                    assert!(m.timestamp >= last);
                    last = m.timestamp;
                    assert_eq!(m.data.len(), 1500);
                }
            }
            if outcome != StepOutcome::Progressed {
                break;
            }
        }
        // 121 us / 12 us per frame = 11 frames (first at t=0).
        assert_eq!(frames, 11);
        assert_eq!(pg.sent, 11);
    }

    #[test]
    fn zero_rate_only_synchronizes() {
        let cfg = PktGenConfig {
            rate_bps: 0,
            ..Default::default()
        };
        let (gen_end, mut peer) = channel_pair(ChannelParams::default_sync());
        let mut kernel = Kernel::new("pktgen", SimTime::from_us(50));
        kernel.add_port(gen_end);
        let mut pg = PktGen::new(cfg);
        peer.send_raw(SimTime::from_us(50), MSG_SYNC, &[]).unwrap();
        while kernel.step(&mut pg, 1024) == StepOutcome::Progressed {}
        let mut data = 0;
        let mut syncs = 0;
        while let Some(m) = peer.recv_raw() {
            if m.ty == MSG_ETH_PACKET {
                data += 1;
            } else {
                syncs += 1;
            }
        }
        assert_eq!(data, 0);
        assert!(syncs > 0, "keeps its peer's clock advancing");
    }

    #[test]
    fn counts_received_frames() {
        let (gen_end, mut peer) = channel_pair(ChannelParams::default_sync());
        let mut kernel = Kernel::new("pktgen", SimTime::from_us(100));
        kernel.add_port(gen_end);
        let mut pg = PktGen::new(PktGenConfig {
            rate_bps: 0,
            ..Default::default()
        });
        for i in 0..5u64 {
            peer.send_raw(SimTime::from_us(1 + i), MSG_ETH_PACKET, &[0u8; 64])
                .unwrap();
        }
        peer.send_raw(SimTime::from_us(100), MSG_SYNC, &[]).unwrap();
        while kernel.step(&mut pg, 1024) == StepOutcome::Progressed {}
        assert_eq!(pg.received, 5);
    }
}
