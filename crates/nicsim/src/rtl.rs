//! Cycle-driven Corundum data path ("RTL" model).
//!
//! Stand-in for the Verilator simulation of the unmodified Corundum Verilog
//! (§6.3). Driver-visible behaviour is identical to the behavioural Corundum
//! model ([`crate::behavioral`]), but the data path is clocked: every DMA
//! engine transfer, descriptor fetch, and MAC word crossing is charged in
//! cycles of a configurable core clock (250 MHz by default, as in the paper's
//! setup), and the active cycles are simulated individually. This gives the
//! same speed/accuracy trade-off position as RTL simulation in the paper:
//! much higher simulation cost per packet, lower throughput per simulated
//! second, and cycle-quantized latencies.

use simbricks_base::{Kernel, Model, OwnedMsg, PortId, SimTime};

use crate::behavioral::{BehavioralNic, NicConfig, NicStats, NicVariant};

/// RTL model configuration.
#[derive(Clone, Copy, Debug)]
pub struct RtlConfig {
    /// Core clock in Hz (paper: 250 MHz).
    pub clock_hz: u64,
    /// Pipeline cycles charged per descriptor fetch / write-back.
    pub cycles_per_desc: u64,
    /// Pipeline cycles charged per 64-byte word of packet data.
    pub cycles_per_word: u64,
    /// Fixed pipeline depth (cycles) added to every packet in each direction.
    pub pipeline_depth: u64,
    /// Ethernet line rate of the MAC.
    pub eth_bandwidth_bps: u64,
}

impl Default for RtlConfig {
    fn default() -> Self {
        RtlConfig {
            clock_hz: 250_000_000,
            cycles_per_desc: 8,
            cycles_per_word: 1,
            pipeline_depth: 64,
            eth_bandwidth_bps: simbricks_base::bw::B100G,
        }
    }
}

/// The cycle-driven Corundum model. It wraps the behavioural Corundum data
/// path and inserts clocked delay stages: messages from the host and the
/// network are only presented to the data path on clock edges, after the
/// configured number of active cycles has been simulated.
pub struct CorundumRtlNic {
    inner: BehavioralNic,
    cfg: RtlConfig,
    cycle: SimTime,
    /// Messages waiting to enter the data path: (ready time, port, message).
    staged: std::collections::VecDeque<(SimTime, PortId, OwnedMsg)>,
    /// Number of clock cycles this model has explicitly simulated.
    pub cycles_simulated: u64,
    clock_armed: bool,
}

const TOK_CLOCK: u64 = 0x7f << 56;

impl CorundumRtlNic {
    pub fn new(cfg: RtlConfig) -> Self {
        let mut nic_cfg = NicConfig::corundum();
        nic_cfg.eth_bandwidth_bps = cfg.eth_bandwidth_bps;
        // The behavioural processing latency is replaced by explicit cycles.
        nic_cfg.processing_latency = SimTime::ZERO;
        CorundumRtlNic {
            inner: BehavioralNic::new(nic_cfg),
            cfg,
            cycle: SimTime::from_ps(1_000_000_000_000u64 / cfg.clock_hz.max(1)),
            staged: std::collections::VecDeque::new(),
            cycles_simulated: 0,
            clock_armed: false,
        }
    }

    pub fn stats(&self) -> NicStats {
        self.inner.stats()
    }

    pub fn variant(&self) -> NicVariant {
        self.inner.variant()
    }

    /// Virtual duration of one core clock cycle.
    pub fn cycle_time(&self) -> SimTime {
        self.cycle
    }

    fn cycles_for(&self, msg: &OwnedMsg) -> u64 {
        // Descriptor-sized and control messages take a fixed handful of
        // cycles; packet payloads additionally pay per 64-byte word.
        let words = (msg.data.len() as u64).div_ceil(64);
        self.cfg.pipeline_depth + self.cfg.cycles_per_desc + words * self.cfg.cycles_per_word
    }

    fn arm_clock(&mut self, k: &mut Kernel) {
        if !self.clock_armed {
            self.clock_armed = true;
            k.schedule_in(self.cycle, TOK_CLOCK);
        }
    }

    fn tick(&mut self, k: &mut Kernel) {
        self.clock_armed = false;
        self.cycles_simulated += 1;
        let now = k.now();
        // Release every staged message whose pipeline traversal completed.
        loop {
            let ready = matches!(self.staged.front(), Some((t, _, _)) if *t <= now);
            if !ready {
                break;
            }
            let (_, port, msg) = self.staged.pop_front().unwrap();
            self.inner.on_msg(k, port, msg);
        }
        if !self.staged.is_empty() {
            self.arm_clock(k);
        }
    }
}

impl Model for CorundumRtlNic {
    fn init(&mut self, k: &mut Kernel) {
        self.inner.init(k);
    }

    fn on_msg(&mut self, k: &mut Kernel, port: PortId, msg: OwnedMsg) {
        let cycles = self.cycles_for(&msg);
        let ready = k.now() + self.cycle.mul(cycles);
        self.staged.push_back((ready, port, msg));
        self.arm_clock(k);
    }

    fn on_timer(&mut self, k: &mut Kernel, token: u64) {
        if token & (0xffu64 << 56) == TOK_CLOCK {
            self.tick(k);
        } else {
            self.inner.on_timer(k, token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::*;
    use simbricks_base::{channel_pair, ChannelParams, StepOutcome, MSG_SYNC};
    use simbricks_eth::MSG_ETH_PACKET;
    use simbricks_pcie::{DevToHost, HostToDev};

    #[test]
    fn cycle_time_and_config() {
        let nic = CorundumRtlNic::new(RtlConfig::default());
        assert_eq!(nic.cycle_time(), SimTime::from_ns(4));
        assert_eq!(nic.variant(), NicVariant::Corundum);
    }

    #[test]
    fn rtl_model_processes_mmio_after_clocked_delay_and_simulates_cycles() {
        let (nic_pcie, mut host) = channel_pair(ChannelParams::default_sync());
        let (nic_eth, mut net) = channel_pair(ChannelParams::default_sync());
        let mut kernel = Kernel::new("corundum-rtl", SimTime::from_ms(1));
        kernel.add_port(nic_pcie);
        kernel.add_port(nic_eth);
        let mut nic = CorundumRtlNic::new(RtlConfig::default());

        // Enable the device and read the control register back.
        let (ty, p) = HostToDev::MmioWrite {
            req_id: 1,
            bar: 0,
            offset: REG_CTRL,
            data: 1u64.to_le_bytes().to_vec().into(),
        }
        .encode();
        host.send_raw(SimTime::from_us(1), ty, &p).unwrap();
        let (ty, p) = HostToDev::MmioRead {
            req_id: 2,
            bar: 0,
            offset: REG_CTRL,
            len: 8,
        }
        .encode();
        host.send_raw(SimTime::from_us(1), ty, &p).unwrap();
        host.send_raw(SimTime::from_us(500), MSG_SYNC, &[]).unwrap();
        net.send_raw(SimTime::from_us(500), MSG_SYNC, &[]).unwrap();

        while kernel.step(&mut nic, 4096) == StepOutcome::Progressed {}

        let mut dev_info_seen = false;
        let mut read_value = None;
        let mut completion_time = SimTime::ZERO;
        while let Some(m) = host.recv_raw() {
            match DevToHost::decode(m.ty, &m.data) {
                Some(DevToHost::DevInfo(info)) => {
                    dev_info_seen = true;
                    assert_eq!(info.vendor_id, ids::VENDOR_CORUNDUM);
                }
                Some(DevToHost::MmioComplete { req_id: 2, data }) => {
                    read_value = Some(u64::from_le_bytes(data[..8].try_into().unwrap()));
                    completion_time = m.timestamp;
                }
                _ => {}
            }
        }
        assert!(dev_info_seen);
        assert_eq!(read_value, Some(1), "CTRL readback sees the enable bit");
        // The raw-injected request is processed at 1 us; the pipeline adds at
        // least 64+8 cycles of 4 ns = 288 ns before the completion leaves,
        // and the reply carries the 500 ns PCIe channel latency.
        assert!(completion_time >= SimTime::from_ns(1000 + 288 + 500));
        assert!(nic.cycles_simulated > 0, "active cycles were stepped");
    }

    #[test]
    fn rx_without_buffers_is_held_then_dropped_after_pipeline() {
        // Frames arriving with no posted RX descriptors are held in the NIC's
        // internal FIFO; once it fills, further frames are tail-dropped.
        let (nic_pcie, mut host) = channel_pair(ChannelParams::default_sync());
        let (nic_eth, mut net) =
            channel_pair(ChannelParams::default_sync().with_queue_len(256));
        let mut kernel = Kernel::new("corundum-rtl", SimTime::from_us(400));
        kernel.add_port(nic_pcie);
        kernel.add_port(nic_eth);
        let mut nic = CorundumRtlNic::new(RtlConfig::default());
        // Enable, but never post RX buffers.
        let (ty, p) = HostToDev::MmioWrite {
            req_id: 1,
            bar: 0,
            offset: REG_CTRL,
            data: 1u64.to_le_bytes().to_vec().into(),
        }
        .encode();
        host.send_raw(SimTime::from_us(1), ty, &p).unwrap();
        let burst = crate::behavioral::RX_FIFO_FRAMES as u64 + 3;
        for i in 0..burst {
            net.send_raw(SimTime::from_us(2 + i), MSG_ETH_PACKET, &[0u8; 512])
                .unwrap();
        }
        host.send_raw(SimTime::from_us(400), MSG_SYNC, &[]).unwrap();
        net.send_raw(SimTime::from_us(400), MSG_SYNC, &[]).unwrap();
        while kernel.step(&mut nic, 4096) == StepOutcome::Progressed {}
        assert_eq!(nic.stats().rx_dropped_no_buffer, 3);
        assert_eq!(nic.stats().rx_packets, 0, "nothing reached host memory");
        // Every frame is 8 words: the pipeline simulated at least
        // 64 + 8 + 8 cycles for each.
        assert!(nic.cycles_simulated >= 1);
    }
}
