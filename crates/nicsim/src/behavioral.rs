//! Behavioural NIC models (Intel i40e, Corundum, e1000).
//!
//! All three share the descriptor-ring data path implemented here and differ
//! in the driver-visible completion and interrupt mechanisms:
//!
//! | Variant   | RX/TX completion signalling              | Interrupts          |
//! |-----------|------------------------------------------|---------------------|
//! | I40e      | descriptor write-back (DD bit in memory) | MSI-X, ITR throttle |
//! | E1000     | descriptor write-back (DD bit in memory) | MSI-X + ICR readout |
//! | Corundum  | head-index register read via MMIO (§8.1) | MSI-X, immediate    |
//!
//! The Corundum difference is the root cause the paper's §8.1 case study
//! identifies: discovering completions through MMIO reads stalls the CPU for
//! a full PCIe round trip per batch, so doubling the PCIe latency hurts
//! Corundum throughput while leaving the i40e unaffected.

use std::collections::VecDeque;

use simbricks_base::pktbuf::PktBuf;
use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simbricks_base::{Kernel, Model, OwnedMsg, PortId, SimTime, SyncLookahead};
use simbricks_eth::{send_packet_buf, serialization_delay, EthPacket};
use simbricks_pcie::{DevToHost, DeviceInfo, HostToDev};

use crate::nicbm::{DmaEngine, IntModeration};
use crate::regs::*;

/// Which NIC the behavioural model emulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NicVariant {
    I40e,
    Corundum,
    E1000,
}

/// Static NIC configuration.
#[derive(Clone, Copy, Debug)]
pub struct NicConfig {
    pub variant: NicVariant,
    /// Ethernet port line rate.
    pub eth_bandwidth_bps: u64,
    /// Default interrupt throttling interval (drivers can override via ITR).
    pub default_itr: SimTime,
    /// Extra per-packet processing latency inside the NIC data path.
    pub processing_latency: SimTime,
}

impl NicConfig {
    pub fn i40e() -> Self {
        NicConfig {
            variant: NicVariant::I40e,
            eth_bandwidth_bps: simbricks_base::bw::B40G,
            default_itr: SimTime::from_us(2),
            processing_latency: SimTime::from_ns(300),
        }
    }
    pub fn corundum() -> Self {
        NicConfig {
            variant: NicVariant::Corundum,
            eth_bandwidth_bps: simbricks_base::bw::B100G,
            default_itr: SimTime::ZERO,
            processing_latency: SimTime::from_ns(400),
        }
    }
    pub fn e1000() -> Self {
        NicConfig {
            variant: NicVariant::E1000,
            eth_bandwidth_bps: simbricks_base::bw::GBPS,
            default_itr: SimTime::ZERO,
            processing_latency: SimTime::from_ns(500),
        }
    }
}

/// Counters for reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct NicStats {
    pub tx_packets: u64,
    pub tx_bytes: u64,
    pub rx_packets: u64,
    pub rx_bytes: u64,
    pub rx_dropped_no_buffer: u64,
    pub interrupts: u64,
    pub mmio_reads: u64,
    pub mmio_writes: u64,
}

/// DMA contexts of the data path.
#[derive(Clone)]
enum DmaCtx {
    TxDescFetch { idx: u32 },
    TxBufFetch { idx: u32, tso: bool },
    TxWriteback,
    RxDescFetch { idx: u32, frame: PktBuf },
    RxDataWrite { idx: u32, len: u16 },
    RxWriteback { idx: u32 },
}

/// How many descriptor/buffer DMA operations the NIC keeps in flight per
/// direction. Real NICs pipeline descriptor prefetches and payload DMA
/// aggressively, which is what makes their throughput largely insensitive to
/// the PCIe round-trip latency (§8.1: doubling the PCIe latency leaves i40e
/// throughput unchanged).
const DMA_PIPELINE_DEPTH: u32 = 16;

/// Frames the NIC can buffer internally while waiting for receive
/// descriptors (packets beyond this are tail-dropped).
pub(crate) const RX_FIFO_FRAMES: usize = 64;

#[derive(Default)]
struct QueuePair {
    tx_base: u64,
    tx_len: u32,
    tx_tail: u32,
    tx_head: u32,
    /// Next TX descriptor index to fetch (runs ahead of `tx_head` by the
    /// number of in-flight TX operations).
    tx_fetch_next: u32,
    tx_inflight: u32,
    rx_base: u64,
    rx_len: u32,
    rx_tail: u32,
    rx_head: u32,
    /// Next RX descriptor index to consume (runs ahead of `rx_head`).
    rx_fetch_next: u32,
    rx_inflight: u32,
}

impl QueuePair {
    /// TX descriptors posted by the driver but not yet fetched.
    fn tx_fetchable(&self) -> bool {
        self.tx_len > 0 && self.tx_fetch_next != self.tx_tail
    }
    /// RX descriptors posted by the driver but not yet consumed by a fetch.
    fn rx_buffer_available(&self) -> bool {
        self.rx_len > 0 && self.rx_fetch_next != self.rx_tail
    }
}

const TOK_TX_DONE: u64 = 1 << 56;
const TOK_ITR: u64 = 2 << 56;

/// The shared behavioural NIC model. Port 0 must be the PCIe channel to the
/// host simulator, port 1 the Ethernet channel to the network simulator.
pub struct BehavioralNic {
    cfg: NicConfig,
    enabled: bool,
    mac: u64,
    flags: u64,
    icr: u64,
    /// Wire MSS for TCP segmentation offload (0 = TSO disabled). Programmed
    /// by the driver through [`Q_TSO_MSS`]; only honored by the i40e model.
    tso_mss: u32,
    queue: QueuePair,
    dma: DmaEngine<DmaCtx>,
    itr: IntModeration,
    /// Frames fetched from host memory, waiting for the egress link
    /// (pooled buffers handed on by refcount move, never copied).
    tx_fifo: VecDeque<PktBuf>,
    tx_busy_until: SimTime,
    tx_xmit_scheduled: bool,
    /// Frames received from the network, waiting for RX descriptors/DMA
    /// (pooled buffers, zero-copy from the Ethernet channel).
    rx_fifo: VecDeque<PktBuf>,
    stats: NicStats,
    pcie_port: PortId,
    eth_port: PortId,
}

impl BehavioralNic {
    pub fn new(cfg: NicConfig) -> Self {
        // Ports are fixed by convention: 0 = PCIe, 1 = Ethernet.
        let pcie_port = PortId(0);
        let eth_port = PortId(1);
        BehavioralNic {
            cfg,
            enabled: false,
            mac: 0,
            flags: 0,
            icr: 0,
            tso_mss: 0,
            queue: QueuePair::default(),
            dma: DmaEngine::new(pcie_port),
            itr: IntModeration::new(pcie_port, 0, cfg.default_itr),
            tx_fifo: VecDeque::new(),
            tx_busy_until: SimTime::ZERO,
            tx_xmit_scheduled: false,
            rx_fifo: VecDeque::new(),
            stats: NicStats::default(),
            pcie_port,
            eth_port,
        }
    }

    pub fn stats(&self) -> NicStats {
        self.stats
    }

    pub fn variant(&self) -> NicVariant {
        self.cfg.variant
    }

    fn device_info(&self) -> DeviceInfo {
        match self.cfg.variant {
            NicVariant::I40e => DeviceInfo::nic(ids::VENDOR_INTEL, ids::DEVICE_I40E, BAR0_SIZE, 64),
            NicVariant::E1000 => DeviceInfo::nic(ids::VENDOR_INTEL, ids::DEVICE_E1000, BAR0_SIZE, 1),
            NicVariant::Corundum => {
                DeviceInfo::nic(ids::VENDOR_CORUNDUM, ids::DEVICE_CORUNDUM, BAR0_SIZE, 32)
            }
        }
    }

    // ------------------------------------------------------------------
    // Register file
    // ------------------------------------------------------------------

    fn reg_read(&mut self, offset: u64) -> u64 {
        self.stats.mmio_reads += 1;
        match offset {
            REG_CTRL => self.enabled as u64,
            REG_NQUEUES => 1,
            REG_FLAGS => self.flags,
            REG_MAC => self.mac,
            REG_ICR => {
                let v = self.icr;
                self.icr = 0; // read-to-clear
                v
            }
            o if o >= QUEUE_BASE => match o - QUEUE_BASE {
                Q_TX_BASE => self.queue.tx_base,
                Q_TX_LEN => self.queue.tx_len as u64,
                Q_TX_TAIL => self.queue.tx_tail as u64,
                Q_TX_HEAD => self.queue.tx_head as u64,
                Q_RX_BASE => self.queue.rx_base,
                Q_RX_LEN => self.queue.rx_len as u64,
                Q_RX_TAIL => self.queue.rx_tail as u64,
                Q_RX_HEAD => self.queue.rx_head as u64,
                Q_ITR => self.itr.interval.as_ns(),
                Q_TSO_MSS => self.tso_mss as u64,
                _ => 0,
            },
            _ => 0,
        }
    }

    fn reg_write(&mut self, k: &mut Kernel, offset: u64, value: u64) {
        self.stats.mmio_writes += 1;
        match offset {
            REG_CTRL => self.enabled = value & 1 != 0,
            REG_FLAGS => self.flags = value,
            REG_MAC => self.mac = value,
            o if o >= QUEUE_BASE => match o - QUEUE_BASE {
                Q_TX_BASE => self.queue.tx_base = value,
                Q_TX_LEN => self.queue.tx_len = value as u32,
                Q_TX_TAIL => {
                    self.queue.tx_tail = value as u32;
                    self.try_fetch_tx(k);
                }
                Q_RX_BASE => self.queue.rx_base = value,
                Q_RX_LEN => self.queue.rx_len = value as u32,
                Q_RX_TAIL => {
                    self.queue.rx_tail = value as u32;
                    self.try_start_rx(k);
                }
                Q_ITR => self.itr.interval = SimTime::from_ns(value),
                Q_TSO_MSS
                    // Only the i40e advertises TSO; other models ignore it.
                    if self.cfg.variant == NicVariant::I40e => {
                        self.tso_mss = value as u32;
                    }
                _ => {}
            },
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // TX path: doorbell -> descriptor fetch -> buffer fetch -> transmit ->
    // completion (write-back or head register) -> interrupt
    // ------------------------------------------------------------------

    fn try_fetch_tx(&mut self, k: &mut Kernel) {
        if !self.enabled {
            return;
        }
        // Pipeline: keep several descriptor fetches in flight at once.
        while self.queue.tx_inflight < DMA_PIPELINE_DEPTH && self.queue.tx_fetchable() {
            let idx = self.queue.tx_fetch_next % self.queue.tx_len.max(1);
            let addr = self.queue.tx_base + idx as u64 * DESC_SIZE as u64;
            self.queue.tx_fetch_next = (self.queue.tx_fetch_next + 1) % self.queue.tx_len.max(1);
            self.queue.tx_inflight += 1;
            self.dma
                .read(k, addr, DESC_SIZE, DmaCtx::TxDescFetch { idx });
        }
    }

    fn tx_desc_fetched(&mut self, k: &mut Kernel, idx: u32, data: &[u8]) {
        let Some(desc) = Descriptor::from_bytes(data) else {
            self.queue.tx_inflight = self.queue.tx_inflight.saturating_sub(1);
            return;
        };
        let tso = desc.flags & DESC_TSO != 0;
        self.dma.read(
            k,
            desc.addr,
            desc.len as usize,
            DmaCtx::TxBufFetch { idx, tso },
        );
    }

    fn tx_buf_fetched(&mut self, k: &mut Kernel, idx: u32, tso: bool, frame: PktBuf) {
        // Segmentation offload: cut a TCP super-segment into wire segments
        // (built in place inside pooled buffers).
        let wire_frames = if tso && self.cfg.variant == NicVariant::I40e && self.tso_mss > 0 {
            segment_tso(k.pool(), &frame, self.tso_mss as usize).unwrap_or_else(|| vec![frame])
        } else {
            vec![frame]
        };
        // Queue the frame(s) for egress serialization.
        let now = k.now();
        for frame in wire_frames {
            let start = now.max(self.tx_busy_until) + self.cfg.processing_latency;
            let done = start + serialization_delay(frame.len(), self.cfg.eth_bandwidth_bps);
            self.tx_busy_until = done;
            self.tx_fifo.push_back(frame);
            self.tx_xmit_scheduled = true;
            k.schedule_at(done, TOK_TX_DONE);
        }

        // Complete the descriptor. DMA completions arrive in issue order, so
        // advancing the head here keeps it consistent with the ring order
        // even with several operations in flight.
        let desc_addr = self.queue.tx_base + idx as u64 * DESC_SIZE as u64;
        self.queue.tx_head = (self.queue.tx_head + 1) % self.queue.tx_len.max(1);
        self.queue.tx_inflight = self.queue.tx_inflight.saturating_sub(1);
        match self.cfg.variant {
            NicVariant::I40e | NicVariant::E1000 => {
                // Write DD back into the descriptor status field.
                let wb = Descriptor {
                    addr: 0,
                    len: 0,
                    flags: 0,
                    status: DESC_DD,
                };
                self.dma
                    .write(k, desc_addr + 8, &wb.to_bytes()[8..], DmaCtx::TxWriteback);
            }
            NicVariant::Corundum => {
                // Completion is discovered by the driver reading Q_TX_HEAD.
            }
        }
        self.icr |= ICR_TXQ0;
        self.raise_interrupt(k);
        // Chain: fetch the next pending descriptor.
        self.try_fetch_tx(k);
    }

    fn transmit_ready(&mut self, k: &mut Kernel) {
        self.tx_xmit_scheduled = false;
        if let Some(frame) = self.tx_fifo.pop_front() {
            self.stats.tx_packets += 1;
            self.stats.tx_bytes += frame.len() as u64;
            k.log("nic_tx", frame.len() as u64, 0);
            send_packet_buf(k, self.eth_port, frame);
        }
    }

    // ------------------------------------------------------------------
    // RX path: packet arrival -> descriptor fetch -> payload DMA write ->
    // completion -> interrupt
    // ------------------------------------------------------------------

    fn try_start_rx(&mut self, k: &mut Kernel) {
        if !self.enabled {
            return;
        }
        // Pipeline: start a descriptor fetch for every buffered frame as long
        // as posted descriptors and pipeline slots are available.
        while !self.rx_fifo.is_empty()
            && self.queue.rx_inflight < DMA_PIPELINE_DEPTH
            && self.queue.rx_buffer_available()
        {
            let frame = self.rx_fifo.pop_front().expect("checked non-empty");
            let idx = self.queue.rx_fetch_next % self.queue.rx_len.max(1);
            let addr = self.queue.rx_base + idx as u64 * DESC_SIZE as u64;
            self.queue.rx_fetch_next = (self.queue.rx_fetch_next + 1) % self.queue.rx_len.max(1);
            self.queue.rx_inflight += 1;
            self.dma
                .read(k, addr, DESC_SIZE, DmaCtx::RxDescFetch { idx, frame });
        }
    }

    fn rx_desc_fetched(&mut self, k: &mut Kernel, idx: u32, frame: PktBuf, data: &[u8]) {
        let Some(desc) = Descriptor::from_bytes(data) else {
            self.queue.rx_inflight = self.queue.rx_inflight.saturating_sub(1);
            return;
        };
        let len = frame.len() as u16;
        self.stats.rx_packets += 1;
        self.stats.rx_bytes += frame.len() as u64;
        self.dma
            .write(k, desc.addr, &frame, DmaCtx::RxDataWrite { idx, len });
    }

    fn rx_data_written(&mut self, k: &mut Kernel, idx: u32, len: u16) {
        let desc_addr = self.queue.rx_base + idx as u64 * DESC_SIZE as u64;
        match self.cfg.variant {
            NicVariant::I40e | NicVariant::E1000 => {
                let wb = Descriptor {
                    addr: 0,
                    len,
                    flags: DESC_EOP | DESC_CSUM_OK,
                    status: DESC_DD,
                };
                self.dma
                    .write(k, desc_addr + 8, &wb.to_bytes()[8..], DmaCtx::RxWriteback { idx });
            }
            NicVariant::Corundum => {
                self.rx_complete(k, idx);
            }
        }
    }

    fn rx_complete(&mut self, k: &mut Kernel, _idx: u32) {
        // DMA completions arrive in issue order, so the head advances in ring
        // order even with several receives in flight.
        self.queue.rx_head = (self.queue.rx_head + 1) % self.queue.rx_len.max(1);
        self.queue.rx_inflight = self.queue.rx_inflight.saturating_sub(1);
        self.icr |= ICR_RXQ0;
        self.raise_interrupt(k);
        k.log("nic_rx_compl", self.queue.rx_head as u64, 0);
        self.try_start_rx(k);
    }

    fn raise_interrupt(&mut self, k: &mut Kernel) {
        self.stats.interrupts += 1;
        if let Some(deadline) = self.itr.request(k) {
            k.schedule_at(deadline, TOK_ITR);
        }
    }
}

fn dma_ctx_snapshot(ctx: &DmaCtx, w: &mut SnapWriter) {
    match ctx {
        DmaCtx::TxDescFetch { idx } => {
            w.u8(0);
            w.u32(*idx);
        }
        DmaCtx::TxBufFetch { idx, tso } => {
            w.u8(1);
            w.u32(*idx);
            w.bool(*tso);
        }
        DmaCtx::TxWriteback => w.u8(2),
        DmaCtx::RxDescFetch { idx, frame } => {
            w.u8(3);
            w.u32(*idx);
            w.bytes(frame);
        }
        DmaCtx::RxDataWrite { idx, len } => {
            w.u8(4);
            w.u32(*idx);
            w.u16(*len);
        }
        DmaCtx::RxWriteback { idx } => {
            w.u8(5);
            w.u32(*idx);
        }
    }
}

fn dma_ctx_restore(r: &mut SnapReader) -> SnapResult<DmaCtx> {
    Ok(match r.u8()? {
        0 => DmaCtx::TxDescFetch { idx: r.u32()? },
        1 => DmaCtx::TxBufFetch {
            idx: r.u32()?,
            tso: r.bool()?,
        },
        2 => DmaCtx::TxWriteback,
        3 => DmaCtx::RxDescFetch {
            idx: r.u32()?,
            frame: PktBuf::from_vec(r.bytes()?),
        },
        4 => DmaCtx::RxDataWrite {
            idx: r.u32()?,
            len: r.u16()?,
        },
        5 => DmaCtx::RxWriteback { idx: r.u32()? },
        v => return Err(SnapError::Corrupt(format!("bad dma context tag {v}"))),
    })
}

impl Model for BehavioralNic {
    fn init(&mut self, k: &mut Kernel) {
        // Device discovery: announce ourselves to the host (INIT_DEV).
        let (ty, payload) = DevToHost::DevInfo(self.device_info()).encode();
        k.send(self.pcie_port, ty, &payload);
    }

    fn on_msg(&mut self, k: &mut Kernel, port: PortId, msg: OwnedMsg) {
        if port == self.eth_port {
            if let Some(pkt) = EthPacket::decode_owned(msg) {
                k.log("nic_rx", pkt.len() as u64, 0);
                if self.rx_fifo.len() >= RX_FIFO_FRAMES {
                    // Internal buffering exhausted: tail drop at the NIC.
                    self.stats.rx_dropped_no_buffer += 1;
                } else {
                    self.rx_fifo.push_back(pkt.frame);
                    self.try_start_rx(k);
                }
            }
            return;
        }
        // PCIe message from the host (zero-copy decode: bulk payloads are
        // slice views into the received buffer).
        match HostToDev::decode_buf(msg.ty, &msg.data) {
            Some(HostToDev::MmioRead { req_id, offset, len, .. }) => {
                let v = self.reg_read(offset);
                let data = PktBuf::from(&v.to_le_bytes()[..len.min(8)]);
                let (ty, p) = DevToHost::MmioComplete { req_id, data }.encode();
                k.send(self.pcie_port, ty, &p);
            }
            Some(HostToDev::MmioWrite { req_id, offset, data, .. }) => {
                let mut buf = [0u8; 8];
                let n = data.len().min(8);
                buf[..n].copy_from_slice(&data[..n]);
                self.reg_write(k, offset, u64::from_le_bytes(buf));
                let (ty, p) = DevToHost::MmioComplete {
                    req_id,
                    data: PktBuf::empty(),
                }
                .encode();
                k.send(self.pcie_port, ty, &p);
            }
            Some(HostToDev::DmaComplete { req_id, data }) => match self.dma.complete(req_id) {
                Some(DmaCtx::TxDescFetch { idx }) => self.tx_desc_fetched(k, idx, &data),
                Some(DmaCtx::TxBufFetch { idx, tso }) => self.tx_buf_fetched(k, idx, tso, data),
                Some(DmaCtx::TxWriteback) => {}
                Some(DmaCtx::RxDescFetch { idx, frame }) => {
                    self.rx_desc_fetched(k, idx, frame, &data)
                }
                Some(DmaCtx::RxDataWrite { idx, len }) => self.rx_data_written(k, idx, len),
                Some(DmaCtx::RxWriteback { idx }) => self.rx_complete(k, idx),
                None => {}
            },
            Some(HostToDev::IntStatus(_)) => {}
            None => {}
        }
    }

    fn on_timer(&mut self, k: &mut Kernel, token: u64) {
        match token & (0xffu64 << 56) {
            TOK_TX_DONE => self.transmit_ready(k),
            TOK_ITR => self.itr.on_timer(k),
            _ => {}
        }
    }

    // Frames leave the Ethernet port only from the TX-completion timer
    // (`transmit_ready`), and a received frame is DMAed to the host, never
    // echoed — so the Ethernet side declares zero lookahead and its promise
    // widens past its own pending input. The PCIe side stays undeclared: a
    // doorbell write hairpins into an immediate DMA read on the same link.
    fn sync_lookahead_on(&self, port: PortId) -> Option<SyncLookahead> {
        (port == self.eth_port).then_some(SyncLookahead::ExcludeSelf(SimTime::ZERO))
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.bool(self.enabled);
        w.u64(self.mac);
        w.u64(self.flags);
        w.u64(self.icr);
        w.u32(self.tso_mss);
        for v in [
            self.queue.tx_base,
            self.queue.rx_base,
        ] {
            w.u64(v);
        }
        for v in [
            self.queue.tx_len,
            self.queue.tx_tail,
            self.queue.tx_head,
            self.queue.tx_fetch_next,
            self.queue.tx_inflight,
            self.queue.rx_len,
            self.queue.rx_tail,
            self.queue.rx_head,
            self.queue.rx_fetch_next,
            self.queue.rx_inflight,
        ] {
            w.u32(v);
        }
        self.dma.snapshot_with(w, dma_ctx_snapshot)?;
        self.itr.snapshot(w)?;
        w.usize(self.tx_fifo.len());
        for f in &self.tx_fifo {
            w.bytes(f);
        }
        w.time(self.tx_busy_until);
        w.bool(self.tx_xmit_scheduled);
        w.usize(self.rx_fifo.len());
        for f in &self.rx_fifo {
            w.bytes(f);
        }
        for v in [
            self.stats.tx_packets,
            self.stats.tx_bytes,
            self.stats.rx_packets,
            self.stats.rx_bytes,
            self.stats.rx_dropped_no_buffer,
            self.stats.interrupts,
            self.stats.mmio_reads,
            self.stats.mmio_writes,
        ] {
            w.u64(v);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.enabled = r.bool()?;
        self.mac = r.u64()?;
        self.flags = r.u64()?;
        self.icr = r.u64()?;
        self.tso_mss = r.u32()?;
        self.queue.tx_base = r.u64()?;
        self.queue.rx_base = r.u64()?;
        self.queue.tx_len = r.u32()?;
        self.queue.tx_tail = r.u32()?;
        self.queue.tx_head = r.u32()?;
        self.queue.tx_fetch_next = r.u32()?;
        self.queue.tx_inflight = r.u32()?;
        self.queue.rx_len = r.u32()?;
        self.queue.rx_tail = r.u32()?;
        self.queue.rx_head = r.u32()?;
        self.queue.rx_fetch_next = r.u32()?;
        self.queue.rx_inflight = r.u32()?;
        self.dma.restore_with(r, dma_ctx_restore)?;
        self.itr.restore(r)?;
        self.tx_fifo.clear();
        for _ in 0..r.usize()? {
            self.tx_fifo.push_back(PktBuf::from_vec(r.bytes()?));
        }
        self.tx_busy_until = r.time()?;
        self.tx_xmit_scheduled = r.bool()?;
        self.rx_fifo.clear();
        for _ in 0..r.usize()? {
            self.rx_fifo.push_back(PktBuf::from_vec(r.bytes()?));
        }
        self.stats.tx_packets = r.u64()?;
        self.stats.tx_bytes = r.u64()?;
        self.stats.rx_packets = r.u64()?;
        self.stats.rx_bytes = r.u64()?;
        self.stats.rx_dropped_no_buffer = r.u64()?;
        self.stats.interrupts = r.u64()?;
        self.stats.mmio_reads = r.u64()?;
        self.stats.mmio_writes = r.u64()?;
        Ok(())
    }
}

/// Cut a TCP super-segment into wire segments of at most `mss` payload bytes,
/// replicating headers and adjusting sequence numbers, lengths, and checksums
/// — what the TSO engine of a real NIC does. Returns `None` (caller transmits
/// the frame unmodified) if the frame is not an IPv4/TCP data frame or does
/// not exceed one wire segment.
fn segment_tso(pool: &simbricks_base::BufPool, frame: &PktBuf, mss: usize) -> Option<Vec<PktBuf>> {
    use simbricks_proto::{tcp_payload_range, FrameBuilder, ParsedFrame, ParsedL4, TcpFlags};
    if mss == 0 {
        return None;
    }
    let parsed = ParsedFrame::parse(frame).ok()?;
    let ip = parsed.ipv4?;
    let hdr = match &parsed.l4 {
        ParsedL4::Tcp { header, .. } => header,
        _ => return None,
    };
    // Zero-copy payload view into the super-segment buffer.
    let (pstart, pend) = tcp_payload_range(frame)?;
    let payload = frame.slice(pstart, pend);
    if payload.len() <= mss {
        return None;
    }
    let mut out = Vec::with_capacity(payload.len().div_ceil(mss));
    let mut offset = 0usize;
    while offset < payload.len() {
        let end = (offset + mss).min(payload.len());
        let last = end == payload.len();
        let mut seg_hdr = *hdr;
        seg_hdr.seq = hdr.seq.wrapping_add(offset as u32);
        if !last {
            // FIN/PSH only apply to the final wire segment.
            seg_hdr.flags = TcpFlags(seg_hdr.flags.0 & !(TcpFlags::FIN.0 | TcpFlags::PSH.0));
        }
        out.push(FrameBuilder::tcp_pooled(
            pool,
            parsed.eth.src,
            parsed.eth.dst,
            ip.src,
            ip.dst,
            ip.ecn,
            &seg_hdr,
            &payload[offset..end],
        ));
        offset = end;
    }
    Some(out)
}

/// Intel i40e/X710-style behavioural NIC.
pub struct I40eNic;
impl I40eNic {
    pub fn model() -> BehavioralNic {
        BehavioralNic::new(NicConfig::i40e())
    }
}

/// Corundum behavioural NIC.
pub struct CorundumNic;
impl CorundumNic {
    pub fn model() -> BehavioralNic {
        BehavioralNic::new(NicConfig::corundum())
    }
}

/// e1000-style behavioural NIC (the model extracted from gem5).
pub struct E1000Nic;
impl E1000Nic {
    pub fn model() -> BehavioralNic {
        BehavioralNic::new(NicConfig::e1000())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, StepOutcome, MSG_SYNC};
    use simbricks_eth::MSG_ETH_PACKET;

    /// A miniature host: flat memory plus direct channel access, answering
    /// the NIC's DMA requests and issuing MMIO like a driver would.
    struct MiniHost {
        mem: Vec<u8>,
        pcie: simbricks_base::ChannelEnd,
        horizon: SimTime,
        next_req: u64,
        pub interrupts: u32,
    }

    impl MiniHost {
        fn new(pcie: simbricks_base::ChannelEnd) -> Self {
            MiniHost {
                mem: vec![0u8; 1 << 20],
                pcie,
                horizon: SimTime::from_us(1),
                next_req: 1,
                interrupts: 0,
            }
        }

        fn mmio_write(&mut self, offset: u64, value: u64) {
            let (ty, p) = HostToDev::MmioWrite {
                req_id: self.next_req,
                bar: 0,
                offset,
                data: value.to_le_bytes().to_vec().into(),
            }
            .encode();
            self.next_req += 1;
            self.pcie.send_raw(self.horizon, ty, &p).unwrap();
        }

        /// Answer outstanding NIC requests; returns received interrupts count.
        fn service(&mut self) {
            let mut replies = Vec::new();
            while let Some(m) = self.pcie.recv_raw() {
                match DevToHost::decode(m.ty, &m.data) {
                    Some(DevToHost::DmaRead { req_id, addr, len }) => {
                        let data = self.mem[addr as usize..addr as usize + len].to_vec();
                        replies.push(HostToDev::DmaComplete { req_id, data: data.into() });
                    }
                    Some(DevToHost::DmaWrite { req_id, addr, data }) => {
                        self.mem[addr as usize..addr as usize + data.len()]
                            .copy_from_slice(&data);
                        replies.push(HostToDev::DmaComplete {
                            req_id,
                            data: PktBuf::empty(),
                        });
                    }
                    Some(DevToHost::Interrupt { .. }) => self.interrupts += 1,
                    _ => {}
                }
            }
            for r in replies {
                let (ty, p) = r.encode();
                self.pcie.send_raw(self.horizon, ty, &p).unwrap();
            }
        }

        fn advance(&mut self, dt: SimTime) {
            self.horizon = self.horizon + dt;
            self.pcie.send_raw(self.horizon, MSG_SYNC, &[]).unwrap();
        }
    }

    fn run_nic(
        variant: NicVariant,
    ) -> (BehavioralNic, MiniHost, Vec<PktBuf>, simbricks_base::Kernel) {
        let cfg = match variant {
            NicVariant::I40e => NicConfig::i40e(),
            NicVariant::Corundum => NicConfig::corundum(),
            NicVariant::E1000 => NicConfig::e1000(),
        };
        let (nic_pcie, host_pcie) = channel_pair(ChannelParams::default_sync());
        let (nic_eth, mut net_eth) = channel_pair(ChannelParams::default_sync());
        let mut kernel = Kernel::new("nic", SimTime::from_ms(10));
        kernel.add_port(nic_pcie);
        kernel.add_port(nic_eth);
        let mut nic = BehavioralNic::new(cfg);
        let mut host = MiniHost::new(host_pcie);

        // Driver initialization: rings at fixed addresses, buffers behind them.
        const TX_RING: u64 = 0x1000;
        const RX_RING: u64 = 0x2000;
        const TX_BUF: u64 = 0x10000;
        const RX_BUF: u64 = 0x40000;
        host.mmio_write(REG_CTRL, 1);
        host.mmio_write(queue_reg(0, Q_TX_BASE), TX_RING);
        host.mmio_write(queue_reg(0, Q_TX_LEN), 64);
        host.mmio_write(queue_reg(0, Q_RX_BASE), RX_RING);
        host.mmio_write(queue_reg(0, Q_RX_LEN), 64);
        host.mmio_write(queue_reg(0, Q_ITR), 0);

        // Post 8 RX buffers.
        for i in 0..8u64 {
            let d = Descriptor {
                addr: RX_BUF + i * 2048,
                len: 2048,
                flags: 0,
                status: 0,
            };
            let off = (RX_RING + i * 16) as usize;
            host.mem[off..off + 16].copy_from_slice(&d.to_bytes());
        }
        host.mmio_write(queue_reg(0, Q_RX_TAIL), 8);

        // One TX packet: a 600-byte frame in host memory plus its descriptor.
        let frame: Vec<u8> = (0..600).map(|i| (i % 251) as u8).collect();
        host.mem[TX_BUF as usize..TX_BUF as usize + 600].copy_from_slice(&frame);
        let d = Descriptor {
            addr: TX_BUF,
            len: 600,
            flags: DESC_EOP,
            status: 0,
        };
        host.mem[TX_RING as usize..TX_RING as usize + 16].copy_from_slice(&d.to_bytes());
        host.mmio_write(queue_reg(0, Q_TX_TAIL), 1);

        // Inject one RX packet from the network side (timestamped before the
        // first sync the test harness will emit, keeping the channel
        // timestamps monotonic).
        let rx_frame: Vec<u8> = (0..300).map(|i| (i % 7) as u8).collect();
        net_eth
            .send_raw(SimTime::from_us(1), MSG_ETH_PACKET, &rx_frame)
            .unwrap();

        // Drive everything for a while.
        let mut tx_out = Vec::new();
        for _ in 0..500 {
            if kernel.step(&mut nic, 128) == StepOutcome::Finished {
                break;
            }
            host.service();
            host.advance(SimTime::from_us(2));
            net_eth
                .send_raw(host.horizon, MSG_SYNC, &[])
                .unwrap();
            while let Some(m) = net_eth.recv_raw() {
                if m.ty == MSG_ETH_PACKET {
                    tx_out.push(m.data);
                }
            }
            if host.horizon > SimTime::from_ms(2) {
                break;
            }
        }
        (nic, host, tx_out, kernel)
    }

    #[test]
    fn i40e_tx_and_rx_datapath() {
        let (nic, host, tx_out, _k) = run_nic(NicVariant::I40e);
        // TX: the frame placed in host memory left on the Ethernet port.
        assert_eq!(tx_out.len(), 1);
        assert_eq!(tx_out[0].len(), 600);
        assert_eq!(tx_out[0][5], 5 % 251);
        // TX descriptor write-back: DD set in host memory.
        let txd = Descriptor::from_bytes(&host.mem[0x1000..0x1010]).unwrap();
        assert!(txd.has_dd(), "i40e writes DD back for TX");
        // RX: packet data landed in the first posted RX buffer.
        assert_eq!(&host.mem[0x40000..0x40000 + 300],
                   (0..300).map(|i| (i % 7) as u8).collect::<Vec<_>>().as_slice());
        // RX descriptor write-back carries DD and the length.
        let rxd = Descriptor::from_bytes(&host.mem[0x2000..0x2010]).unwrap();
        assert!(rxd.has_dd());
        assert_eq!(rxd.len, 300);
        assert!(host.interrupts >= 1, "RX/TX raise interrupts");
        assert_eq!(nic.stats().tx_packets, 1);
        assert_eq!(nic.stats().rx_packets, 1);
    }

    #[test]
    fn corundum_reports_completions_via_head_registers_not_memory() {
        let (nic, host, tx_out, _k) = run_nic(NicVariant::Corundum);
        assert_eq!(tx_out.len(), 1);
        // No DD write-back in memory for Corundum.
        let rxd = Descriptor::from_bytes(&host.mem[0x2000..0x2010]).unwrap();
        assert!(!rxd.has_dd(), "Corundum does not write descriptors back");
        // But the RX data itself is there and the head index advanced.
        assert_eq!(host.mem[0x40000], 0);
        assert_eq!(host.mem[0x40001], 1 % 7);
        assert_eq!(nic.queue.rx_head, 1);
        assert_eq!(nic.queue.tx_head, 1);
        assert!(host.interrupts >= 1);
    }

    #[test]
    fn e1000_sets_icr_bits() {
        let (mut nic, _host, tx_out, _k) = run_nic(NicVariant::E1000);
        assert_eq!(tx_out.len(), 1);
        let icr = nic.reg_read(REG_ICR);
        assert!(icr & ICR_RXQ0 != 0, "RX cause latched");
        assert!(icr & ICR_TXQ0 != 0, "TX cause latched");
        // Read-to-clear semantics.
        assert_eq!(nic.reg_read(REG_ICR), 0);
    }

    #[test]
    fn rx_without_posted_buffers_is_dropped_once_the_fifo_fills() {
        let (nic_pcie, host_pcie) = channel_pair(ChannelParams::default_sync());
        let (nic_eth, mut net_eth) =
            channel_pair(ChannelParams::default_sync().with_queue_len(256));
        let mut kernel = Kernel::new("nic", SimTime::from_ms(1));
        kernel.add_port(nic_pcie);
        kernel.add_port(nic_eth);
        let mut nic = BehavioralNic::new(NicConfig::i40e());
        let mut host = MiniHost::new(host_pcie);
        host.mmio_write(REG_CTRL, 1);
        // No RX descriptors are ever posted: the NIC buffers up to its
        // internal FIFO capacity and tail-drops the rest.
        let burst = RX_FIFO_FRAMES as u64 + 10;
        for _ in 0..burst {
            net_eth
                .send_raw(SimTime::from_us(2), MSG_ETH_PACKET, &[1, 2, 3, 4])
                .unwrap();
        }
        for _ in 0..80 {
            if kernel.step(&mut nic, 256) == StepOutcome::Finished {
                break;
            }
            host.service();
            host.advance(SimTime::from_us(5));
            net_eth.send_raw(host.horizon, MSG_SYNC, &[]).unwrap();
        }
        assert_eq!(nic.stats().rx_dropped_no_buffer, 10);
        assert_eq!(nic.stats().rx_packets, 0, "nothing was delivered to memory");
    }

    #[test]
    fn tso_segmentation_preserves_payload_flags_and_checksums() {
        use simbricks_proto::{
            FrameBuilder, Ipv4Addr, MacAddr, ParsedFrame, ParsedL4, TcpFlags, TcpHeader,
        };
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 253) as u8).collect();
        let hdr = TcpHeader {
            src_port: 1111,
            dst_port: 2222,
            seq: 1_000_000,
            ack: 42,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 4096,
            mss: None, wscale: None,
        };
        let super_frame = FrameBuilder::tcp(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            simbricks_proto::Ecn::Ect0,
            &hdr,
            &payload,
        );
        let pool = simbricks_base::BufPool::new();
        let super_frame: PktBuf = super_frame.into();
        let segs = segment_tso(&pool, &super_frame, 1460).expect("segmented");
        assert_eq!(segs.len(), 4, "5000 bytes at 1460 MSS = 4 wire segments");
        let mut reassembled = Vec::new();
        for (i, seg) in segs.iter().enumerate() {
            let p = ParsedFrame::parse(seg).unwrap();
            assert!(p.checksums_ok, "segment {i} has valid checksums");
            let ip = p.ipv4.unwrap();
            assert_eq!(ip.ecn, simbricks_proto::Ecn::Ect0, "ECN preserved");
            match p.l4 {
                ParsedL4::Tcp { header, payload } => {
                    assert_eq!(
                        header.seq,
                        hdr.seq.wrapping_add(reassembled.len() as u32),
                        "sequence numbers advance by payload"
                    );
                    let is_last = i == segs.len() - 1;
                    assert_eq!(
                        header.flags.contains(TcpFlags::PSH),
                        is_last,
                        "PSH only on the final segment"
                    );
                    assert!(payload.len() <= 1460);
                    reassembled.extend_from_slice(&payload);
                }
                _ => panic!("not tcp"),
            }
        }
        assert_eq!(reassembled, payload, "payload is preserved byte for byte");
        // Frames at or below the MSS, or non-TCP frames, are left alone.
        assert!(segment_tso(&pool, &segs[0], 1460).is_none());
        assert!(segment_tso(&pool, &PktBuf::from(&[0u8; 40]), 1460).is_none());
        assert!(segment_tso(&pool, &super_frame, 0).is_none());
    }

    #[cfg(feature = "proptest")]
    mod properties {
        use super::*;
        use proptest::prelude::*;
        use simbricks_proto::{
            FrameBuilder, Ipv4Addr, MacAddr, ParsedFrame, ParsedL4, TcpFlags, TcpHeader,
        };

        proptest! {
            /// The TSO engine preserves the byte stream exactly for arbitrary
            /// payload sizes and MSS values, respects the MSS on every wire
            /// segment, and produces verifiable checksums.
            #[test]
            fn tso_roundtrip(payload_len in 1usize..6000, mss in 100usize..2000, seq in any::<u32>()) {
                let payload: Vec<u8> = (0..payload_len).map(|i| (i % 241) as u8).collect();
                let hdr = TcpHeader {
                    src_port: 7,
                    dst_port: 8,
                    seq,
                    ack: 99,
                    flags: TcpFlags::ACK | TcpFlags::PSH,
                    window: 2000,
                    mss: None, wscale: None,
                };
                let frame = FrameBuilder::tcp(
                    MacAddr::from_index(1),
                    MacAddr::from_index(2),
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    simbricks_proto::Ecn::Ect0,
                    &hdr,
                    &payload,
                );
                match segment_tso(&frame, mss) {
                    None => prop_assert!(payload_len <= mss, "only sub-MSS frames pass through"),
                    Some(segs) => {
                        prop_assert!(payload_len > mss);
                        prop_assert_eq!(segs.len(), payload_len.div_ceil(mss));
                        let mut bytes = Vec::new();
                        for (i, seg) in segs.iter().enumerate() {
                            let p = ParsedFrame::parse(seg).unwrap();
                            prop_assert!(p.checksums_ok);
                            match p.l4 {
                                ParsedL4::Tcp { header, payload: chunk } => {
                                    prop_assert!(chunk.len() <= mss);
                                    prop_assert_eq!(header.seq, seq.wrapping_add(bytes.len() as u32));
                                    prop_assert_eq!(
                                        header.flags.contains(TcpFlags::PSH),
                                        i == segs.len() - 1
                                    );
                                    bytes.extend_from_slice(&chunk);
                                }
                                _ => prop_assert!(false, "segment is not TCP"),
                            }
                        }
                        prop_assert_eq!(bytes, payload);
                    }
                }
            }
        }
    }

    #[test]
    fn interrupt_moderation_reduces_interrupt_count() {
        // Send a burst of RX packets with a large ITR: fewer interrupts than
        // packets must reach the host.
        let (nic_pcie, host_pcie) = channel_pair(ChannelParams::default_sync());
        let (nic_eth, mut net_eth) = channel_pair(ChannelParams::default_sync());
        let mut kernel = Kernel::new("nic", SimTime::from_ms(10));
        kernel.add_port(nic_pcie);
        kernel.add_port(nic_eth);
        let mut nic = BehavioralNic::new(NicConfig::i40e());
        let mut host = MiniHost::new(host_pcie);
        host.mmio_write(REG_CTRL, 1);
        host.mmio_write(queue_reg(0, Q_RX_BASE), 0x2000);
        host.mmio_write(queue_reg(0, Q_RX_LEN), 64);
        host.mmio_write(queue_reg(0, Q_ITR), 50_000); // 50 us
        for i in 0..32u64 {
            let d = Descriptor {
                addr: 0x40000 + i * 2048,
                len: 2048,
                flags: 0,
                status: 0,
            };
            let off = (0x2000 + i * 16) as usize;
            host.mem[off..off + 16].copy_from_slice(&d.to_bytes());
        }
        host.mmio_write(queue_reg(0, Q_RX_TAIL), 32);
        for _ in 0..16u64 {
            net_eth
                .send_raw(SimTime::from_us(2), MSG_ETH_PACKET, &vec![9u8; 200])
                .unwrap();
        }
        for _ in 0..300 {
            if kernel.step(&mut nic, 128) == StepOutcome::Finished {
                break;
            }
            host.service();
            host.advance(SimTime::from_us(2));
            net_eth.send_raw(host.horizon, MSG_SYNC, &[]).unwrap();
            if host.horizon > SimTime::from_ms(1) {
                break;
            }
        }
        assert_eq!(nic.stats().rx_packets, 16);
        assert!(
            host.interrupts < 16,
            "moderation coalesces interrupts ({} seen)",
            host.interrupts
        );
        assert!(host.interrupts >= 1);
    }
}
