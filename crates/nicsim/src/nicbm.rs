//! Common behavioural-NIC building blocks (the paper's `nicbm` library):
//! a DMA engine tracking outstanding PCIe requests and an MSI-X interrupt
//! moderation helper.

use simbricks_base::snap::{SnapReader, SnapResult, SnapWriter};
use simbricks_base::{Kernel, PortId, SimTime};
use simbricks_pcie::{DevToHost, IntKind, OutstandingRequests};

/// DMA engine: issues DMA read/write messages over the PCIe port and matches
/// completions back to a caller-supplied context.
pub struct DmaEngine<C> {
    pcie_port: PortId,
    outstanding: OutstandingRequests<C>,
    pub reads_issued: u64,
    pub writes_issued: u64,
}

impl<C> DmaEngine<C> {
    pub fn new(pcie_port: PortId) -> Self {
        DmaEngine {
            pcie_port,
            outstanding: OutstandingRequests::new(),
            reads_issued: 0,
            writes_issued: 0,
        }
    }

    /// Issue a DMA read of host memory.
    pub fn read(&mut self, k: &mut Kernel, addr: u64, len: usize, ctx: C) {
        let req_id = self.outstanding.insert(ctx);
        self.reads_issued += 1;
        let (ty, payload) = DevToHost::DmaRead { req_id, addr, len }.encode();
        k.send(self.pcie_port, ty, &payload);
    }

    /// Issue a DMA write to host memory. The message envelope is built in
    /// one pass inside a pooled buffer (no intermediate allocation).
    pub fn write(&mut self, k: &mut Kernel, addr: u64, data: &[u8], ctx: C) {
        let req_id = self.outstanding.insert(ctx);
        self.writes_issued += 1;
        let (ty, payload) =
            DevToHost::encode_dma_write_pooled(k.pool(), req_id, addr, data);
        k.send_buf(self.pcie_port, ty, payload);
    }

    /// Match a completion back to its context.
    pub fn complete(&mut self, req_id: u64) -> Option<C> {
        self.outstanding.complete(req_id)
    }

    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Checkpoint: encode counters plus the in-flight requests (id order)
    /// with their contexts via `enc`.
    pub fn snapshot_with(
        &self,
        w: &mut SnapWriter,
        enc: impl Fn(&C, &mut SnapWriter),
    ) -> SnapResult<()> {
        w.u64(self.reads_issued);
        w.u64(self.writes_issued);
        w.u64(self.outstanding.next_id());
        let entries = self.outstanding.entries();
        w.usize(entries.len());
        for (id, ctx) in entries {
            w.u64(id);
            enc(ctx, w);
        }
        Ok(())
    }

    /// Checkpoint: rebuild the engine state written by
    /// [`DmaEngine::snapshot_with`], decoding contexts via `dec`.
    pub fn restore_with(
        &mut self,
        r: &mut SnapReader,
        dec: impl Fn(&mut SnapReader) -> SnapResult<C>,
    ) -> SnapResult<()> {
        self.reads_issued = r.u64()?;
        self.writes_issued = r.u64()?;
        let next_id = r.u64()?;
        let n = r.usize()?;
        let mut items = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let id = r.u64()?;
            let ctx = dec(r)?;
            items.push((id, ctx));
        }
        self.outstanding = OutstandingRequests::restore_parts(next_id, items);
        Ok(())
    }
}

/// Per-vector MSI-X interrupt generation with i40e-style throttling (ITR):
/// at most one interrupt per throttle interval, with events arriving during
/// the hold-off coalesced into a single deferred interrupt.
pub struct IntModeration {
    pcie_port: PortId,
    vector: u16,
    /// Throttle interval; zero disables moderation.
    pub interval: SimTime,
    last_fired: Option<SimTime>,
    pending: bool,
    timer_armed: bool,
    pub fired: u64,
    pub coalesced: u64,
}

impl IntModeration {
    pub fn new(pcie_port: PortId, vector: u16, interval: SimTime) -> Self {
        IntModeration {
            pcie_port,
            vector,
            interval,
            last_fired: None,
            pending: false,
            timer_armed: false,
            fired: 0,
            coalesced: 0,
        }
    }

    /// Request an interrupt. Returns `Some(deadline)` if the caller must
    /// schedule a timer and call [`IntModeration::on_timer`] at that time.
    #[must_use]
    pub fn request(&mut self, k: &mut Kernel) -> Option<SimTime> {
        let now = k.now();
        let due = match self.last_fired {
            Some(last) if self.interval > SimTime::ZERO => last + self.interval,
            _ => now,
        };
        if due <= now {
            self.fire(k);
            None
        } else {
            self.pending = true;
            self.coalesced += 1;
            if self.timer_armed {
                None
            } else {
                self.timer_armed = true;
                Some(due)
            }
        }
    }

    /// Called by the owning model when the moderation timer fires.
    pub fn on_timer(&mut self, k: &mut Kernel) {
        self.timer_armed = false;
        if self.pending {
            self.pending = false;
            self.fire(k);
        }
    }

    /// Checkpoint: encode the dynamic moderation state (the interval is
    /// driver-programmed at run time, so it is dynamic too).
    pub fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.time(self.interval);
        w.opt_time(self.last_fired);
        w.bool(self.pending);
        w.bool(self.timer_armed);
        w.u64(self.fired);
        w.u64(self.coalesced);
        Ok(())
    }

    /// Checkpoint: restore state written by [`IntModeration::snapshot`].
    pub fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.interval = r.time()?;
        self.last_fired = r.opt_time()?;
        self.pending = r.bool()?;
        self.timer_armed = r.bool()?;
        self.fired = r.u64()?;
        self.coalesced = r.u64()?;
        Ok(())
    }

    fn fire(&mut self, k: &mut Kernel) {
        self.fired += 1;
        self.last_fired = Some(k.now());
        let (ty, payload) = DevToHost::Interrupt {
            kind: IntKind::Msix,
            vector: self.vector,
        }
        .encode();
        k.send(self.pcie_port, ty, &payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, Model, OwnedMsg, StepOutcome};
    use simbricks_pcie::HostToDev;

    /// A model exercising the DMA engine and interrupt moderation directly.
    struct TestDev {
        dma: DmaEngine<&'static str>,
        itr: IntModeration,
        completions: Vec<&'static str>,
        interrupts_requested: u32,
    }

    impl Model for TestDev {
        fn init(&mut self, k: &mut Kernel) {
            self.dma.read(k, 0x1000, 64, "first");
            self.dma.write(k, 0x2000, &[1, 2, 3], "second");
            // Two interrupt requests back to back: the second is coalesced.
            if let Some(t) = self.itr.request(k) {
                k.schedule_at(t, 99);
            }
            if let Some(t) = self.itr.request(k) {
                k.schedule_at(t, 99);
            }
            self.interrupts_requested = 2;
        }
        fn on_msg(&mut self, _k: &mut Kernel, _p: PortId, msg: OwnedMsg) {
            if let Some(HostToDev::DmaComplete { req_id, .. }) = HostToDev::decode(msg.ty, &msg.data)
            {
                if let Some(ctx) = self.dma.complete(req_id) {
                    self.completions.push(ctx);
                }
            }
        }
        fn on_timer(&mut self, k: &mut Kernel, token: u64) {
            if token == 99 {
                self.itr.on_timer(k);
            }
        }
    }

    #[test]
    fn dma_roundtrip_and_interrupt_moderation() {
        let (dev_end, mut host_end) = channel_pair(ChannelParams::default_sync());
        let mut kernel = Kernel::new("dev", SimTime::from_ms(1));
        let port = kernel.add_port(dev_end);
        let mut dev = TestDev {
            dma: DmaEngine::new(port),
            itr: IntModeration::new(port, 0, SimTime::from_us(10)),
            completions: Vec::new(),
            interrupts_requested: 0,
        };
        // Drive the device; the "host" answers DMA requests directly. The
        // host-side horizon advances 1 us per iteration so all messages stay
        // monotonic on the channel.
        let mut interrupts_seen = 0;
        let mut horizon_us = 1u64;
        for _ in 0..2000 {
            if kernel.step(&mut dev, 64) == StepOutcome::Finished {
                break;
            }
            let stamp = SimTime::from_us(horizon_us);
            while let Some(m) = host_end.recv_raw() {
                match DevToHost::decode(m.ty, &m.data) {
                    Some(DevToHost::DmaRead { req_id, len, .. }) => {
                        let (ty, p) = HostToDev::DmaComplete {
                            req_id,
                            data: vec![0xab; len].into(),
                        }
                        .encode();
                        host_end.send_raw(stamp, ty, &p).unwrap();
                    }
                    Some(DevToHost::DmaWrite { req_id, .. }) => {
                        let (ty, p) = HostToDev::DmaComplete {
                            req_id,
                            data: simbricks_base::PktBuf::empty(),
                        }
                        .encode();
                        host_end.send_raw(stamp, ty, &p).unwrap();
                    }
                    Some(DevToHost::Interrupt { .. }) => interrupts_seen += 1,
                    _ => {}
                }
            }
            // Keep the device's clock moving.
            host_end
                .send_raw(stamp, simbricks_base::MSG_SYNC, &[])
                .ok();
            horizon_us += 1;
        }
        assert_eq!(dev.completions, vec!["first", "second"]);
        assert_eq!(dev.dma.in_flight(), 0);
        assert_eq!(dev.dma.reads_issued, 1);
        assert_eq!(dev.dma.writes_issued, 1);
        // Two requests, but only one immediate interrupt plus one deferred:
        // both eventually fire, the second after the 10 us hold-off.
        assert_eq!(interrupts_seen, 2);
        assert_eq!(dev.itr.fired, 2);
        assert_eq!(dev.itr.coalesced, 1);
    }
}
