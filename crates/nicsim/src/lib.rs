//! # simbricks-nicsim
//!
//! NIC device simulators speaking the SimBricks PCIe interface towards a host
//! simulator and the SimBricks Ethernet interface towards a network
//! simulator (§6.3 of the paper):
//!
//! * [`behavioral::I40eNic`] — behavioural model of an Intel X710/i40e-style
//!   40G NIC: multiple descriptor queue pairs, doorbell tail registers,
//!   descriptor write-back with DD bits polled by the driver in host memory,
//!   MSI-X with per-vector interrupt moderation (ITR), checksum offload.
//! * [`behavioral::CorundumNic`] — behavioural model of the Corundum FPGA
//!   NIC. The crucial difference (§8.1): completed descriptors are
//!   discovered by the driver *reading the queue head-index register via
//!   MMIO*, not by polling descriptors in memory, which stalls the CPU for a
//!   full PCIe round trip on the receive path.
//! * [`behavioral::E1000Nic`] — a simple single-queue legacy NIC (the model
//!   extracted from gem5 in §7.2/§7.5): DD write-back plus an interrupt
//!   cause register the driver reads on every interrupt.
//! * [`rtl::CorundumRtlNic`] — cycle-driven Corundum data path clocked at a
//!   configurable frequency (250 MHz by default), standing in for the
//!   Verilator RTL simulation: same driver-visible behaviour as the
//!   behavioural Corundum model but every active cycle is simulated, making
//!   it far more expensive to run (Tab. 1/3).
//! * [`pktgen::PktGen`] — the dummy packet-generator NIC used by the §7.3.2
//!   network-decomposition microbenchmark: Ethernet-only, injects packets at
//!   a configured rate and participates in synchronization.
//!
//! The register layout and descriptor formats shared with the host-side
//! drivers live in [`regs`]; common DMA / interrupt plumbing in [`nicbm`].

pub mod behavioral;
pub mod nicbm;
pub mod pktgen;
pub mod regs;
pub mod rtl;

pub use behavioral::{BehavioralNic, CorundumNic, E1000Nic, I40eNic, NicConfig, NicStats, NicVariant};
pub use pktgen::{PktGen, PktGenConfig};
pub use rtl::{CorundumRtlNic, RtlConfig};
