//! Register layout and descriptor formats shared by the NIC simulators and
//! the host-side drivers (the "datasheet" both sides are written against).
//!
//! All registers live in BAR 0 and are accessed with 8-byte MMIO operations.
//! Descriptors are 16 bytes, little-endian, resident in host memory and
//! transferred by NIC-initiated DMA.

/// BAR0 size exposed in the PCIe device info.
pub const BAR0_SIZE: u64 = 0x10000;

/// Global control register: bit 0 enables the device.
pub const REG_CTRL: u64 = 0x00;
/// Number of queue pairs supported (read-only).
pub const REG_NQUEUES: u64 = 0x08;
/// Offload feature flags: bit 0 = TX checksum offload, bit 1 = RX checksum
/// offload.
pub const REG_FLAGS: u64 = 0x10;
/// Interrupt cause register, read-to-clear (e1000-style devices).
pub const REG_ICR: u64 = 0x18;
/// Device MAC address (low 6 bytes).
pub const REG_MAC: u64 = 0x20;

/// Per-queue register block base and stride.
pub const QUEUE_BASE: u64 = 0x1000;
pub const QUEUE_STRIDE: u64 = 0x100;

/// Offsets within a queue register block.
pub const Q_TX_BASE: u64 = 0x00;
pub const Q_TX_LEN: u64 = 0x08;
pub const Q_TX_TAIL: u64 = 0x10;
pub const Q_TX_HEAD: u64 = 0x18;
pub const Q_RX_BASE: u64 = 0x20;
pub const Q_RX_LEN: u64 = 0x28;
pub const Q_RX_TAIL: u64 = 0x30;
pub const Q_RX_HEAD: u64 = 0x38;
/// Interrupt throttling interval for this queue's MSI-X vector, nanoseconds.
pub const Q_ITR: u64 = 0x40;
/// Wire MSS used by TCP segmentation offload for this queue. Zero disables
/// TSO. Only NICs that advertise segmentation offload (the i40e model) honor
/// descriptors carrying [`DESC_TSO`].
pub const Q_TSO_MSS: u64 = 0x48;

/// Address of a register within queue `q`.
pub const fn queue_reg(q: usize, offset: u64) -> u64 {
    QUEUE_BASE + q as u64 * QUEUE_STRIDE + offset
}

/// Interrupt cause bits (REG_ICR).
pub const ICR_RXQ0: u64 = 1 << 0;
pub const ICR_TXQ0: u64 = 1 << 8;

/// Flag bits (REG_FLAGS).
pub const FLAG_TX_CSUM: u64 = 1 << 0;
pub const FLAG_RX_CSUM: u64 = 1 << 1;

/// Descriptor size in bytes (TX and RX).
pub const DESC_SIZE: usize = 16;

/// Descriptor status/flag bits.
pub const DESC_DD: u16 = 1 << 0;
pub const DESC_EOP: u16 = 1 << 1;
pub const DESC_CSUM_OFFLOAD: u16 = 1 << 2;
pub const DESC_CSUM_OK: u16 = 1 << 3;
/// TX descriptor references a TCP super-segment: the NIC must cut it into
/// wire segments of at most the queue's configured TSO MSS.
pub const DESC_TSO: u16 = 1 << 4;

/// A transmit or receive descriptor as laid out in host memory.
///
/// ```text
/// bytes 0..8   buffer physical address
/// bytes 8..10  length (TX: bytes to send; RX write-back: received bytes)
/// bytes 10..12 flags (EOP, checksum offload request / result)
/// bytes 12..14 status (DD)
/// bytes 14..16 reserved
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Descriptor {
    pub addr: u64,
    pub len: u16,
    pub flags: u16,
    pub status: u16,
}

impl Descriptor {
    pub fn to_bytes(&self) -> [u8; DESC_SIZE] {
        let mut b = [0u8; DESC_SIZE];
        b[0..8].copy_from_slice(&self.addr.to_le_bytes());
        b[8..10].copy_from_slice(&self.len.to_le_bytes());
        b[10..12].copy_from_slice(&self.flags.to_le_bytes());
        b[12..14].copy_from_slice(&self.status.to_le_bytes());
        b
    }

    pub fn from_bytes(b: &[u8]) -> Option<Descriptor> {
        if b.len() < DESC_SIZE {
            return None;
        }
        Some(Descriptor {
            addr: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            len: u16::from_le_bytes(b[8..10].try_into().unwrap()),
            flags: u16::from_le_bytes(b[10..12].try_into().unwrap()),
            status: u16::from_le_bytes(b[12..14].try_into().unwrap()),
        })
    }

    pub fn has_dd(&self) -> bool {
        self.status & DESC_DD != 0
    }
}

/// PCI identifiers used by the different NIC models.
pub mod ids {
    pub const VENDOR_INTEL: u16 = 0x8086;
    pub const DEVICE_I40E: u16 = 0x1572;
    pub const DEVICE_E1000: u16 = 0x100e;
    pub const VENDOR_CORUNDUM: u16 = 0x1234;
    pub const DEVICE_CORUNDUM: u16 = 0x1001;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_roundtrip() {
        let d = Descriptor {
            addr: 0x1_0000_2000,
            len: 1514,
            flags: DESC_EOP | DESC_CSUM_OFFLOAD,
            status: DESC_DD,
        };
        let b = d.to_bytes();
        assert_eq!(Descriptor::from_bytes(&b), Some(d));
        assert!(d.has_dd());
        assert!(Descriptor::from_bytes(&b[..10]).is_none());
    }

    #[test]
    fn queue_register_addresses_do_not_overlap() {
        let q0_last = queue_reg(0, Q_ITR);
        let q1_first = queue_reg(1, Q_TX_BASE);
        assert!(q0_last < q1_first);
        assert_eq!(queue_reg(0, Q_TX_BASE), 0x1000);
        assert_eq!(queue_reg(2, Q_RX_TAIL), 0x1000 + 2 * 0x100 + 0x30);
    }

    #[test]
    fn default_descriptor_is_empty() {
        let d = Descriptor::default();
        assert!(!d.has_dd());
        assert_eq!(d.to_bytes(), [0u8; DESC_SIZE]);
    }
}
