//! # simbricks
//!
//! Facade crate of the SimBricks Rust reimplementation (Li, Li, Kaufmann,
//! "SimBricks: End-to-End Network System Evaluation with Modular Simulation",
//! SIGCOMM 2022). It re-exports the public API of every sub-crate:
//!
//! * [`base`] — channels, synchronization, component kernel.
//! * [`proto`] — Ethernet/ARP/IPv4/TCP/UDP wire formats.
//! * [`pcie`] / [`eth`] — the two SimBricks component interfaces.
//! * [`netstack`] — the simulated TCP (Reno/DCTCP) and UDP stack.
//! * [`nicsim`] — i40e / Corundum (behavioural + cycle-level) / e1000 NIC
//!   models and the packet generator.
//! * [`netsim`] — behavioural switch, discrete-event network, Tofino-style
//!   pipeline, RMT pipeline.
//! * [`nvmesim`] — NVMe storage device model (PCIe interface generality).
//! * [`hostsim`] — gem5-like / QEMU-like host models with drivers and an
//!   OS-lite kernel.
//! * [`apps`] — iperf, netperf, memcached, NOPaxos/Multi-Paxos workloads.
//! * [`runner`] — experiment orchestration, executors, proxies.
//! * [`scenario`] — declarative TOML scenarios: topologies, impaired links,
//!   AQM selection, apps, partitions; one builder for every harness.
//!
//! See `examples/quickstart.rs` for a complete end-to-end simulation in a few
//! dozen lines, and the `simbricks-bench` crate for the harnesses that
//! regenerate the paper's tables and figures.

#![deny(missing_docs)]

pub use simbricks_apps as apps;
pub use simbricks_base as base;
pub use simbricks_eth as eth;
pub use simbricks_hostsim as hostsim;
pub use simbricks_netsim as netsim;
pub use simbricks_netstack as netstack;
pub use simbricks_nicsim as nicsim;
pub use simbricks_nvmesim as nvmesim;
pub use simbricks_pcie as pcie;
pub use simbricks_proto as proto;
pub use simbricks_runner as runner;
pub use simbricks_scenario as scenario;

pub use simbricks_base::{SimTime, bw};
pub use simbricks_runner::{Execution, Experiment};
