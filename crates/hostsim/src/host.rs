//! The host component model: CPU, memory, PCIe adapter, interrupts, OS-lite
//! kernel, network stack and application runtime in one SimBricks component.

use std::collections::BTreeMap;

use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter, Snapshot};
use simbricks_base::{Kernel, Model, OwnedMsg, PktBuf, PortId, SimTime, SyncLookahead};
use simbricks_netstack::{CongestionControl, NetStack, StackConfig};
use simbricks_pcie::{DevToHost, HostToDev, IntStatus, OutstandingRequests};
use simbricks_proto::{Ipv4Addr, MacAddr};

use crate::app::{Application, NullApp, OsServices};
use crate::driver::{DriverOp, DriverOutcome, NicDriver, NicModelKind, ReadPurpose};
use crate::mem::PhysMem;
use crate::CostProfile;

/// Which host simulator this component stands in for (§6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostKind {
    /// Detailed, synchronized timing host (gem5 TimingSimple stand-in).
    Gem5Timing,
    /// Instruction-counting host (QEMU icount stand-in), synchronized.
    QemuTiming,
    /// Functional host (QEMU+KVM stand-in), intended for unsynchronized runs.
    QemuKvm,
}

impl HostKind {
    /// Whether this host kind is meant to run with synchronized channels.
    pub fn synchronized(&self) -> bool {
        !matches!(self, HostKind::QemuKvm)
    }
}

/// Static configuration of a simulated host.
#[derive(Clone, Copy, Debug)]
pub struct HostConfig {
    pub kind: HostKind,
    pub ip: Ipv4Addr,
    pub mac: MacAddr,
    pub nic: NicModelKind,
    pub congestion: CongestionControl,
    pub mtu: usize,
    pub mem_bytes: usize,
    /// Interrupt throttling the driver programs into the NIC (ns).
    pub itr_ns: u64,
    /// Virtual time after device discovery before the application starts
    /// (stands in for the guest boot we do not simulate instruction by
    /// instruction).
    pub boot_delay: SimTime,
    /// Periodic OS housekeeping tick (more detailed hosts tick more often,
    /// which also makes them costlier to simulate). Zero disables it.
    pub os_tick: SimTime,
    /// Terminate the component as soon as the application reports done
    /// (useful for unsynchronized emulation runs).
    pub quit_when_done: bool,
    /// Seed for the deterministic interrupt-scheduling jitter.
    pub seed: u64,
}

impl HostConfig {
    /// Build a configuration for host number `index` (addresses derived
    /// deterministically).
    pub fn new(kind: HostKind, index: u32) -> Self {
        let (os_tick, itr) = match kind {
            HostKind::Gem5Timing => (SimTime::from_us(50), 2_000),
            HostKind::QemuTiming => (SimTime::from_us(200), 2_000),
            HostKind::QemuKvm => (SimTime::ZERO, 0),
        };
        HostConfig {
            kind,
            ip: Ipv4Addr::from_index(index),
            mac: MacAddr::from_index(index as u64 + 1),
            nic: NicModelKind::I40e,
            congestion: CongestionControl::Reno,
            mtu: 1500,
            mem_bytes: 8 << 20,
            itr_ns: itr,
            boot_delay: SimTime::from_us(100),
            os_tick,
            quit_when_done: false,
            seed: 0x5eed_0000 + index as u64,
        }
    }

    pub fn with_nic(mut self, nic: NicModelKind) -> Self {
        self.nic = nic;
        self
    }

    pub fn with_congestion(mut self, cc: CongestionControl) -> Self {
        self.congestion = cc;
        self
    }

    pub fn with_mtu(mut self, mtu: usize) -> Self {
        self.mtu = mtu;
        self
    }

    pub fn cost_profile(&self) -> CostProfile {
        match self.kind {
            HostKind::Gem5Timing => CostProfile::gem5_timing(),
            HostKind::QemuTiming => CostProfile::qemu_timing(),
            HostKind::QemuKvm => CostProfile::qemu_kvm(),
        }
    }
}

/// Counters reported by a host after a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostStats {
    pub interrupts: u64,
    pub rx_frames: u64,
    pub tx_frames: u64,
    pub mmio_read_stalls: u64,
    pub mmio_writes: u64,
    /// Wire frames absorbed into a GRO super-segment before stack processing.
    pub gro_merged: u64,
    /// Total modelled CPU busy time.
    pub cpu_busy: SimTime,
    pub os_ticks: u64,
}

enum MmioPurpose {
    Posted,
    DriverRead(ReadPurpose),
}

enum Work {
    Irq,
    StackTimer,
    AppTimer(u64),
    AppStart,
    OsTick,
    // Deferred PCIe reactions: everything the host emits in response to a
    // PCIe message is scheduled at least `CostProfile::pcie_reaction` after
    // the message arrived (root complex + memory controller traversal). The
    // delay is what makes the host's Chandy–Misra reaction lookahead
    // declaration sound.
    /// Driver init + interrupt negotiation after PCI enumeration.
    DevInit,
    /// DMA read completion: read guest memory and send the data back.
    DmaReadReply { req_id: u64, addr: u64, len: usize },
    /// DMA write completion ack (the posted write itself landed on arrival).
    DmaWriteReply { req_id: u64 },
    /// Driver state machine resuming after a completed MMIO read.
    MmioReaction { purpose: ReadPurpose, value: u64 },
}

const TOK_WORK: u64 = 1 << 56;

/// One simulated host. Port 0 of its kernel must be the PCIe channel to its
/// NIC simulator.
pub struct HostModel {
    cfg: HostConfig,
    cost: CostProfile,
    mem: PhysMem,
    driver: NicDriver,
    stack: NetStack,
    app: Option<Box<dyn Application>>,
    app_done: bool,
    cpu_busy_until: SimTime,
    pcie: PortId,
    mmio_pending: OutstandingRequests<MmioPurpose>,
    /// Deferred work items keyed by id. Ordered map: snapshot encoding and
    /// any future drain iterate in id order structurally, so hash-map
    /// iteration order can never leak into the event log.
    works: BTreeMap<u64, Work>,
    next_work: u64,
    stack_timer_at: Option<SimTime>,
    /// NAPI-style interrupt coalescing: while an IRQ work item is pending
    /// (scheduled but not yet executed), further device interrupts do not
    /// enqueue additional work — the poll run will reap everything at once.
    /// Without this a saturated receiver accumulates an unbounded backlog of
    /// per-interrupt CPU charges, which no real kernel does.
    irq_work_pending: bool,
    rng: u64,
    stats: HostStats,
}

impl HostModel {
    pub fn new(cfg: HostConfig, app: Box<dyn Application>) -> Self {
        let driver = NicDriver::new(cfg.nic, cfg.itr_ns, cfg.mtu);
        let stack_cfg = StackConfig {
            ip: cfg.ip,
            mac: cfg.mac,
            mtu: cfg.mtu,
            congestion: cfg.congestion,
            // TCP segmentation offload when the NIC supports it (i40e): the
            // stack hands super-segments to the driver and the NIC cuts them
            // into wire segments, amortizing per-segment host costs.
            tso_size: if driver.supports_tso() {
                crate::driver::TSO_SIZE
            } else {
                0
            },
            ..StackConfig::default()
        };
        let mut stack = NetStack::new(stack_cfg);
        stack.rx_checksum_offload = true;
        HostModel {
            cost: cfg.cost_profile(),
            mem: PhysMem::new(cfg.mem_bytes),
            driver,
            stack,
            app: Some(app),
            app_done: false,
            cpu_busy_until: SimTime::ZERO,
            pcie: PortId(0),
            mmio_pending: OutstandingRequests::new(),
            works: BTreeMap::new(),
            next_work: 1,
            stack_timer_at: None,
            irq_work_pending: false,
            rng: cfg.seed.wrapping_mul(0x9e3779b97f4a7c15) | 1,
            stats: HostStats::default(),
            cfg,
        }
    }

    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    pub fn stats(&self) -> HostStats {
        self.stats
    }

    pub fn app_done(&self) -> bool {
        self.app_done
    }

    /// The application's result line plus host counters.
    pub fn report(&self) -> String {
        let app = self
            .app
            .as_ref()
            .map(|a| a.report())
            .unwrap_or_default();
        format!(
            "{app} [irqs={} rx={} tx={} mmio_stalls={}]",
            self.stats.interrupts, self.stats.rx_frames, self.stats.tx_frames,
            self.stats.mmio_read_stalls
        )
    }

    pub fn app_report(&self) -> String {
        self.app.as_ref().map(|a| a.report()).unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // CPU accounting
    // ------------------------------------------------------------------

    fn charge(&mut self, now: SimTime, d: SimTime) {
        let start = now.max(self.cpu_busy_until);
        self.cpu_busy_until = start + d;
        self.stats.cpu_busy += d;
    }

    fn jitter(&mut self) -> SimTime {
        if self.cost.sched_jitter_max == SimTime::ZERO {
            return SimTime::ZERO;
        }
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        SimTime::from_ps(self.rng % (self.cost.sched_jitter_max.as_ps() + 1))
    }

    fn defer(&mut self, k: &mut Kernel, work: Work, at: SimTime) {
        let id = self.next_work;
        self.next_work += 1;
        self.works.insert(id, work);
        k.schedule_at(at.max(k.now()), TOK_WORK | id);
    }

    // ------------------------------------------------------------------
    // PCIe plumbing
    // ------------------------------------------------------------------

    fn execute_ops(&mut self, k: &mut Kernel, ops: Vec<DriverOp>) {
        let now = k.now();
        for op in ops {
            match op {
                DriverOp::MmioWrite { offset, value } => {
                    self.charge(now, self.cost.mmio_write);
                    self.stats.mmio_writes += 1;
                    let req_id = self.mmio_pending.insert(MmioPurpose::Posted);
                    let (ty, p) = HostToDev::MmioWrite {
                        req_id,
                        bar: 0,
                        offset,
                        data: value.to_le_bytes().to_vec().into(),
                    }
                    .encode();
                    k.send(self.pcie, ty, &p);
                }
                DriverOp::MmioRead { offset, purpose } => {
                    self.stats.mmio_read_stalls += 1;
                    let req_id = self
                        .mmio_pending
                        .insert(MmioPurpose::DriverRead(purpose));
                    let (ty, p) = HostToDev::MmioRead {
                        req_id,
                        bar: 0,
                        offset,
                        len: 8,
                    }
                    .encode();
                    k.send(self.pcie, ty, &p);
                }
            }
        }
    }

    fn handle_outcome(&mut self, k: &mut Kernel, outcome: DriverOutcome) {
        self.execute_ops(k, outcome.ops);
        if !outcome.frames.is_empty() {
            self.handle_rx_frames(k, outcome.frames);
        }
    }

    fn handle_rx_frames(&mut self, k: &mut Kernel, frames: Vec<PktBuf>) {
        let now = k.now();
        // Driver/DMA costs are paid per wire frame.
        for frame in &frames {
            self.charge(
                now,
                self.cost.per_packet
                    + SimTime::from_ps(self.cost.per_byte.as_ps() * frame.len() as u64),
            );
            self.stats.rx_frames += 1;
            k.log("host_rx", frame.len() as u64, 0);
        }
        // GRO: coalesce back-to-back TCP segments of the same flow, so the
        // protocol-stack cost is paid per coalesced segment — the software
        // offload that lets one core keep up with line rate.
        let gro = simbricks_netstack::gro::coalesce(self.stack.pool(), frames);
        self.stats.gro_merged += gro.merged as u64;
        for frame in gro.frames {
            self.charge(now, self.cost.per_segment);
            self.stack.handle_frame(now, &frame);
        }
        self.process_socket_events(k);
        self.flush_stack(k);
    }

    // ------------------------------------------------------------------
    // OS / application plumbing
    // ------------------------------------------------------------------

    fn run_app<F>(&mut self, k: &mut Kernel, f: F)
    where
        F: FnOnce(&mut dyn Application, &mut OsServices),
    {
        let now = k.now();
        let mut app = self.app.take().unwrap_or_else(|| Box::new(NullApp));
        let mut timer_reqs = Vec::new();
        let mut extra = SimTime::ZERO;
        let mut finished = self.app_done;
        let mut syscalls = 0u32;
        {
            let mut os = OsServices {
                now,
                stack: &mut self.stack,
                timer_requests: &mut timer_reqs,
                extra_cpu: &mut extra,
                finished: &mut finished,
                syscalls: &mut syscalls,
            };
            f(app.as_mut(), &mut os);
        }
        self.app = Some(app);
        self.app_done = finished;
        let cost = self.cost.app_callback
            + extra
            + SimTime::from_ps(self.cost.syscall.as_ps() * syscalls as u64);
        self.charge(now, cost);
        for (at, tok) in timer_reqs {
            self.defer(k, Work::AppTimer(tok), at);
        }
        self.flush_stack(k);
        if self.app_done && self.cfg.quit_when_done {
            k.quit();
        }
    }

    fn process_socket_events(&mut self, k: &mut Kernel) {
        loop {
            let events = self.stack.poll_events();
            if events.is_empty() {
                break;
            }
            for ev in events {
                self.run_app(k, |app, os| app.on_socket_event(os, ev));
            }
        }
    }

    fn flush_stack(&mut self, k: &mut Kernel) {
        let now = k.now();
        while let Some(frame) = self.stack.poll_transmit() {
            self.charge(
                now,
                self.cost.per_segment
                    + SimTime::from_ps(self.cost.per_byte.as_ps() * frame.len() as u64),
            );
            self.stats.tx_frames += 1;
            k.log("host_tx", frame.len() as u64, 0);
            let ops = self.driver.transmit(&mut self.mem, &frame);
            self.execute_ops(k, ops);
        }
        // Keep exactly one stack-timer work item armed for the earliest
        // protocol deadline (retransmissions, delayed ACKs).
        if let Some(t) = self.stack.poll_timeout() {
            let needs = match self.stack_timer_at {
                Some(existing) => t < existing,
                None => true,
            };
            if needs {
                self.stack_timer_at = Some(t);
                self.defer(k, Work::StackTimer, t);
            }
        }
    }

    fn run_work(&mut self, k: &mut Kernel, work: Work) {
        let now = k.now();
        match work {
            Work::Irq => {
                // Re-enable "interrupts" before polling: anything that
                // arrives while we process this batch schedules a new poll.
                self.irq_work_pending = false;
                self.charge(now, self.cost.irq_overhead);
                let outcome = self.driver.on_interrupt(&mut self.mem);
                self.handle_outcome(k, outcome);
            }
            Work::StackTimer => {
                self.stack_timer_at = None;
                self.charge(now, self.cost.per_segment);
                self.stack.on_timer(now);
                self.process_socket_events(k);
                self.flush_stack(k);
            }
            Work::AppTimer(tok) => {
                self.run_app(k, |app, os| app.on_timer(os, tok));
                self.process_socket_events(k);
            }
            Work::AppStart => {
                self.run_app(k, |app, os| app.start(os));
                self.process_socket_events(k);
            }
            Work::OsTick => {
                self.stats.os_ticks += 1;
                self.charge(now, self.cost.irq_overhead);
                if self.cfg.os_tick > SimTime::ZERO {
                    let at = now + self.cfg.os_tick;
                    self.defer(k, Work::OsTick, at);
                }
            }
            Work::DevInit => {
                // PCI enumeration found the NIC: initialize the driver, tell
                // the device which interrupt mechanisms are enabled, then
                // start the application after the boot delay.
                let ops = self.driver.init(&mut self.mem);
                let (ty, p) = HostToDev::IntStatus(IntStatus {
                    legacy: false,
                    msi: false,
                    msix: true,
                })
                .encode();
                k.send(self.pcie, ty, &p);
                self.execute_ops(k, ops);
                let at = now + self.cfg.boot_delay;
                self.defer(k, Work::AppStart, at);
            }
            Work::DmaReadReply { req_id, addr, len } => {
                // One write pass: guest memory straight into a pooled
                // message envelope, no intermediate vector.
                let (ty, p) = HostToDev::encode_dma_complete_pooled(
                    k.pool(),
                    req_id,
                    self.mem.read(addr, len),
                );
                k.send_buf(self.pcie, ty, p);
            }
            Work::DmaWriteReply { req_id } => {
                let (ty, p) = HostToDev::DmaComplete {
                    req_id,
                    data: PktBuf::empty(),
                }
                .encode();
                k.send(self.pcie, ty, &p);
            }
            Work::MmioReaction { purpose, value } => {
                // The CPU was stalled waiting for this read: it could not do
                // anything else in the meantime.
                self.cpu_busy_until = self.cpu_busy_until.max(now);
                let outcome = self.driver.on_mmio_read(&mut self.mem, purpose, value);
                self.handle_outcome(k, outcome);
            }
        }
    }
}

impl Model for HostModel {
    fn init(&mut self, k: &mut Kernel) {
        // One arena per host: stack (tx frames, GRO flushes) and driver
        // (ring reads) allocate from the kernel's pool, so every pooled
        // allocation this component performs lands in its
        // `KernelStats::pool_*` counters.
        self.stack.set_pool(k.pool().clone());
        self.driver.set_pool(k.pool().clone());
        if self.cfg.os_tick > SimTime::ZERO {
            let at = k.now() + self.cfg.os_tick;
            self.defer(k, Work::OsTick, at);
        }
    }

    // Every send the host performs is either driven by an already-scheduled
    // timer or deferred at least `pcie_reaction` past the input that caused
    // it (see `on_msg` below) — which is exactly the obligation of a
    // reaction-lookahead declaration, and the PCIe link is the host's only
    // port.
    fn sync_lookahead(&self) -> Option<SyncLookahead> {
        Some(SyncLookahead::Reaction(self.cost.pcie_reaction))
    }

    // Every PCIe message is acted on `pcie_reaction` after arrival — the
    // host never emits in the same instant it receives, which both models
    // the root-complex/memory-side latency and backs the reaction-lookahead
    // declaration above. Posted DMA writes land in memory immediately; only
    // the observable response (the completion ack) is deferred.
    fn on_msg(&mut self, k: &mut Kernel, _port: PortId, msg: OwnedMsg) {
        let react_at = k.now() + self.cost.pcie_reaction;
        match DevToHost::decode_buf(msg.ty, &msg.data) {
            Some(DevToHost::DevInfo(_info)) => {
                self.defer(k, Work::DevInit, react_at);
            }
            Some(DevToHost::DmaRead { req_id, addr, len }) => {
                self.defer(k, Work::DmaReadReply { req_id, addr, len }, react_at);
            }
            Some(DevToHost::DmaWrite { req_id, addr, data }) => {
                self.mem.write(addr, &data);
                self.defer(k, Work::DmaWriteReply { req_id }, react_at);
            }
            Some(DevToHost::Interrupt { .. }) => {
                self.stats.interrupts += 1;
                k.log("host_irq", self.stats.interrupts, 0);
                // NAPI-style: only one poll work item outstanding at a time.
                if !self.irq_work_pending {
                    self.irq_work_pending = true;
                    let delay =
                        (self.cost.irq_overhead + self.jitter()).max(self.cost.pcie_reaction);
                    let at = k.now() + delay;
                    self.defer(k, Work::Irq, at);
                }
            }
            Some(DevToHost::MmioComplete { req_id, data }) => {
                match self.mmio_pending.complete(req_id) {
                    Some(MmioPurpose::Posted) | None => {}
                    Some(MmioPurpose::DriverRead(purpose)) => {
                        let mut buf = [0u8; 8];
                        let n = data.len().min(8);
                        buf[..n].copy_from_slice(&data[..n]);
                        let value = u64::from_le_bytes(buf);
                        self.defer(k, Work::MmioReaction { purpose, value }, react_at);
                    }
                }
            }
            None => {}
        }
    }

    fn on_timer(&mut self, k: &mut Kernel, token: u64) {
        if token & (0xffu64 << 56) != TOK_WORK {
            return;
        }
        let id = token & !(0xffu64 << 56);
        let Some(work) = self.works.remove(&id) else {
            return;
        };
        // A single simulated core: work cannot start while the CPU is busy
        // with earlier work (this is what turns CPU cost into added latency).
        // DMA replies are served by the memory controller, not the core, so
        // they never queue behind CPU work.
        let device_side = matches!(
            work,
            Work::DmaReadReply { .. } | Work::DmaWriteReply { .. }
        );
        if !device_side && self.cpu_busy_until > k.now() {
            let at = self.cpu_busy_until;
            self.works.insert(id, work);
            k.schedule_at(at, TOK_WORK | id);
            return;
        }
        self.run_work(k, work);
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        self.mem.snapshot(w)?;
        self.driver.snapshot(w)?;
        self.stack.snapshot(w)?;
        match &self.app {
            Some(app) => {
                w.bool(true);
                app.snapshot(w)?;
            }
            None => w.bool(false),
        }
        w.bool(self.app_done);
        w.time(self.cpu_busy_until);

        w.u64(self.mmio_pending.next_id());
        let pending = self.mmio_pending.entries();
        w.usize(pending.len());
        for (id, purpose) in pending {
            w.u64(id);
            match purpose {
                MmioPurpose::Posted => w.u8(0),
                MmioPurpose::DriverRead(p) => {
                    w.u8(1);
                    w.u8(match p {
                        ReadPurpose::RxHead => 0,
                        ReadPurpose::TxHead => 1,
                        ReadPurpose::Icr => 2,
                    });
                }
            }
        }

        // Ascending id order, straight off the ordered map.
        w.usize(self.works.len());
        for (id, work) in &self.works {
            w.u64(*id);
            match work {
                Work::Irq => w.u8(0),
                Work::StackTimer => w.u8(1),
                Work::AppTimer(tok) => {
                    w.u8(2);
                    w.u64(*tok);
                }
                Work::AppStart => w.u8(3),
                Work::OsTick => w.u8(4),
                Work::DevInit => w.u8(5),
                Work::DmaReadReply { req_id, addr, len } => {
                    w.u8(6);
                    w.u64(*req_id);
                    w.u64(*addr);
                    w.usize(*len);
                }
                Work::DmaWriteReply { req_id } => {
                    w.u8(7);
                    w.u64(*req_id);
                }
                Work::MmioReaction { purpose, value } => {
                    w.u8(8);
                    w.u8(match purpose {
                        ReadPurpose::RxHead => 0,
                        ReadPurpose::TxHead => 1,
                        ReadPurpose::Icr => 2,
                    });
                    w.u64(*value);
                }
            }
        }
        w.u64(self.next_work);
        w.opt_time(self.stack_timer_at);
        w.bool(self.irq_work_pending);
        w.u64(self.rng);

        for v in [
            self.stats.interrupts,
            self.stats.rx_frames,
            self.stats.tx_frames,
            self.stats.mmio_read_stalls,
            self.stats.mmio_writes,
            self.stats.gro_merged,
            self.stats.os_ticks,
        ] {
            w.u64(v);
        }
        w.time(self.stats.cpu_busy);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.mem.restore(r)?;
        self.driver.restore(r)?;
        self.stack.restore(r)?;
        if r.bool()? {
            match &mut self.app {
                Some(app) => app.restore(r)?,
                None => {
                    return Err(SnapError::Corrupt(
                        "snapshot has an application, rebuilt host does not".into(),
                    ))
                }
            }
        } else {
            self.app = None;
        }
        self.app_done = r.bool()?;
        self.cpu_busy_until = r.time()?;

        let next_id = r.u64()?;
        let n = r.usize()?;
        let mut items = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let id = r.u64()?;
            let purpose = match r.u8()? {
                0 => MmioPurpose::Posted,
                1 => MmioPurpose::DriverRead(match r.u8()? {
                    0 => ReadPurpose::RxHead,
                    1 => ReadPurpose::TxHead,
                    2 => ReadPurpose::Icr,
                    v => {
                        return Err(SnapError::Corrupt(format!("bad read purpose tag {v}")))
                    }
                }),
                v => return Err(SnapError::Corrupt(format!("bad mmio purpose tag {v}"))),
            };
            items.push((id, purpose));
        }
        self.mmio_pending = OutstandingRequests::restore_parts(next_id, items);

        self.works.clear();
        for _ in 0..r.usize()? {
            let id = r.u64()?;
            let work = match r.u8()? {
                0 => Work::Irq,
                1 => Work::StackTimer,
                2 => Work::AppTimer(r.u64()?),
                3 => Work::AppStart,
                4 => Work::OsTick,
                5 => Work::DevInit,
                6 => Work::DmaReadReply {
                    req_id: r.u64()?,
                    addr: r.u64()?,
                    len: r.usize()?,
                },
                7 => Work::DmaWriteReply { req_id: r.u64()? },
                8 => Work::MmioReaction {
                    purpose: match r.u8()? {
                        0 => ReadPurpose::RxHead,
                        1 => ReadPurpose::TxHead,
                        2 => ReadPurpose::Icr,
                        v => {
                            return Err(SnapError::Corrupt(format!(
                                "bad reaction purpose tag {v}"
                            )))
                        }
                    },
                    value: r.u64()?,
                },
                v => return Err(SnapError::Corrupt(format!("bad work tag {v}"))),
            };
            self.works.insert(id, work);
        }
        self.next_work = r.u64()?;
        self.stack_timer_at = r.opt_time()?;
        self.irq_work_pending = r.bool()?;
        self.rng = r.u64()?;

        self.stats.interrupts = r.u64()?;
        self.stats.rx_frames = r.u64()?;
        self.stats.tx_frames = r.u64()?;
        self.stats.mmio_read_stalls = r.u64()?;
        self.stats.mmio_writes = r.u64()?;
        self.stats.gro_merged = r.u64()?;
        self.stats.os_ticks = r.u64()?;
        self.stats.cpu_busy = r.time()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_kind_sync_defaults() {
        assert!(HostKind::Gem5Timing.synchronized());
        assert!(HostKind::QemuTiming.synchronized());
        assert!(!HostKind::QemuKvm.synchronized());
    }

    #[test]
    fn host_config_derives_addresses() {
        let a = HostConfig::new(HostKind::Gem5Timing, 0);
        let b = HostConfig::new(HostKind::Gem5Timing, 1);
        assert_ne!(a.ip, b.ip);
        assert_ne!(a.mac, b.mac);
        assert!(a.os_tick > SimTime::ZERO);
        let kvm = HostConfig::new(HostKind::QemuKvm, 2);
        assert_eq!(kvm.os_tick, SimTime::ZERO);
    }

    #[test]
    fn charge_serializes_cpu_time() {
        let cfg = HostConfig::new(HostKind::Gem5Timing, 0);
        let mut h = HostModel::new(cfg, Box::new(NullApp));
        h.charge(SimTime::from_us(10), SimTime::from_us(5));
        assert_eq!(h.cpu_busy_until, SimTime::from_us(15));
        // Work arriving while busy extends from the busy point, not from now.
        h.charge(SimTime::from_us(12), SimTime::from_us(5));
        assert_eq!(h.cpu_busy_until, SimTime::from_us(20));
        // After idle time, charging restarts from now.
        h.charge(SimTime::from_us(100), SimTime::from_us(1));
        assert_eq!(h.cpu_busy_until, SimTime::from_us(101));
        assert_eq!(h.stats().cpu_busy, SimTime::from_us(11));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let cfg = HostConfig::new(HostKind::Gem5Timing, 3);
        let mut a = HostModel::new(cfg, Box::new(NullApp));
        let mut b = HostModel::new(cfg, Box::new(NullApp));
        let ja: Vec<SimTime> = (0..32).map(|_| a.jitter()).collect();
        let jb: Vec<SimTime> = (0..32).map(|_| b.jitter()).collect();
        assert_eq!(ja, jb, "same seed, same jitter sequence");
        let max = CostProfile::gem5_timing().sched_jitter_max;
        assert!(ja.iter().all(|j| *j <= max));
        assert!(ja.iter().any(|j| *j > SimTime::ZERO));
        // KVM hosts have no jitter at all.
        let mut k = HostModel::new(HostConfig::new(HostKind::QemuKvm, 9), Box::new(NullApp));
        assert_eq!(k.jitter(), SimTime::ZERO);
    }
}
