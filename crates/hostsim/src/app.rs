//! Application runtime: the interface between guest applications (iperf,
//! netperf, memcached, NOPaxos, ...) and the simulated OS.

use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simbricks_base::SimTime;
use simbricks_netstack::{NetStack, SocketAddr, SocketEvent, SocketId};
use simbricks_proto::Ipv4Addr;

/// Services the simulated OS exposes to an application during a callback.
///
/// Socket calls go straight to the host's network stack; timers and
/// explicitly modelled CPU work are collected and applied by the host model
/// when the callback returns (including charging the syscall costs).
pub struct OsServices<'a> {
    pub now: SimTime,
    pub stack: &'a mut NetStack,
    /// Requested application timers: (absolute time, token).
    pub(crate) timer_requests: &'a mut Vec<(SimTime, u64)>,
    /// Extra CPU time the application wants to consume (request processing).
    pub(crate) extra_cpu: &'a mut SimTime,
    /// Set when the application's workload is complete.
    pub(crate) finished: &'a mut bool,
    /// Number of socket syscalls performed in this callback (for costing).
    pub(crate) syscalls: &'a mut u32,
}

impl<'a> OsServices<'a> {
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Local IP address of this host.
    pub fn local_ip(&self) -> Ipv4Addr {
        self.stack.ip()
    }

    pub fn tcp_listen(&mut self, port: u16) -> Option<SocketId> {
        *self.syscalls += 1;
        self.stack.tcp_listen(port)
    }

    pub fn tcp_connect(&mut self, ip: Ipv4Addr, port: u16) -> SocketId {
        *self.syscalls += 1;
        self.stack.tcp_connect(self.now, ip, port)
    }

    pub fn tcp_send(&mut self, s: SocketId, data: &[u8]) -> usize {
        *self.syscalls += 1;
        self.stack.tcp_send(s, data)
    }

    pub fn tcp_recv(&mut self, s: SocketId, max: usize) -> Vec<u8> {
        *self.syscalls += 1;
        self.stack.tcp_recv(s, max)
    }

    pub fn tcp_send_space(&self, s: SocketId) -> usize {
        self.stack.tcp_send_space(s)
    }

    pub fn tcp_close(&mut self, s: SocketId) {
        *self.syscalls += 1;
        self.stack.tcp_close(s);
    }

    pub fn udp_bind(&mut self, port: u16) -> Option<SocketId> {
        *self.syscalls += 1;
        self.stack.udp_bind(port)
    }

    pub fn udp_send_to(&mut self, s: SocketId, to: SocketAddr, payload: &[u8]) {
        *self.syscalls += 1;
        self.stack.udp_send_to(self.now, s, to, payload);
    }

    pub fn udp_recv_from(&mut self, s: SocketId) -> Option<(SocketAddr, Vec<u8>)> {
        *self.syscalls += 1;
        self.stack.udp_recv_from(s)
    }

    /// Schedule an application timer at absolute time `at`.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        self.timer_requests.push((at, token));
    }

    /// Schedule an application timer `delay` from now.
    pub fn set_timer_in(&mut self, delay: SimTime, token: u64) {
        self.timer_requests.push((self.now + delay, token));
    }

    /// Model `duration` of application CPU work (e.g. request execution).
    pub fn consume_cpu(&mut self, duration: SimTime) {
        *self.extra_cpu += duration;
    }

    /// Declare the workload finished (the host reports and, in emulation
    /// mode, terminates).
    pub fn finish(&mut self) {
        *self.finished = true;
    }
}

/// A guest application running on a simulated host.
pub trait Application: Send {
    /// Called once after the NIC driver finished initialization.
    fn start(&mut self, os: &mut OsServices);

    /// A socket event (connection established, data available, ...) occurred.
    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent);

    /// An application timer set via [`OsServices::set_timer`] fired.
    fn on_timer(&mut self, os: &mut OsServices, token: u64);

    /// One-line result summary (throughput, latency, ...) for reports.
    fn report(&self) -> String {
        String::new()
    }

    /// Whether the workload has completed.
    fn done(&self) -> bool {
        false
    }

    /// Checkpoint support: append this application's dynamic state to `w`.
    /// The default declines, so checkpointing a host whose application lacks
    /// snapshot support fails with a clear error instead of losing state.
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        let _ = w;
        Err(SnapError::Unsupported(
            "application does not implement Application::snapshot".into(),
        ))
    }

    /// Checkpoint support: load state written by [`Application::snapshot`].
    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        let _ = r;
        Err(SnapError::Unsupported(
            "application does not implement Application::restore".into(),
        ))
    }
}

/// An application that does nothing (used for idle hosts and as a
/// placeholder while the real application is borrowed during callbacks).
pub struct NullApp;

impl Application for NullApp {
    fn start(&mut self, _os: &mut OsServices) {}
    fn on_socket_event(&mut self, _os: &mut OsServices, _ev: SocketEvent) {}
    fn on_timer(&mut self, _os: &mut OsServices, _token: u64) {}
    fn snapshot(&self, _w: &mut SnapWriter) -> SnapResult<()> {
        Ok(())
    }
    fn restore(&mut self, _r: &mut SnapReader) -> SnapResult<()> {
        Ok(())
    }
}
