//! # simbricks-hostsim
//!
//! Host (end-host server) simulators. Each simulated host runs, inside one
//! SimBricks component, the pieces a full-system simulator provides in the
//! paper: a CPU timing model, physical memory targeted by device DMA, a PCIe
//! root complex adapter, an interrupt controller, an OS-lite kernel (driver
//! execution, softirq-style receive processing, timers, sockets on top of
//! [`simbricks_netstack`]) and an application runtime.
//!
//! Three host models mirror the paper's host simulators (§6.2):
//!
//! * [`HostKind::Gem5Timing`] — detailed timing host (gem5 TimingSimple
//!   stand-in): highest per-operation CPU costs, cache-warmth effects,
//!   deterministic interrupt-scheduling jitter, fully synchronized. This is
//!   the "accurate but slow" end of the trade-off.
//! * [`HostKind::QemuTiming`] — instruction-counting host (QEMU `icount`):
//!   fixed, lower per-operation costs, synchronized.
//! * [`HostKind::QemuKvm`] — functional host (QEMU+KVM): negligible modelled
//!   costs, intended to be run with unsynchronized channels (emulation mode).
//!
//! The drivers in [`driver`] program the NIC models from `simbricks-nicsim`
//! through the SimBricks PCIe interface exactly as a guest driver would:
//! descriptor rings and packet buffers live in the host's simulated memory
//! and are read/written by the NIC via DMA; doorbells and head-index reads
//! are MMIO operations that consume (and, for reads, stall) host CPU time.

pub mod app;
pub mod driver;
pub mod host;
pub mod mem;
pub mod storage;

pub use app::{Application, OsServices};
pub use driver::NicModelKind;
pub use host::{HostConfig, HostKind, HostModel, HostStats};
pub use mem::PhysMem;
pub use storage::{
    BlockApp, BlockCompletion, BlockOsServices, StorageHostConfig, StorageHostModel,
    StorageHostStats,
};

use simbricks_base::SimTime;

/// Per-operation CPU cost profile of a host model. All work executed by the
/// simulated OS/application is charged against a single core using these
/// costs, which is what produces host-induced delays and jitter (the effects
/// the Fig. 1 and §8.1 experiments depend on).
#[derive(Clone, Copy, Debug)]
pub struct CostProfile {
    /// Interrupt entry/exit plus top-half dispatch.
    pub irq_overhead: SimTime,
    /// Fixed driver cost per received or transmitted packet.
    pub per_packet: SimTime,
    /// Copy / checksum cost per byte of packet payload.
    pub per_byte: SimTime,
    /// Protocol-stack cost per segment (TCP/UDP/IP processing).
    pub per_segment: SimTime,
    /// Cost of a socket-layer syscall (send/recv) including the user/kernel
    /// crossing.
    pub syscall: SimTime,
    /// Cost of an application-level callback (request handling etc.).
    pub app_callback: SimTime,
    /// Cost of an MMIO register write (posted, does not stall).
    pub mmio_write: SimTime,
    /// Maximum deterministic pseudo-random jitter added to interrupt
    /// scheduling (models OS scheduling variability; zero disables it).
    pub sched_jitter_max: SimTime,
    /// Minimum latency between a PCIe message arriving at the root complex
    /// and any message the host emits in response: DMA reads traverse the
    /// root complex and memory controller before completion data heads back,
    /// DMA writes are posted into write buffers, and a completed MMIO read
    /// resumes a stalled core before the driver can issue its next access.
    /// Besides realism, a nonzero reaction latency is what lets the host
    /// declare Chandy–Misra reaction lookahead on its PCIe port under
    /// hierarchical sync.
    pub pcie_reaction: SimTime,
}

impl CostProfile {
    /// Calibrated to the paper's gem5 setup: ~0.43 ns/instruction effective
    /// rate for Linux networking code paths, plus scheduling noise.
    pub fn gem5_timing() -> Self {
        CostProfile {
            irq_overhead: SimTime::from_ns(2600),
            per_packet: SimTime::from_ns(860),
            per_byte: SimTime::from_ps(350),
            per_segment: SimTime::from_ns(1300),
            syscall: SimTime::from_ns(1100),
            app_callback: SimTime::from_ns(900),
            mmio_write: SimTime::from_ns(120),
            sched_jitter_max: SimTime::from_us(6),
            pcie_reaction: SimTime::from_ns(400),
        }
    }

    /// QEMU with instruction counting at a fixed 4 GHz virtual clock.
    pub fn qemu_timing() -> Self {
        CostProfile {
            irq_overhead: SimTime::from_ns(1200),
            per_packet: SimTime::from_ns(400),
            per_byte: SimTime::from_ps(150),
            per_segment: SimTime::from_ns(600),
            syscall: SimTime::from_ns(500),
            app_callback: SimTime::from_ns(400),
            mmio_write: SimTime::from_ns(60),
            sched_jitter_max: SimTime::from_us(2),
            pcie_reaction: SimTime::from_ns(400),
        }
    }

    /// Functional emulation: costs are negligible.
    pub fn qemu_kvm() -> Self {
        CostProfile {
            irq_overhead: SimTime::from_ns(10),
            per_packet: SimTime::from_ns(5),
            per_byte: SimTime::ZERO,
            per_segment: SimTime::from_ns(5),
            syscall: SimTime::from_ns(5),
            app_callback: SimTime::from_ns(5),
            mmio_write: SimTime::from_ns(1),
            sched_jitter_max: SimTime::ZERO,
            pcie_reaction: SimTime::from_ns(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_profiles_are_ordered_by_detail() {
        let g = CostProfile::gem5_timing();
        let q = CostProfile::qemu_timing();
        let k = CostProfile::qemu_kvm();
        assert!(g.per_packet > q.per_packet);
        assert!(q.per_packet > k.per_packet);
        assert!(g.irq_overhead > q.irq_overhead);
        assert!(g.sched_jitter_max > q.sched_jitter_max);
        assert_eq!(k.sched_jitter_max, SimTime::ZERO);
    }
}
