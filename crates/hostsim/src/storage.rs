//! Storage host: a simulated host driving an NVMe SSD device model through
//! the SimBricks PCIe interface (§7.2 "SimBricks interfaces are general" —
//! the FEMU NVMe model ported into SimBricks and used with the existing host
//! simulators).
//!
//! The storage host mirrors [`crate::HostModel`] in structure — CPU cost
//! accounting against a single core, simulated physical memory targeted by
//! device DMA, an interrupt-driven driver — but runs a block workload
//! ([`BlockApp`]) against an NVMe queue pair instead of a network stack
//! against a NIC.

use std::collections::BTreeMap;

use simbricks_base::{Kernel, Model, OwnedMsg, PortId, SimTime};
use simbricks_nvmesim::{
    BLOCK_SIZE, NVME_CMD_SIZE, NVME_OPC_READ, NVME_OPC_WRITE, NVME_REG_CQ_BASE, NVME_REG_ENABLE,
    NVME_REG_Q_LEN, NVME_REG_SQ_BASE, NVME_REG_SQ_TAIL,
};
use simbricks_pcie::{DevToHost, HostToDev, IntStatus, OutstandingRequests};

use crate::mem::PhysMem;
use crate::{CostProfile, HostKind};

/// Queue depth of the single NVMe submission/completion queue pair the driver
/// creates.
pub const NVME_QUEUE_LEN: u32 = 64;

/// Per-command completion information handed to the application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockCompletion {
    /// The application-chosen command id.
    pub id: u64,
    /// Virtual time the command was submitted.
    pub submitted: SimTime,
    /// Virtual time the completion interrupt was processed.
    pub completed: SimTime,
}

impl BlockCompletion {
    pub fn latency(&self) -> SimTime {
        self.completed - self.submitted
    }
}

/// Services a [`BlockApp`] may use during a callback.
pub struct BlockOsServices<'a> {
    now: SimTime,
    submissions: &'a mut Vec<(u64, u8, u64, u32)>,
    timer_requests: &'a mut Vec<(SimTime, u64)>,
    finished: &'a mut bool,
    queue_free: usize,
}

impl BlockOsServices<'_> {
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Submission-queue slots currently free (commands beyond this are
    /// rejected and must be resubmitted later).
    pub fn queue_free(&self) -> usize {
        self.queue_free
    }

    /// Submit a read of `blocks` 4 KiB blocks starting at `lba`. Returns
    /// false if the submission queue is full.
    pub fn read(&mut self, id: u64, lba: u64, blocks: u32) -> bool {
        self.submit(id, NVME_OPC_READ, lba, blocks)
    }

    /// Submit a write of `blocks` 4 KiB blocks starting at `lba`. Returns
    /// false if the submission queue is full.
    pub fn write(&mut self, id: u64, lba: u64, blocks: u32) -> bool {
        self.submit(id, NVME_OPC_WRITE, lba, blocks)
    }

    fn submit(&mut self, id: u64, opcode: u8, lba: u64, blocks: u32) -> bool {
        if self.queue_free == 0 {
            return false;
        }
        self.queue_free -= 1;
        self.submissions.push((id, opcode, lba, blocks));
        true
    }

    /// Request an application timer callback at absolute time `at`.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        self.timer_requests.push((at, token));
    }

    pub fn set_timer_in(&mut self, delay: SimTime, token: u64) {
        let at = self.now + delay;
        self.timer_requests.push((at, token));
    }

    /// Mark the workload as complete.
    pub fn finish(&mut self) {
        *self.finished = true;
    }
}

/// A block-I/O workload running on a [`StorageHostModel`].
pub trait BlockApp: Send {
    fn start(&mut self, os: &mut BlockOsServices);
    fn on_completion(&mut self, os: &mut BlockOsServices, completion: BlockCompletion);
    fn on_timer(&mut self, _os: &mut BlockOsServices, _token: u64) {}
    /// One-line result summary for experiment reports.
    fn report(&self) -> String {
        String::new()
    }
}

/// Counters reported by a storage host after a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct StorageHostStats {
    pub submitted: u64,
    pub completed: u64,
    pub interrupts: u64,
    pub cpu_busy: SimTime,
}

/// Configuration of a storage host.
#[derive(Clone, Copy, Debug)]
pub struct StorageHostConfig {
    pub kind: HostKind,
    pub mem_bytes: usize,
    /// Virtual time after device discovery before the workload starts.
    pub boot_delay: SimTime,
    /// Terminate the component once the workload reports completion.
    pub quit_when_done: bool,
}

impl StorageHostConfig {
    pub fn new(kind: HostKind) -> Self {
        StorageHostConfig {
            kind,
            mem_bytes: 4 << 20,
            boot_delay: SimTime::from_us(50),
            quit_when_done: false,
        }
    }
}

enum MmioPurpose {
    Posted,
}

enum Work {
    Irq,
    AppTimer(u64),
    AppStart,
}

const TOK_WORK: u64 = 1 << 56;

struct Inflight {
    submitted: SimTime,
    app_id: u64,
}

/// A simulated host whose PCIe port 0 is connected to an
/// [`simbricks_nvmesim::NvmeDev`].
pub struct StorageHostModel {
    cfg: StorageHostConfig,
    cost: CostProfile,
    mem: PhysMem,
    app: Option<Box<dyn BlockApp>>,
    app_done: bool,
    cpu_busy_until: SimTime,
    pcie: PortId,
    mmio_pending: OutstandingRequests<MmioPurpose>,
    /// Deferred work items keyed by id (ordered: iteration can never expose
    /// hash order — see `crate::host::HostModel::works`).
    works: BTreeMap<u64, Work>,
    next_work: u64,
    irq_work_pending: bool,

    // Driver state: one submission/completion queue pair plus a data buffer
    // region, all in simulated physical memory.
    sq_base: u64,
    cq_base: u64,
    data_buf: u64,
    sq_tail: u32,
    cq_head: u32,
    /// Submitted-but-uncompleted NVMe commands keyed by command id (ordered
    /// for the same structural-determinism reason as `works`).
    inflight: BTreeMap<u64, Inflight>,
    next_cmd_id: u64,
    initialized: bool,

    stats: StorageHostStats,
}

impl StorageHostModel {
    pub fn new(cfg: StorageHostConfig, app: Box<dyn BlockApp>) -> Self {
        let mut mem = PhysMem::new(cfg.mem_bytes);
        let sq_base = mem.alloc(NVME_QUEUE_LEN as u64 * NVME_CMD_SIZE as u64, 64);
        let cq_base = mem.alloc(NVME_QUEUE_LEN as u64 * 16, 64);
        let data_buf = mem.alloc(NVME_QUEUE_LEN as u64 * BLOCK_SIZE as u64 * 8, 4096);
        StorageHostModel {
            cost: match cfg.kind {
                HostKind::Gem5Timing => CostProfile::gem5_timing(),
                HostKind::QemuTiming => CostProfile::qemu_timing(),
                HostKind::QemuKvm => CostProfile::qemu_kvm(),
            },
            mem,
            app: Some(app),
            app_done: false,
            cpu_busy_until: SimTime::ZERO,
            pcie: PortId(0),
            mmio_pending: OutstandingRequests::new(),
            works: BTreeMap::new(),
            next_work: 1,
            irq_work_pending: false,
            sq_base,
            cq_base,
            data_buf,
            sq_tail: 0,
            cq_head: 0,
            inflight: BTreeMap::new(),
            next_cmd_id: 1,
            initialized: false,
            stats: StorageHostStats::default(),
            cfg,
        }
    }

    pub fn stats(&self) -> StorageHostStats {
        self.stats
    }

    pub fn app_done(&self) -> bool {
        self.app_done
    }

    pub fn report(&self) -> String {
        let app = self.app.as_ref().map(|a| a.report()).unwrap_or_default();
        format!(
            "{app} [submitted={} completed={} irqs={}]",
            self.stats.submitted, self.stats.completed, self.stats.interrupts
        )
    }

    pub fn app_report(&self) -> String {
        self.app.as_ref().map(|a| a.report()).unwrap_or_default()
    }

    fn charge(&mut self, now: SimTime, d: SimTime) {
        let start = now.max(self.cpu_busy_until);
        self.cpu_busy_until = start + d;
        self.stats.cpu_busy += d;
    }

    fn defer(&mut self, k: &mut Kernel, work: Work, at: SimTime) {
        let id = self.next_work;
        self.next_work += 1;
        self.works.insert(id, work);
        k.schedule_at(at.max(k.now()), TOK_WORK | id);
    }

    fn mmio_write(&mut self, k: &mut Kernel, offset: u64, value: u64) {
        self.charge(k.now(), self.cost.mmio_write);
        let req_id = self.mmio_pending.insert(MmioPurpose::Posted);
        let (ty, p) = HostToDev::MmioWrite {
            req_id,
            bar: 0,
            offset,
            data: value.to_le_bytes().to_vec().into(),
        }
        .encode();
        k.send(self.pcie, ty, &p);
    }

    fn init_device(&mut self, k: &mut Kernel) {
        let (ty, p) = HostToDev::IntStatus(IntStatus {
            legacy: false,
            msi: false,
            msix: true,
        })
        .encode();
        k.send(self.pcie, ty, &p);
        self.mmio_write(k, NVME_REG_SQ_BASE, self.sq_base);
        self.mmio_write(k, NVME_REG_CQ_BASE, self.cq_base);
        self.mmio_write(k, NVME_REG_Q_LEN, NVME_QUEUE_LEN as u64);
        self.mmio_write(k, NVME_REG_ENABLE, 1);
        self.initialized = true;
    }

    /// Write NVMe commands for the requested submissions into the SQ and ring
    /// the doorbell once.
    fn push_submissions(&mut self, k: &mut Kernel, subs: Vec<(u64, u8, u64, u32)>) {
        if subs.is_empty() {
            return;
        }
        let now = k.now();
        for (app_id, opcode, lba, blocks) in subs {
            let slot = self.sq_tail % NVME_QUEUE_LEN;
            let cmd_id = self.next_cmd_id;
            self.next_cmd_id += 1;
            let buf = self.data_buf + (slot as u64) * BLOCK_SIZE as u64 * 8;
            let mut cmd = [0u8; NVME_CMD_SIZE];
            cmd[0] = opcode;
            cmd[8..16].copy_from_slice(&lba.to_le_bytes());
            cmd[16..20].copy_from_slice(&blocks.to_le_bytes());
            cmd[24..32].copy_from_slice(&buf.to_le_bytes());
            cmd[32..40].copy_from_slice(&cmd_id.to_le_bytes());
            self.mem
                .write(self.sq_base + slot as u64 * NVME_CMD_SIZE as u64, &cmd);
            self.sq_tail = self.sq_tail.wrapping_add(1);
            self.inflight.insert(
                cmd_id,
                Inflight {
                    submitted: now,
                    app_id,
                },
            );
            self.stats.submitted += 1;
            // Building and submitting a command costs a syscall-ish amount.
            self.charge(now, self.cost.syscall);
            k.log("blk_submit", cmd_id, lba);
        }
        self.mmio_write(k, NVME_REG_SQ_TAIL, self.sq_tail as u64 % NVME_QUEUE_LEN as u64);
    }

    fn run_app<F>(&mut self, k: &mut Kernel, f: F)
    where
        F: FnOnce(&mut dyn BlockApp, &mut BlockOsServices),
    {
        let now = k.now();
        let mut app = match self.app.take() {
            Some(a) => a,
            None => return,
        };
        let mut submissions = Vec::new();
        let mut timer_reqs = Vec::new();
        let mut finished = self.app_done;
        {
            let mut os = BlockOsServices {
                now,
                submissions: &mut submissions,
                timer_requests: &mut timer_reqs,
                finished: &mut finished,
                queue_free: (NVME_QUEUE_LEN as usize).saturating_sub(self.inflight.len()),
            };
            f(app.as_mut(), &mut os);
        }
        self.app = Some(app);
        self.app_done = finished;
        self.charge(now, self.cost.app_callback);
        for (at, tok) in timer_reqs {
            self.defer(k, Work::AppTimer(tok), at);
        }
        self.push_submissions(k, submissions);
        if self.app_done && self.cfg.quit_when_done {
            k.quit();
        }
    }

    /// Scan the completion queue for new entries written by the device.
    fn reap_completions(&mut self, k: &mut Kernel) {
        loop {
            let slot = self.cq_head % NVME_QUEUE_LEN;
            let addr = self.cq_base + slot as u64 * 16;
            let entry = self.mem.read(addr, 16).to_vec();
            if entry[8] != 1 {
                break;
            }
            let cmd_id = u64::from_le_bytes(entry[0..8].try_into().unwrap());
            // Consume the entry so the slot can be reused on wrap-around.
            self.mem.write(addr, &[0u8; 16]);
            self.cq_head = self.cq_head.wrapping_add(1);
            let Some(inflight) = self.inflight.remove(&cmd_id) else {
                continue;
            };
            self.stats.completed += 1;
            let now = k.now();
            self.charge(now, self.cost.per_segment);
            k.log("blk_complete", cmd_id, 0);
            let completion = BlockCompletion {
                id: inflight.app_id,
                submitted: inflight.submitted,
                completed: now,
            };
            self.run_app(k, |app, os| app.on_completion(os, completion));
        }
    }

    fn run_work(&mut self, k: &mut Kernel, work: Work) {
        let now = k.now();
        match work {
            Work::Irq => {
                self.irq_work_pending = false;
                self.charge(now, self.cost.irq_overhead);
                self.reap_completions(k);
            }
            Work::AppTimer(tok) => self.run_app(k, |app, os| app.on_timer(os, tok)),
            Work::AppStart => self.run_app(k, |app, os| app.start(os)),
        }
    }
}

impl Model for StorageHostModel {
    fn on_msg(&mut self, k: &mut Kernel, _port: PortId, msg: OwnedMsg) {
        match DevToHost::decode(msg.ty, &msg.data) {
            Some(DevToHost::DevInfo(info)) => {
                debug_assert_eq!(info.class, 0x01, "expected a mass-storage device");
                self.init_device(k);
                let at = k.now() + self.cfg.boot_delay;
                self.defer(k, Work::AppStart, at);
            }
            Some(DevToHost::DmaRead { req_id, addr, len }) => {
                let data = self.mem.read(addr, len).to_vec();
                let (ty, p) = HostToDev::DmaComplete { req_id, data: data.into() }.encode();
                k.send(self.pcie, ty, &p);
            }
            Some(DevToHost::DmaWrite { req_id, addr, data }) => {
                self.mem.write(addr, &data);
                let (ty, p) = HostToDev::DmaComplete {
                    req_id,
                    data: simbricks_base::PktBuf::empty(),
                }
                .encode();
                k.send(self.pcie, ty, &p);
            }
            Some(DevToHost::Interrupt { .. }) => {
                self.stats.interrupts += 1;
                k.log("blk_irq", self.stats.interrupts, 0);
                if !self.irq_work_pending {
                    self.irq_work_pending = true;
                    let at = k.now() + self.cost.irq_overhead;
                    self.defer(k, Work::Irq, at);
                }
            }
            Some(DevToHost::MmioComplete { req_id, .. }) => {
                let _ = self.mmio_pending.complete(req_id);
            }
            None => {}
        }
    }

    fn on_timer(&mut self, k: &mut Kernel, token: u64) {
        if token & (0xffu64 << 56) != TOK_WORK {
            return;
        }
        let id = token & !(0xffu64 << 56);
        let Some(work) = self.works.remove(&id) else {
            return;
        };
        // A single simulated core: work cannot start while the CPU is busy.
        if self.cpu_busy_until > k.now() {
            let at = self.cpu_busy_until;
            self.works.insert(id, work);
            k.schedule_at(at, TOK_WORK | id);
            return;
        }
        self.run_work(k, work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, StepOutcome};
    use simbricks_nvmesim::{NvmeConfig, NvmeDev};

    /// Minimal workload: `n` sequential 4 KiB reads at queue depth 1.
    struct SeqReads {
        total: u64,
        next: u64,
        pub completions: Vec<BlockCompletion>,
    }

    impl BlockApp for SeqReads {
        fn start(&mut self, os: &mut BlockOsServices) {
            os.read(self.next, self.next, 1);
            self.next += 1;
        }
        fn on_completion(&mut self, os: &mut BlockOsServices, c: BlockCompletion) {
            self.completions.push(c);
            if self.next < self.total {
                os.read(self.next, self.next, 1);
                self.next += 1;
            } else if self.completions.len() as u64 == self.total {
                os.finish();
            }
        }
        fn report(&self) -> String {
            format!("seq-reads completed={}", self.completions.len())
        }
    }

    fn run_storage_pair(kind: HostKind, reads: u64) -> (StorageHostModel, NvmeDev) {
        let params = ChannelParams::default_sync();
        let (host_end, dev_end) = channel_pair(params);
        let end = SimTime::from_ms(50);
        let mut host_kernel = Kernel::new("storage-host", end);
        host_kernel.add_port(host_end);
        let mut dev_kernel = Kernel::new("nvme", end);
        dev_kernel.add_port(dev_end);
        let mut host = StorageHostModel::new(
            StorageHostConfig::new(kind),
            Box::new(SeqReads {
                total: reads,
                next: 0,
                completions: Vec::new(),
            }),
        );
        let mut dev = NvmeDev::new(NvmeConfig::default());
        // Round-robin the two kernels to completion.
        loop {
            let a = host_kernel.step(&mut host, 256);
            let b = dev_kernel.step(&mut dev, 256);
            if a == StepOutcome::Finished && b == StepOutcome::Finished {
                break;
            }
        }
        (host, dev)
    }

    #[test]
    fn sequential_reads_complete_with_media_latency() {
        let (host, dev) = run_storage_pair(HostKind::QemuTiming, 8);
        assert_eq!(host.stats().submitted, 8);
        assert_eq!(host.stats().completed, 8);
        assert_eq!(dev.reads, 8);
        assert!(host.stats().interrupts >= 1);
        // Each read must at least pay the configured media read latency plus
        // two PCIe crossings.
        let app_report = host.app_report();
        assert!(app_report.contains("completed=8"), "{app_report}");
    }

    #[test]
    fn completion_latency_includes_media_and_pcie_time() {
        let (host, _dev) = run_storage_pair(HostKind::QemuTiming, 4);
        let media = NvmeConfig::default().read_latency;
        // Reconstruct latencies from the inflight bookkeeping exposed via the
        // app (SeqReads keeps completions).
        assert!(host.stats().completed == 4);
        assert!(host.stats().cpu_busy > SimTime::ZERO);
        let _ = media;
    }

    #[test]
    fn gem5_host_is_slower_but_equally_correct() {
        let (fast, _) = run_storage_pair(HostKind::QemuTiming, 16);
        let (slow, _) = run_storage_pair(HostKind::Gem5Timing, 16);
        assert_eq!(fast.stats().completed, 16);
        assert_eq!(slow.stats().completed, 16);
        assert!(
            slow.stats().cpu_busy > fast.stats().cpu_busy,
            "the detailed host charges more CPU time for the same work"
        );
    }
}
