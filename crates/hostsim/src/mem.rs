//! Simulated host physical memory, the target of device DMA.

use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter, Snapshot};

/// Snapshot page granularity: only pages containing a non-zero byte are
/// encoded, so a checkpoint of a mostly-untouched multi-megabyte memory
/// stays proportional to the memory actually used.
const SNAP_PAGE: usize = 4096;

/// A flat physical memory of fixed size. Descriptor rings and packet buffers
/// allocated by drivers live here; NIC and NVMe models read and write it via
/// DMA messages which the host adapter services against this array.
pub struct PhysMem {
    mem: Vec<u8>,
    /// Simple bump allocator for driver data structures.
    next_alloc: u64,
}

impl PhysMem {
    pub fn new(size: usize) -> Self {
        PhysMem {
            mem: vec![0u8; size],
            // Keep the first page unused so address 0 never appears in rings.
            next_alloc: 0x1000,
        }
    }

    pub fn size(&self) -> usize {
        self.mem.len()
    }

    /// Allocate `len` bytes aligned to `align`; returns the physical address.
    pub fn alloc(&mut self, len: u64, align: u64) -> u64 {
        let align = align.max(1);
        let addr = self.next_alloc.div_ceil(align) * align;
        assert!(
            (addr + len) as usize <= self.mem.len(),
            "simulated physical memory exhausted ({} of {} bytes)",
            addr + len,
            self.mem.len()
        );
        self.next_alloc = addr + len;
        addr
    }

    pub fn read(&self, addr: u64, len: usize) -> &[u8] {
        &self.mem[addr as usize..addr as usize + len]
    }

    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.mem[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read(addr, 8).try_into().unwrap())
    }

    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }
}

impl Snapshot for PhysMem {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.u64(self.next_alloc);
        w.usize(self.mem.len());
        // Sparse page encoding: (page index, raw page) for non-zero pages.
        let pages: Vec<usize> = self
            .mem
            .chunks(SNAP_PAGE)
            .enumerate()
            .filter(|(_, page)| page.iter().any(|b| *b != 0))
            .map(|(i, _)| i)
            .collect();
        w.usize(pages.len());
        for i in pages {
            let start = i * SNAP_PAGE;
            let end = (start + SNAP_PAGE).min(self.mem.len());
            w.u64(i as u64);
            w.bytes(&self.mem[start..end]);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.next_alloc = r.u64()?;
        let size = r.usize()?;
        if size != self.mem.len() {
            return Err(SnapError::Corrupt(format!(
                "physical memory size mismatch (snapshot {size}, built {})",
                self.mem.len()
            )));
        }
        self.mem.fill(0);
        for _ in 0..r.usize()? {
            let i = r.u64()? as usize;
            let page = r.bytes()?;
            let start = i.checked_mul(SNAP_PAGE).ok_or(SnapError::Truncated)?;
            let end = start.checked_add(page.len()).ok_or(SnapError::Truncated)?;
            if end > self.mem.len() || page.len() > SNAP_PAGE {
                return Err(SnapError::Corrupt(format!("page {i} out of bounds")));
            }
            self.mem[start..end].copy_from_slice(&page);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_non_overlapping() {
        let mut m = PhysMem::new(1 << 20);
        let a = m.alloc(100, 64);
        let b = m.alloc(100, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert!(a >= 0x1000);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = PhysMem::new(1 << 16);
        let a = m.alloc(16, 8);
        m.write(a, &[1, 2, 3, 4]);
        assert_eq!(m.read(a, 4), &[1, 2, 3, 4]);
        m.write_u64(a, 0xdead_beef);
        assert_eq!(m.read_u64(a), 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut m = PhysMem::new(0x2000);
        let _ = m.alloc(0x2000, 8);
    }

    #[test]
    fn snapshot_is_sparse_and_roundtrips() {
        let mut m = PhysMem::new(1 << 20);
        let a = m.alloc(256, 64);
        m.write(a, &[0xabu8; 256]);
        m.write(1 << 19, &[7u8; 10]);
        let mut w = SnapWriter::new();
        m.snapshot(&mut w).unwrap();
        let buf = w.into_vec();
        assert!(
            buf.len() < 3 * SNAP_PAGE,
            "sparse encoding: {} bytes for 1 MiB with 2 touched pages",
            buf.len()
        );
        let mut back = PhysMem::new(1 << 20);
        back.restore(&mut SnapReader::new(&buf)).unwrap();
        assert_eq!(back.read(a, 256), m.read(a, 256));
        assert_eq!(back.read(1 << 19, 10), &[7u8; 10]);
        assert_eq!(back.read(0, 16), &[0u8; 16], "untouched pages stay zero");
        // Allocator position carries over: new allocations do not overlap.
        let b = back.alloc(64, 64);
        assert!(b >= a + 256);
        // Size mismatch is rejected.
        let mut wrong = PhysMem::new(1 << 19);
        assert!(wrong.restore(&mut SnapReader::new(&buf)).is_err());
    }
}
