//! Simulated host physical memory, the target of device DMA.

/// A flat physical memory of fixed size. Descriptor rings and packet buffers
/// allocated by drivers live here; NIC and NVMe models read and write it via
/// DMA messages which the host adapter services against this array.
pub struct PhysMem {
    mem: Vec<u8>,
    /// Simple bump allocator for driver data structures.
    next_alloc: u64,
}

impl PhysMem {
    pub fn new(size: usize) -> Self {
        PhysMem {
            mem: vec![0u8; size],
            // Keep the first page unused so address 0 never appears in rings.
            next_alloc: 0x1000,
        }
    }

    pub fn size(&self) -> usize {
        self.mem.len()
    }

    /// Allocate `len` bytes aligned to `align`; returns the physical address.
    pub fn alloc(&mut self, len: u64, align: u64) -> u64 {
        let align = align.max(1);
        let addr = self.next_alloc.div_ceil(align) * align;
        assert!(
            (addr + len) as usize <= self.mem.len(),
            "simulated physical memory exhausted ({} of {} bytes)",
            addr + len,
            self.mem.len()
        );
        self.next_alloc = addr + len;
        addr
    }

    pub fn read(&self, addr: u64, len: usize) -> &[u8] {
        &self.mem[addr as usize..addr as usize + len]
    }

    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.mem[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read(addr, 8).try_into().unwrap())
    }

    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_non_overlapping() {
        let mut m = PhysMem::new(1 << 20);
        let a = m.alloc(100, 64);
        let b = m.alloc(100, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert!(a >= 0x1000);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = PhysMem::new(1 << 16);
        let a = m.alloc(16, 8);
        m.write(a, &[1, 2, 3, 4]);
        assert_eq!(m.read(a, 4), &[1, 2, 3, 4]);
        m.write_u64(a, 0xdead_beef);
        assert_eq!(m.read_u64(a), 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut m = PhysMem::new(0x2000);
        let _ = m.alloc(0x2000, 8);
    }
}
