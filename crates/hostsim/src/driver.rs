//! Guest NIC drivers.
//!
//! These drive the `simbricks-nicsim` device models exactly the way a guest
//! kernel driver would: descriptor rings and packet buffers are allocated in
//! simulated physical memory, doorbells are MMIO writes, and completions are
//! discovered either by polling DD bits that the NIC wrote back into host
//! memory (i40e, e1000) or by reading the queue head-index registers via MMIO
//! (Corundum) — the §8.1 distinction.
//!
//! Driver methods do not perform I/O themselves; they return [`DriverOp`]s
//! that the host model turns into PCIe messages (and charges CPU time for).

use simbricks_base::{BufPool, PktBuf};
use simbricks_base::snap::{SnapReader, SnapResult, SnapWriter, Snapshot};
use simbricks_nicsim::regs::*;
use simbricks_nicsim::NicVariant;

use crate::mem::PhysMem;

/// Which NIC model the driver is bound to.
pub type NicModelKind = NicVariant;

/// An MMIO operation the driver wants performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverOp {
    /// Posted register write (does not stall the CPU).
    MmioWrite { offset: u64, value: u64 },
    /// Blocking register read; the host calls
    /// [`NicDriver::on_mmio_read`] with the result. Reads stall the CPU for a
    /// full PCIe round trip.
    MmioRead { offset: u64, purpose: ReadPurpose },
}

/// Why the driver issued an MMIO read (to resume the right state machine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadPurpose {
    /// Corundum: RX queue head index (how many receive completions exist).
    RxHead,
    /// Corundum: TX queue head index (how many transmit completions exist).
    TxHead,
    /// e1000: interrupt cause register.
    Icr,
}

/// Result of letting the driver process an interrupt or a completed read.
#[derive(Default)]
pub struct DriverOutcome {
    /// Received frames to hand to the network stack (pooled buffers read
    /// straight out of the receive rings).
    pub frames: Vec<PktBuf>,
    /// Follow-up MMIO operations.
    pub ops: Vec<DriverOp>,
    /// Number of MMIO read stalls this step introduced (reporting).
    pub mmio_reads: u32,
}

const RING_ENTRIES: u32 = 256;
const BUF_SIZE: u64 = 4352;
/// Transmit buffer size when the NIC supports TCP segmentation offload: one
/// TSO super-segment ([`TSO_SIZE`] payload bytes plus headers) must fit.
const TSO_BUF_SIZE: u64 = 9216;

/// Payload bytes of one TCP super-segment handed to a TSO-capable NIC. The
/// host network stack is configured with this value when the attached NIC
/// advertises segmentation offload.
pub const TSO_SIZE: usize = 8192;

/// A guest driver instance for one NIC.
pub struct NicDriver {
    // snap-skip: construction-time config; restore runs on an identically built host
    kind: NicModelKind,
    /// Interface MTU (used to derive the wire MSS programmed for TSO).
    // snap-skip: construction-time config; restore runs on an identically built host
    mtu: usize,
    tx_base: u64,
    rx_base: u64,
    tx_bufs: u64,
    rx_bufs: u64,
    tx_tail: u32,
    tx_clean: u32,
    rx_next: u32,
    rx_tail: u32,
    /// Interrupt throttling value the driver programs (ns).
    itr_ns: u64,
    pub initialized: bool,
    pub tx_dropped_ring_full: u64,
    pub tx_packets: u64,
    pub rx_packets: u64,
    /// Arena receive frames are copied into out of guest memory.
    // snap-skip: transient buffer arena; contents are never observable across steps
    pool: BufPool,
}

impl NicDriver {
    pub fn new(kind: NicModelKind, itr_ns: u64, mtu: usize) -> Self {
        NicDriver {
            kind,
            mtu,
            tx_base: 0,
            rx_base: 0,
            tx_bufs: 0,
            rx_bufs: 0,
            tx_tail: 0,
            tx_clean: 0,
            rx_next: 0,
            rx_tail: 0,
            pool: BufPool::new(),
            itr_ns,
            initialized: false,
            tx_dropped_ring_full: 0,
            tx_packets: 0,
            rx_packets: 0,
        }
    }

    pub fn kind(&self) -> NicModelKind {
        self.kind
    }

    /// Rebase the driver onto an external buffer pool (the owning kernel's
    /// per-component arena), so ring-read allocations count per host.
    pub fn set_pool(&mut self, pool: BufPool) {
        self.pool = pool;
    }

    /// Whether the bound NIC model supports TCP segmentation offload (only
    /// the i40e advertises it, as in its Linux driver).
    pub fn supports_tso(&self) -> bool {
        self.kind == NicVariant::I40e
    }

    /// Size of the transmit buffers this driver allocates.
    fn tx_buf_size(&self) -> u64 {
        if self.supports_tso() {
            TSO_BUF_SIZE
        } else {
            BUF_SIZE
        }
    }

    /// Probe/initialize the device: allocate rings and buffers, program the
    /// queue registers, post all receive buffers, enable the device.
    pub fn init(&mut self, mem: &mut PhysMem) -> Vec<DriverOp> {
        let ring_bytes = RING_ENTRIES as u64 * DESC_SIZE as u64;
        self.tx_base = mem.alloc(ring_bytes, 64);
        self.rx_base = mem.alloc(ring_bytes, 64);
        self.tx_bufs = mem.alloc(RING_ENTRIES as u64 * self.tx_buf_size(), 64);
        self.rx_bufs = mem.alloc(RING_ENTRIES as u64 * BUF_SIZE, 64);

        // Post every RX descriptor.
        for i in 0..RING_ENTRIES {
            let d = Descriptor {
                addr: self.rx_bufs + i as u64 * BUF_SIZE,
                len: BUF_SIZE as u16,
                flags: 0,
                status: 0,
            };
            mem.write(self.rx_base + i as u64 * DESC_SIZE as u64, &d.to_bytes());
        }
        self.rx_tail = RING_ENTRIES - 1;
        self.initialized = true;

        let mut ops = vec![
            DriverOp::MmioWrite {
                offset: queue_reg(0, Q_TX_BASE),
                value: self.tx_base,
            },
            DriverOp::MmioWrite {
                offset: queue_reg(0, Q_TX_LEN),
                value: RING_ENTRIES as u64,
            },
            DriverOp::MmioWrite {
                offset: queue_reg(0, Q_RX_BASE),
                value: self.rx_base,
            },
            DriverOp::MmioWrite {
                offset: queue_reg(0, Q_RX_LEN),
                value: RING_ENTRIES as u64,
            },
            DriverOp::MmioWrite {
                offset: queue_reg(0, Q_ITR),
                value: self.itr_ns,
            },
            DriverOp::MmioWrite {
                offset: REG_FLAGS,
                value: FLAG_TX_CSUM | FLAG_RX_CSUM,
            },
            DriverOp::MmioWrite {
                offset: REG_CTRL,
                value: 1,
            },
            DriverOp::MmioWrite {
                offset: queue_reg(0, Q_RX_TAIL),
                value: self.rx_tail as u64,
            },
        ];
        if self.supports_tso() {
            // Program the wire MSS the NIC's segmentation engine must use.
            ops.insert(
                ops.len() - 2,
                DriverOp::MmioWrite {
                    offset: queue_reg(0, Q_TSO_MSS),
                    value: self.mtu.saturating_sub(40).max(100) as u64,
                },
            );
        }
        ops
    }

    fn tx_ring_full(&self) -> bool {
        (self.tx_tail + 1) % RING_ENTRIES == self.tx_clean % RING_ENTRIES
    }

    /// Queue a frame for transmission: copy it to a transmit buffer, write
    /// the descriptor, and ring the doorbell.
    pub fn transmit(&mut self, mem: &mut PhysMem, frame: &[u8]) -> Vec<DriverOp> {
        if !self.initialized || frame.len() as u64 > self.tx_buf_size() {
            return Vec::new();
        }
        if self.tx_ring_full() {
            self.tx_dropped_ring_full += 1;
            return Vec::new();
        }
        let idx = self.tx_tail;
        let buf = self.tx_bufs + idx as u64 * self.tx_buf_size();
        mem.write(buf, frame);
        let mut flags = DESC_EOP | DESC_CSUM_OFFLOAD;
        if self.supports_tso() && frame.len() > self.mtu + simbricks_proto::ETH_HEADER_LEN {
            flags |= DESC_TSO;
        }
        let d = Descriptor {
            addr: buf,
            len: frame.len() as u16,
            flags,
            status: 0,
        };
        mem.write(self.tx_base + idx as u64 * DESC_SIZE as u64, &d.to_bytes());
        self.tx_tail = (self.tx_tail + 1) % RING_ENTRIES;
        self.tx_packets += 1;
        vec![DriverOp::MmioWrite {
            offset: queue_reg(0, Q_TX_TAIL),
            value: self.tx_tail as u64,
        }]
    }

    /// Interrupt handler entry point. Depending on the NIC model this either
    /// processes the rings directly (DD-bit polling in host memory) or asks
    /// for head-index / ICR register reads first.
    pub fn on_interrupt(&mut self, mem: &mut PhysMem) -> DriverOutcome {
        match self.kind {
            NicVariant::I40e => self.reap_rings_dd(mem),
            NicVariant::E1000 => DriverOutcome {
                frames: Vec::new(),
                ops: vec![DriverOp::MmioRead {
                    offset: REG_ICR,
                    purpose: ReadPurpose::Icr,
                }],
                mmio_reads: 1,
            },
            NicVariant::Corundum => DriverOutcome {
                frames: Vec::new(),
                ops: vec![DriverOp::MmioRead {
                    offset: queue_reg(0, Q_RX_HEAD),
                    purpose: ReadPurpose::RxHead,
                }],
                mmio_reads: 1,
            },
        }
    }

    /// Continue after a blocking MMIO read completed.
    pub fn on_mmio_read(
        &mut self,
        mem: &mut PhysMem,
        purpose: ReadPurpose,
        value: u64,
    ) -> DriverOutcome {
        match purpose {
            ReadPurpose::Icr => {
                // e1000: the cause register told us what happened; now poll
                // the rings via DD bits like i40e.
                let _ = value;
                self.reap_rings_dd(mem)
            }
            ReadPurpose::RxHead => {
                let mut out = self.reap_rx_until(mem, value as u32);
                // Corundum has no completion bits in host memory, so the only
                // way to discover packets that arrived while this batch was
                // being processed is to read the head register again. Under
                // load this turns into repeated sub-batch polls — the extra
                // PCIe round trips behind the §8.1 finding. The loop ends
                // naturally once a read reports no new completions.
                if !out.frames.is_empty() {
                    out.ops.push(DriverOp::MmioRead {
                        offset: queue_reg(0, Q_RX_HEAD),
                        purpose: ReadPurpose::RxHead,
                    });
                    out.mmio_reads += 1;
                }
                // Reclaim TX descriptors when the ring is half full: another
                // head-register read (a second stall).
                let outstanding =
                    (self.tx_tail + RING_ENTRIES - self.tx_clean) % RING_ENTRIES;
                if outstanding > RING_ENTRIES / 2 {
                    out.ops.push(DriverOp::MmioRead {
                        offset: queue_reg(0, Q_TX_HEAD),
                        purpose: ReadPurpose::TxHead,
                    });
                    out.mmio_reads += 1;
                }
                out
            }
            ReadPurpose::TxHead => {
                self.tx_clean = value as u32 % RING_ENTRIES;
                DriverOutcome::default()
            }
        }
    }

    /// i40e / e1000 receive and transmit reaping: scan descriptors in host
    /// memory for the DD bit the NIC wrote back.
    fn reap_rings_dd(&mut self, mem: &mut PhysMem) -> DriverOutcome {
        let mut out = DriverOutcome::default();
        // TX clean-up.
        while self.tx_clean != self.tx_tail {
            let daddr = self.tx_base + self.tx_clean as u64 * DESC_SIZE as u64;
            let d = Descriptor::from_bytes(mem.read(daddr, DESC_SIZE)).unwrap();
            if !d.has_dd() {
                break;
            }
            mem.write(daddr, &Descriptor::default().to_bytes());
            self.tx_clean = (self.tx_clean + 1) % RING_ENTRIES;
        }
        // RX.
        loop {
            let idx = self.rx_next;
            let daddr = self.rx_base + idx as u64 * DESC_SIZE as u64;
            let d = Descriptor::from_bytes(mem.read(daddr, DESC_SIZE)).unwrap();
            if !d.has_dd() {
                break;
            }
            let buf = self.rx_bufs + idx as u64 * BUF_SIZE;
            out.frames.push(self.pool.copy_from_slice(mem.read(buf, d.len as usize)));
            self.rx_packets += 1;
            // Re-arm the descriptor and advance.
            let fresh = Descriptor {
                addr: buf,
                len: BUF_SIZE as u16,
                flags: 0,
                status: 0,
            };
            mem.write(daddr, &fresh.to_bytes());
            self.rx_next = (self.rx_next + 1) % RING_ENTRIES;
            self.rx_tail = (self.rx_tail + 1) % RING_ENTRIES;
        }
        if !out.frames.is_empty() {
            out.ops.push(DriverOp::MmioWrite {
                offset: queue_reg(0, Q_RX_TAIL),
                value: self.rx_tail as u64,
            });
        }
        out
    }

    /// Corundum receive reaping: the NIC told us (via the head register) how
    /// many descriptors completed; the data is already in our buffers.
    fn reap_rx_until(&mut self, mem: &mut PhysMem, head: u32) -> DriverOutcome {
        let mut out = DriverOutcome::default();
        while self.rx_next != head % RING_ENTRIES {
            let idx = self.rx_next;
            let buf = self.rx_bufs + idx as u64 * BUF_SIZE;
            // Without write-back the length is not in the descriptor; parse
            // the Ethernet/IP headers to recover the frame length.
            let raw = mem.read(buf, BUF_SIZE as usize);
            let len = frame_length(raw).unwrap_or(64).min(BUF_SIZE as usize);
            out.frames.push(self.pool.copy_from_slice(&raw[..len]));
            self.rx_packets += 1;
            self.rx_next = (self.rx_next + 1) % RING_ENTRIES;
            self.rx_tail = (self.rx_tail + 1) % RING_ENTRIES;
        }
        if !out.frames.is_empty() {
            out.ops.push(DriverOp::MmioWrite {
                offset: queue_reg(0, Q_RX_TAIL),
                value: self.rx_tail as u64,
            });
        }
        out
    }
}

impl Snapshot for NicDriver {
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.u64(self.tx_base);
        w.u64(self.rx_base);
        w.u64(self.tx_bufs);
        w.u64(self.rx_bufs);
        w.u32(self.tx_tail);
        w.u32(self.tx_clean);
        w.u32(self.rx_next);
        w.u32(self.rx_tail);
        w.u64(self.itr_ns);
        w.bool(self.initialized);
        w.u64(self.tx_dropped_ring_full);
        w.u64(self.tx_packets);
        w.u64(self.rx_packets);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.tx_base = r.u64()?;
        self.rx_base = r.u64()?;
        self.tx_bufs = r.u64()?;
        self.rx_bufs = r.u64()?;
        self.tx_tail = r.u32()?;
        self.tx_clean = r.u32()?;
        self.rx_next = r.u32()?;
        self.rx_tail = r.u32()?;
        self.itr_ns = r.u64()?;
        self.initialized = r.bool()?;
        self.tx_dropped_ring_full = r.u64()?;
        self.tx_packets = r.u64()?;
        self.rx_packets = r.u64()?;
        Ok(())
    }
}

/// Recover the on-wire length of an Ethernet frame from its headers (IPv4
/// total length, or ARP fixed size), including minimum-frame padding.
fn frame_length(raw: &[u8]) -> Option<usize> {
    use simbricks_proto::{EtherType, Ipv4Header, ETH_HEADER_LEN};
    if raw.len() < ETH_HEADER_LEN {
        return None;
    }
    let ethertype = EtherType::from_u16(u16::from_be_bytes([raw[12], raw[13]]));
    let payload = match ethertype {
        EtherType::Ipv4 => {
            let (hdr, _, _) = Ipv4Header::parse(&raw[ETH_HEADER_LEN..])?;
            hdr.total_len as usize
        }
        EtherType::Arp => 28,
        EtherType::Other(_) => return None,
    };
    Some((ETH_HEADER_LEN + payload).max(60))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_programs_rings_and_enables() {
        let mut mem = PhysMem::new(8 << 20);
        let mut drv = NicDriver::new(NicVariant::I40e, 2000, 1500);
        let ops = drv.init(&mut mem);
        assert!(drv.initialized);
        assert!(ops.contains(&DriverOp::MmioWrite {
            offset: REG_CTRL,
            value: 1
        }));
        assert!(ops.iter().any(|o| matches!(o, DriverOp::MmioWrite { offset, .. } if *offset == queue_reg(0, Q_RX_TAIL))));
        // RX descriptors were posted in memory.
        let d = Descriptor::from_bytes(mem.read(drv.rx_base, DESC_SIZE)).unwrap();
        assert_ne!(d.addr, 0);
        assert!(!d.has_dd());
    }

    #[test]
    fn transmit_writes_descriptor_and_doorbell() {
        let mut mem = PhysMem::new(8 << 20);
        let mut drv = NicDriver::new(NicVariant::I40e, 0, 1500);
        drv.init(&mut mem);
        let frame = vec![0xaau8; 900];
        let ops = drv.transmit(&mut mem, &frame);
        assert_eq!(
            ops,
            vec![DriverOp::MmioWrite {
                offset: queue_reg(0, Q_TX_TAIL),
                value: 1
            }]
        );
        let d = Descriptor::from_bytes(mem.read(drv.tx_base, DESC_SIZE)).unwrap();
        assert_eq!(d.len, 900);
        assert_eq!(mem.read(d.addr, 900), frame.as_slice());
    }

    #[test]
    fn dd_reaping_extracts_frames_and_reposts() {
        let mut mem = PhysMem::new(8 << 20);
        let mut drv = NicDriver::new(NicVariant::I40e, 0, 1500);
        drv.init(&mut mem);
        // Emulate the NIC: write a frame into the first RX buffer and set DD.
        let frame = simbricks_proto::FrameBuilder::udp(
            simbricks_proto::MacAddr::from_index(1),
            simbricks_proto::MacAddr::from_index(2),
            simbricks_proto::Ipv4Addr::new(10, 0, 0, 1),
            simbricks_proto::Ipv4Addr::new(10, 0, 0, 2),
            simbricks_proto::Ecn::NotEct,
            1,
            2,
            &[9u8; 64],
        );
        let d0 = Descriptor::from_bytes(mem.read(drv.rx_base, DESC_SIZE)).unwrap();
        mem.write(d0.addr, &frame);
        let wb = Descriptor {
            addr: d0.addr,
            len: frame.len() as u16,
            flags: DESC_EOP,
            status: DESC_DD,
        };
        mem.write(drv.rx_base, &wb.to_bytes());
        let out = drv.on_interrupt(&mut mem);
        assert_eq!(out.frames.len(), 1);
        assert_eq!(out.frames[0], frame);
        assert_eq!(out.mmio_reads, 0, "i40e never reads registers on the RX path");
        assert!(out.ops.iter().any(|o| matches!(o, DriverOp::MmioWrite { offset, .. } if *offset == queue_reg(0, Q_RX_TAIL))));
        // The descriptor was re-armed.
        let re = Descriptor::from_bytes(mem.read(drv.rx_base, DESC_SIZE)).unwrap();
        assert!(!re.has_dd());
    }

    #[test]
    fn corundum_interrupt_requires_head_register_read() {
        let mut mem = PhysMem::new(8 << 20);
        let mut drv = NicDriver::new(NicVariant::Corundum, 0, 1500);
        drv.init(&mut mem);
        let out = drv.on_interrupt(&mut mem);
        assert!(out.frames.is_empty());
        assert_eq!(out.mmio_reads, 1, "Corundum must read RX head via MMIO");
        assert_eq!(
            out.ops,
            vec![DriverOp::MmioRead {
                offset: queue_reg(0, Q_RX_HEAD),
                purpose: ReadPurpose::RxHead
            }]
        );
        // Emulate the NIC having DMA'd one UDP frame into buffer 0.
        let frame = simbricks_proto::FrameBuilder::udp(
            simbricks_proto::MacAddr::from_index(3),
            simbricks_proto::MacAddr::from_index(4),
            simbricks_proto::Ipv4Addr::new(10, 0, 0, 3),
            simbricks_proto::Ipv4Addr::new(10, 0, 0, 4),
            simbricks_proto::Ecn::NotEct,
            5,
            6,
            &[1u8; 100],
        );
        let d0 = Descriptor::from_bytes(mem.read(drv.rx_base, DESC_SIZE)).unwrap();
        mem.write(d0.addr, &frame);
        let out2 = drv.on_mmio_read(&mut mem, ReadPurpose::RxHead, 1);
        assert_eq!(out2.frames.len(), 1);
        assert_eq!(out2.frames[0], frame);
    }

    #[test]
    fn e1000_reads_icr_then_reaps() {
        let mut mem = PhysMem::new(8 << 20);
        let mut drv = NicDriver::new(NicVariant::E1000, 0, 1500);
        drv.init(&mut mem);
        let out = drv.on_interrupt(&mut mem);
        assert_eq!(out.mmio_reads, 1);
        assert_eq!(
            out.ops,
            vec![DriverOp::MmioRead {
                offset: REG_ICR,
                purpose: ReadPurpose::Icr
            }]
        );
        let out2 = drv.on_mmio_read(&mut mem, ReadPurpose::Icr, ICR_RXQ0);
        assert!(out2.frames.is_empty(), "nothing pending yet");
    }

    #[test]
    fn tx_ring_full_drops() {
        let mut mem = PhysMem::new(16 << 20);
        let mut drv = NicDriver::new(NicVariant::I40e, 0, 1500);
        drv.init(&mut mem);
        for _ in 0..RING_ENTRIES * 2 {
            drv.transmit(&mut mem, &[0u8; 64]);
        }
        assert!(drv.tx_dropped_ring_full > 0);
        assert_eq!(drv.tx_packets, RING_ENTRIES as u64 - 1);
    }

    #[test]
    fn frame_length_recovery() {
        let f = simbricks_proto::FrameBuilder::udp(
            simbricks_proto::MacAddr::from_index(1),
            simbricks_proto::MacAddr::from_index(2),
            simbricks_proto::Ipv4Addr::new(1, 1, 1, 1),
            simbricks_proto::Ipv4Addr::new(2, 2, 2, 2),
            simbricks_proto::Ecn::NotEct,
            1,
            2,
            &[0u8; 200],
        );
        assert_eq!(frame_length(&f), Some(f.len()));
        assert_eq!(frame_length(&[0u8; 4]), None);
    }
}
