//! netperf-style benchmark: a TCP_STREAM throughput phase followed by a
//! TCP_RR request/response latency phase (the workload of Tab. 1 / Tab. 3).

use simbricks_base::snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use simbricks_base::SimTime;
use simbricks_hostsim::{Application, OsServices};
use simbricks_netstack::{SocketEvent, SocketId};
use simbricks_proto::Ipv4Addr;

const TOK_END_STREAM: u64 = 1;
const TOK_END_RR: u64 = 2;

pub(crate) fn snap_sock(w: &mut SnapWriter, s: Option<SocketId>) {
    match s {
        Some(s) => {
            w.bool(true);
            w.u64(s.0);
        }
        None => w.bool(false),
    }
}

pub(crate) fn restore_sock(r: &mut SnapReader) -> SnapResult<Option<SocketId>> {
    Ok(if r.bool()? {
        Some(SocketId(r.u64()?))
    } else {
        None
    })
}

/// netperf server: sinks stream data on one port and echoes 1-byte
/// request/response transactions on another.
pub struct NetperfServer {
    stream_port: u16,
    rr_port: u16,
    rr_listener: Option<SocketId>,
    pub stream_bytes: u64,
    pub rr_transactions: u64,
}

impl NetperfServer {
    pub fn new(stream_port: u16, rr_port: u16) -> Self {
        NetperfServer {
            stream_port,
            rr_port,
            rr_listener: None,
            stream_bytes: 0,
            rr_transactions: 0,
        }
    }
}

impl Application for NetperfServer {
    fn start(&mut self, os: &mut OsServices) {
        os.tcp_listen(self.stream_port);
        self.rr_listener = os.tcp_listen(self.rr_port);
    }

    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent) {
        if let SocketEvent::DataAvailable(s) = ev {
            let data = os.tcp_recv(s, usize::MAX);
            if data.is_empty() {
                return;
            }
            // Heuristic demux: RR requests are single bytes; echo them back.
            if data.len() <= 4 {
                self.rr_transactions += 1;
                os.tcp_send(s, &data);
            } else {
                self.stream_bytes += data.len() as u64;
            }
        }
    }

    fn on_timer(&mut self, _os: &mut OsServices, _token: u64) {}

    fn report(&self) -> String {
        format!(
            "netperf-server stream_bytes={} rr_transactions={}",
            self.stream_bytes, self.rr_transactions
        )
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        snap_sock(w, self.rr_listener);
        w.u64(self.stream_bytes);
        w.u64(self.rr_transactions);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.rr_listener = restore_sock(r)?;
        self.stream_bytes = r.u64()?;
        self.rr_transactions = r.u64()?;
        Ok(())
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Stream,
    Rr,
    Done,
}

/// netperf client: TCP_STREAM for `stream_duration`, then TCP_RR for
/// `rr_duration`, reporting throughput and mean round-trip latency.
pub struct NetperfClient {
    server: Ipv4Addr,
    stream_port: u16,
    rr_port: u16,
    stream_duration: SimTime,
    rr_duration: SimTime,
    chunk: Vec<u8>,
    phase: Phase,
    stream_sock: Option<SocketId>,
    rr_sock: Option<SocketId>,
    pub stream_bytes: u64,
    rr_outstanding_since: Option<SimTime>,
    pub rr_count: u64,
    rr_latency_total: SimTime,
}

impl NetperfClient {
    pub fn new(
        server: Ipv4Addr,
        stream_port: u16,
        rr_port: u16,
        stream_duration: SimTime,
        rr_duration: SimTime,
    ) -> Self {
        NetperfClient {
            server,
            stream_port,
            rr_port,
            stream_duration,
            rr_duration,
            chunk: vec![0x42; 32 * 1024],
            phase: Phase::Stream,
            stream_sock: None,
            rr_sock: None,
            stream_bytes: 0,
            rr_outstanding_since: None,
            rr_count: 0,
            rr_latency_total: SimTime::ZERO,
        }
    }

    /// STREAM-phase throughput in Gbit/s.
    pub fn throughput_gbps(&self) -> f64 {
        if self.stream_duration == SimTime::ZERO {
            return 0.0;
        }
        self.stream_bytes as f64 * 8.0 / self.stream_duration.as_secs_f64() / 1e9
    }

    /// Mean RR round-trip latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.rr_count == 0 {
            return 0.0;
        }
        self.rr_latency_total.as_ps() as f64 / self.rr_count as f64 / 1e6
    }

    fn pump_stream(&mut self, os: &mut OsServices) {
        if self.phase != Phase::Stream {
            return;
        }
        let Some(s) = self.stream_sock else { return };
        loop {
            let n = os.tcp_send(s, &self.chunk);
            self.stream_bytes += n as u64;
            if n < self.chunk.len() {
                break;
            }
        }
    }

    fn send_rr(&mut self, os: &mut OsServices) {
        if self.phase != Phase::Rr {
            return;
        }
        let Some(s) = self.rr_sock else { return };
        os.tcp_send(s, &[0x52]);
        self.rr_outstanding_since = Some(os.now());
    }
}

impl Application for NetperfClient {
    fn start(&mut self, os: &mut OsServices) {
        self.stream_sock = Some(os.tcp_connect(self.server, self.stream_port));
        os.set_timer_in(self.stream_duration, TOK_END_STREAM);
    }

    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent) {
        match (self.phase, ev) {
            (Phase::Stream, SocketEvent::Connected(s)) if Some(s) == self.stream_sock => {
                self.pump_stream(os)
            }
            (Phase::Stream, SocketEvent::SendSpace(s)) if Some(s) == self.stream_sock => {
                self.pump_stream(os)
            }
            (Phase::Rr, SocketEvent::Connected(s)) if Some(s) == self.rr_sock => {
                self.send_rr(os);
            }
            (Phase::Rr, SocketEvent::DataAvailable(s)) if Some(s) == self.rr_sock => {
                let data = os.tcp_recv(s, usize::MAX);
                if !data.is_empty() {
                    if let Some(t0) = self.rr_outstanding_since.take() {
                        self.rr_count += 1;
                        self.rr_latency_total += os.now() - t0;
                    }
                    self.send_rr(os);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, os: &mut OsServices, token: u64) {
        match token {
            TOK_END_STREAM => {
                if let Some(s) = self.stream_sock {
                    os.tcp_close(s);
                }
                self.phase = Phase::Rr;
                self.rr_sock = Some(os.tcp_connect(self.server, self.rr_port));
                os.set_timer_in(self.rr_duration, TOK_END_RR);
            }
            TOK_END_RR => {
                if let Some(s) = self.rr_sock {
                    os.tcp_close(s);
                }
                self.phase = Phase::Done;
                os.finish();
            }
            _ => {}
        }
    }

    fn report(&self) -> String {
        format!(
            "netperf tput={:.3}Gbps rr_latency={:.1}us transactions={}",
            self.throughput_gbps(),
            self.mean_latency_us(),
            self.rr_count
        )
    }

    fn done(&self) -> bool {
        self.phase == Phase::Done
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.u8(match self.phase {
            Phase::Stream => 0,
            Phase::Rr => 1,
            Phase::Done => 2,
        });
        snap_sock(w, self.stream_sock);
        snap_sock(w, self.rr_sock);
        w.u64(self.stream_bytes);
        w.opt_time(self.rr_outstanding_since);
        w.u64(self.rr_count);
        w.time(self.rr_latency_total);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.phase = match r.u8()? {
            0 => Phase::Stream,
            1 => Phase::Rr,
            2 => Phase::Done,
            v => return Err(SnapError::Corrupt(format!("bad netperf phase tag {v}"))),
        };
        self.stream_sock = restore_sock(r)?;
        self.rr_sock = restore_sock(r)?;
        self.stream_bytes = r.u64()?;
        self.rr_outstanding_since = r.opt_time()?;
        self.rr_count = r.u64()?;
        self.rr_latency_total = r.time()?;
        Ok(())
    }
}
