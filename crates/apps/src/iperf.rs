//! iperf-style traffic generators (TCP stream and rate-paced UDP).

use simbricks_base::snap::{SnapReader, SnapResult, SnapWriter};
use simbricks_base::time::SEC;
use simbricks_base::SimTime;
use simbricks_hostsim::{Application, OsServices};
use simbricks_netstack::{SocketAddr, SocketEvent, SocketId};
use simbricks_proto::Ipv4Addr;

use crate::netperf::{restore_sock, snap_sock};

const TOK_SEND: u64 = 1;
const TOK_STOP: u64 = 2;

fn gbps(bytes: u64, duration: SimTime) -> f64 {
    if duration == SimTime::ZERO {
        return 0.0;
    }
    bytes as f64 * 8.0 / duration.as_secs_f64() / 1e9
}

/// TCP sink: accepts connections and counts received bytes.
pub struct IperfTcpServer {
    port: u16,
    listener: Option<SocketId>,
    pub bytes_received: u64,
    first_byte: Option<SimTime>,
    last_byte: SimTime,
}

impl IperfTcpServer {
    pub fn new(port: u16) -> Self {
        IperfTcpServer {
            port,
            listener: None,
            bytes_received: 0,
            first_byte: None,
            last_byte: SimTime::ZERO,
        }
    }

    /// Observed goodput in Gbit/s.
    pub fn goodput_gbps(&self) -> f64 {
        match self.first_byte {
            Some(f) => gbps(self.bytes_received, self.last_byte - f),
            None => 0.0,
        }
    }
}

impl Application for IperfTcpServer {
    fn start(&mut self, os: &mut OsServices) {
        self.listener = os.tcp_listen(self.port);
    }

    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent) {
        if let SocketEvent::DataAvailable(s) = ev {
            let data = os.tcp_recv(s, usize::MAX);
            if !data.is_empty() {
                if self.first_byte.is_none() {
                    self.first_byte = Some(os.now());
                }
                self.last_byte = os.now();
                self.bytes_received += data.len() as u64;
            }
        }
    }

    fn on_timer(&mut self, _os: &mut OsServices, _token: u64) {}

    fn report(&self) -> String {
        format!(
            "iperf-server rx_bytes={} goodput={:.3}Gbps",
            self.bytes_received,
            self.goodput_gbps()
        )
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        snap_sock(w, self.listener);
        w.u64(self.bytes_received);
        w.opt_time(self.first_byte);
        w.time(self.last_byte);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.listener = restore_sock(r)?;
        self.bytes_received = r.u64()?;
        self.first_byte = r.opt_time()?;
        self.last_byte = r.time()?;
        Ok(())
    }
}

/// TCP stream source: connects and sends as fast as the socket allows for a
/// fixed duration.
pub struct IperfTcpClient {
    server: Ipv4Addr,
    port: u16,
    duration: SimTime,
    chunk: Vec<u8>,
    sock: Option<SocketId>,
    started_at: SimTime,
    pub bytes_sent: u64,
    stopped: bool,
}

impl IperfTcpClient {
    pub fn new(server: Ipv4Addr, port: u16, duration: SimTime) -> Self {
        IperfTcpClient {
            server,
            port,
            duration,
            chunk: vec![0x42; 32 * 1024],
            sock: None,
            started_at: SimTime::ZERO,
            bytes_sent: 0,
            stopped: false,
        }
    }

    pub fn throughput_gbps(&self) -> f64 {
        gbps(self.bytes_sent, self.duration)
    }

    fn pump(&mut self, os: &mut OsServices) {
        if self.stopped {
            return;
        }
        let Some(s) = self.sock else { return };
        loop {
            let n = os.tcp_send(s, &self.chunk);
            self.bytes_sent += n as u64;
            if n < self.chunk.len() {
                break;
            }
        }
    }
}

impl Application for IperfTcpClient {
    fn start(&mut self, os: &mut OsServices) {
        self.started_at = os.now();
        self.sock = Some(os.tcp_connect(self.server, self.port));
        os.set_timer_in(self.duration, TOK_STOP);
    }

    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent) {
        match ev {
            SocketEvent::Connected(_) | SocketEvent::SendSpace(_) => self.pump(os),
            _ => {}
        }
    }

    fn on_timer(&mut self, os: &mut OsServices, token: u64) {
        if token == TOK_STOP {
            self.stopped = true;
            if let Some(s) = self.sock {
                os.tcp_close(s);
            }
            os.finish();
        }
    }

    fn report(&self) -> String {
        format!(
            "iperf-client tx_bytes={} offered={:.3}Gbps",
            self.bytes_sent,
            self.throughput_gbps()
        )
    }

    fn done(&self) -> bool {
        self.stopped
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        snap_sock(w, self.sock);
        w.time(self.started_at);
        w.u64(self.bytes_sent);
        w.bool(self.stopped);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.sock = restore_sock(r)?;
        self.started_at = r.time()?;
        self.bytes_sent = r.u64()?;
        self.stopped = r.bool()?;
        Ok(())
    }
}

/// Rate-paced UDP sender (iperf UDP mode).
pub struct IperfUdpClient {
    server: SocketAddr,
    rate_bps: u64,
    payload: usize,
    duration: SimTime,
    sock: Option<SocketId>,
    interval: SimTime,
    pub datagrams_sent: u64,
    stopped: bool,
}

impl IperfUdpClient {
    pub fn new(server: SocketAddr, rate_bps: u64, payload: usize, duration: SimTime) -> Self {
        let interval = if rate_bps == 0 {
            SimTime::MAX
        } else {
            SimTime::from_ps((payload as u128 * 8 * SEC as u128 / rate_bps as u128) as u64)
        };
        IperfUdpClient {
            server,
            rate_bps,
            payload,
            duration,
            sock: None,
            interval,
            datagrams_sent: 0,
            stopped: false,
        }
    }
}

impl Application for IperfUdpClient {
    fn start(&mut self, os: &mut OsServices) {
        self.sock = os.udp_bind(30000 + (self.server.port % 1000));
        os.set_timer_in(SimTime::from_us(1), TOK_SEND);
        os.set_timer_in(self.duration, TOK_STOP);
    }

    fn on_socket_event(&mut self, _os: &mut OsServices, _ev: SocketEvent) {}

    fn on_timer(&mut self, os: &mut OsServices, token: u64) {
        match token {
            TOK_SEND if !self.stopped && self.rate_bps > 0 => {
                if let Some(s) = self.sock {
                    let payload = vec![0x55u8; self.payload];
                    os.udp_send_to(s, self.server, &payload);
                    self.datagrams_sent += 1;
                }
                os.set_timer_in(self.interval, TOK_SEND);
            }
            TOK_STOP => {
                self.stopped = true;
                os.finish();
            }
            _ => {}
        }
    }

    fn report(&self) -> String {
        format!("iperf-udp-client sent={}", self.datagrams_sent)
    }

    fn done(&self) -> bool {
        self.stopped
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        snap_sock(w, self.sock);
        w.u64(self.datagrams_sent);
        w.bool(self.stopped);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.sock = restore_sock(r)?;
        self.datagrams_sent = r.u64()?;
        self.stopped = r.bool()?;
        Ok(())
    }
}

/// UDP sink counting received datagrams and bytes.
pub struct IperfUdpServer {
    port: u16,
    sock: Option<SocketId>,
    pub datagrams: u64,
    pub bytes: u64,
    first: Option<SimTime>,
    last: SimTime,
}

impl IperfUdpServer {
    pub fn new(port: u16) -> Self {
        IperfUdpServer {
            port,
            sock: None,
            datagrams: 0,
            bytes: 0,
            first: None,
            last: SimTime::ZERO,
        }
    }

    pub fn goodput_gbps(&self) -> f64 {
        match self.first {
            Some(f) => gbps(self.bytes, self.last - f),
            None => 0.0,
        }
    }
}

impl Application for IperfUdpServer {
    fn start(&mut self, os: &mut OsServices) {
        self.sock = os.udp_bind(self.port);
    }

    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent) {
        if let SocketEvent::DataAvailable(s) = ev {
            while let Some((_, data)) = os.udp_recv_from(s) {
                if self.first.is_none() {
                    self.first = Some(os.now());
                }
                self.last = os.now();
                self.datagrams += 1;
                self.bytes += data.len() as u64;
            }
        }
    }

    fn on_timer(&mut self, _os: &mut OsServices, _token: u64) {}

    fn report(&self) -> String {
        format!(
            "iperf-udp-server datagrams={} bytes={} goodput={:.3}Gbps",
            self.datagrams,
            self.bytes,
            self.goodput_gbps()
        )
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        snap_sock(w, self.sock);
        w.u64(self.datagrams);
        w.u64(self.bytes);
        w.opt_time(self.first);
        w.time(self.last);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.sock = restore_sock(r)?;
        self.datagrams = r.u64()?;
        self.bytes = r.u64()?;
        self.first = r.opt_time()?;
        self.last = r.time()?;
        Ok(())
    }
}
