//! NOPaxos-style replication (Fig. 10) and a Multi-Paxos baseline.
//!
//! Three deployment modes mirror the paper's §8.2 configurations:
//!
//! * **Switch sequencer** — clients address the replica group (broadcast);
//!   the Tofino-style switch's OUM program stamps a global sequence number
//!   into the first eight payload bytes and multicasts to all replicas, which
//!   execute in sequence-number order and reply directly to the client.
//! * **End-host sequencer** — a normal host receives the request, stamps the
//!   sequence number and relays it to the replicas (one extra network hop and
//!   host processing on the critical path).
//! * **Multi-Paxos** — the classic leader-based protocol: the client sends to
//!   the leader, the leader runs an accept round with the other replicas and
//!   answers after a majority.
//!
//! Client requests complete after a reply from the designated leader replica
//! plus `f` matching replicas (we simulate 3 replicas, `f = 1`).

use std::collections::BTreeMap;

use simbricks_base::SimTime;
use simbricks_hostsim::{Application, OsServices};
use simbricks_netstack::{SocketAddr, SocketEvent, SocketId};
use simbricks_proto::Ipv4Addr;

/// UDP port of the OUM group (what the switch sequencer matches on).
pub const OUM_PORT: u16 = 7777;
/// Port replicas listen on for sequenced requests relayed by an end-host
/// sequencer.
pub const SEQUENCED_PORT: u16 = 7778;
/// Port clients receive replies on.
pub const CLIENT_PORT: u16 = 7900;
/// Leader port for Multi-Paxos client requests.
pub const PAXOS_LEADER_PORT: u16 = 7780;
/// Port for Multi-Paxos accept messages between replicas.
pub const PAXOS_ACCEPT_PORT: u16 = 7781;

/// Deployment mode of the replication group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaxosMode {
    SwitchSequencer,
    EndHostSequencer,
    MultiPaxos,
}

fn encode_req(seq: u64, client: u64, req: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(24);
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(&client.to_le_bytes());
    v.extend_from_slice(&req.to_le_bytes());
    v
}

fn decode_req(data: &[u8]) -> Option<(u64, u64, u64)> {
    if data.len() < 24 {
        return None;
    }
    Some((
        u64::from_le_bytes(data[0..8].try_into().unwrap()),
        u64::from_le_bytes(data[8..16].try_into().unwrap()),
        u64::from_le_bytes(data[16..24].try_into().unwrap()),
    ))
}

/// A replica (NOPaxos modes) or leader/follower (Multi-Paxos).
pub struct Replica {
    pub index: u8,
    mode: PaxosMode,
    peers: Vec<Ipv4Addr>,
    sock_oum: Option<SocketId>,
    sock_seq: Option<SocketId>,
    sock_leader: Option<SocketId>,
    sock_accept: Option<SocketId>,
    last_seq: u64,
    pub executed: u64,
    pub sequence_gaps: u64,
    /// Per-request execution cost.
    pub exec_cost: SimTime,
    // Multi-Paxos leader state: pending client replies keyed by seq.
    // Ordered map so any iteration (snapshots, sweeps, diagnostics added
    // later) observes slots in sequence order, never hash order.
    next_seq: u64,
    pending: BTreeMap<u64, (SocketAddr, u64, u64, u32)>,
}

impl Replica {
    pub fn new(index: u8, mode: PaxosMode, peers: Vec<Ipv4Addr>) -> Self {
        Replica {
            index,
            mode,
            peers,
            sock_oum: None,
            sock_seq: None,
            sock_leader: None,
            sock_accept: None,
            last_seq: 0,
            executed: 0,
            sequence_gaps: 0,
            exec_cost: SimTime::from_us(3),
            next_seq: 1,
            pending: BTreeMap::new(),
        }
    }

    fn execute_and_reply(&mut self, os: &mut OsServices, sock: SocketId, seq: u64, client: u64, req: u64, reply_to: SocketAddr) {
        if seq > 0 {
            if self.last_seq != 0 && seq > self.last_seq + 1 {
                self.sequence_gaps += seq - self.last_seq - 1;
            }
            if seq > self.last_seq {
                self.last_seq = seq;
            }
        }
        os.consume_cpu(self.exec_cost);
        self.executed += 1;
        let mut reply = encode_req(seq, client, req);
        reply.push(self.index);
        os.udp_send_to(sock, reply_to, &reply);
    }
}

impl Application for Replica {
    fn start(&mut self, os: &mut OsServices) {
        match self.mode {
            PaxosMode::SwitchSequencer => {
                self.sock_oum = os.udp_bind(OUM_PORT);
            }
            PaxosMode::EndHostSequencer => {
                self.sock_seq = os.udp_bind(SEQUENCED_PORT);
            }
            PaxosMode::MultiPaxos => {
                self.sock_leader = os.udp_bind(PAXOS_LEADER_PORT);
                self.sock_accept = os.udp_bind(PAXOS_ACCEPT_PORT);
            }
        }
    }

    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent) {
        let SocketEvent::DataAvailable(s) = ev else {
            return;
        };
        while let Some((from, data)) = os.udp_recv_from(s) {
            let Some((seq, client, req)) = decode_req(&data) else {
                continue;
            };
            match self.mode {
                // Sequenced request (either by the switch or by the end-host
                // sequencer): execute in order and reply to the client.
                PaxosMode::SwitchSequencer | PaxosMode::EndHostSequencer => {
                    let client_ip = Ipv4Addr::from_u32(client as u32);
                    let reply_to = SocketAddr::new(client_ip, CLIENT_PORT);
                    self.execute_and_reply(os, s, seq, client, req, reply_to);
                }
                PaxosMode::MultiPaxos => {
                    if Some(s) == self.sock_leader && self.index == 0 {
                        // Client request at the leader: assign a slot and run
                        // an accept round.
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        self.pending.insert(seq, (from, client, req, 0));
                        let msg = encode_req(seq, client, req);
                        for peer in self.peers.clone() {
                            os.udp_send_to(s, SocketAddr::new(peer, PAXOS_ACCEPT_PORT), &msg);
                        }
                    } else if Some(s) == self.sock_accept {
                        if self.index == 0 {
                            // AcceptOk from a follower.
                            if let Some(entry) = self.pending.get_mut(&seq) {
                                entry.3 += 1;
                                if entry.3 >= 1 {
                                    // Majority of 3 (leader + 1): reply.
                                    let (client_addr, client, req, _) =
                                        self.pending.remove(&seq).unwrap();
                                    os.consume_cpu(self.exec_cost);
                                    self.executed += 1;
                                    let client_ip = Ipv4Addr::from_u32(client as u32);
                                    let _ = client_addr;
                                    let mut reply = encode_req(seq, client, req);
                                    reply.push(self.index);
                                    os.udp_send_to(
                                        s,
                                        SocketAddr::new(client_ip, CLIENT_PORT),
                                        &reply,
                                    );
                                }
                            }
                        } else {
                            // Follower: accept and acknowledge to the leader's
                            // accept port (the accept was sent from the
                            // leader's client-facing socket, so `from` carries
                            // the wrong port).
                            os.consume_cpu(self.exec_cost);
                            self.executed += 1;
                            os.udp_send_to(
                                s,
                                SocketAddr::new(from.ip, PAXOS_ACCEPT_PORT),
                                &encode_req(seq, client, req),
                            );
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, _os: &mut OsServices, _token: u64) {}

    fn report(&self) -> String {
        format!(
            "replica{} executed={} gaps={}",
            self.index, self.executed, self.sequence_gaps
        )
    }
}

/// End-host sequencer: stamps sequence numbers and relays to the replicas.
pub struct SequencerHost {
    replicas: Vec<Ipv4Addr>,
    sock: Option<SocketId>,
    next_seq: u64,
    pub sequenced: u64,
    pub relay_cost: SimTime,
}

impl SequencerHost {
    pub fn new(replicas: Vec<Ipv4Addr>) -> Self {
        SequencerHost {
            replicas,
            sock: None,
            next_seq: 1,
            sequenced: 0,
            relay_cost: SimTime::from_us(2),
        }
    }
}

impl Application for SequencerHost {
    fn start(&mut self, os: &mut OsServices) {
        self.sock = os.udp_bind(OUM_PORT);
    }

    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent) {
        let SocketEvent::DataAvailable(s) = ev else {
            return;
        };
        while let Some((_from, data)) = os.udp_recv_from(s) {
            let Some((_seq, client, req)) = decode_req(&data) else {
                continue;
            };
            os.consume_cpu(self.relay_cost);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.sequenced += 1;
            let msg = encode_req(seq, client, req);
            for r in self.replicas.clone() {
                os.udp_send_to(s, SocketAddr::new(r, SEQUENCED_PORT), &msg);
            }
        }
    }

    fn on_timer(&mut self, _os: &mut OsServices, _token: u64) {}

    fn report(&self) -> String {
        format!("sequencer sequenced={}", self.sequenced)
    }
}

/// Closed-loop replication client.
pub struct PaxosClient {
    mode: PaxosMode,
    /// Where requests are sent: the group/broadcast address, the sequencer
    /// host, or the Multi-Paxos leader.
    target: SocketAddr,
    duration: SimTime,
    concurrency: usize,
    sock: Option<SocketId>,
    my_ip_key: u64,
    next_req: u64,
    /// outstanding request id -> (issue time, replies seen, leader replied).
    /// Ordered map: the retry sweep iterates in request-id order
    /// structurally, never in hash order.
    outstanding: BTreeMap<u64, (SimTime, u32, bool)>,
    pub completed: u64,
    latency_total: SimTime,
    stopped: bool,
}

const TOK_STOP: u64 = 1;
const TOK_RETRY: u64 = 2;

impl PaxosClient {
    pub fn new(mode: PaxosMode, target: SocketAddr, concurrency: usize, duration: SimTime) -> Self {
        PaxosClient {
            mode,
            target,
            duration,
            concurrency: concurrency.max(1),
            sock: None,
            my_ip_key: 0,
            next_req: 1,
            outstanding: BTreeMap::new(),
            completed: 0,
            latency_total: SimTime::ZERO,
            stopped: false,
        }
    }

    pub fn throughput_rps(&self) -> f64 {
        if self.duration == SimTime::ZERO {
            return 0.0;
        }
        self.completed as f64 / self.duration.as_secs_f64()
    }

    pub fn mean_latency_us(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.latency_total.as_ps() as f64 / self.completed as f64 / 1e6
    }

    fn issue(&mut self, os: &mut OsServices) {
        if self.stopped {
            return;
        }
        let Some(s) = self.sock else { return };
        while self.outstanding.len() < self.concurrency {
            let req = self.next_req;
            self.next_req += 1;
            let msg = encode_req(0, self.my_ip_key, req);
            os.udp_send_to(s, self.target, &msg);
            self.outstanding.insert(req, (os.now(), 0, false));
        }
    }

    fn required_replies(&self) -> u32 {
        match self.mode {
            // Leader + f matching replicas (f = 1 of 3).
            PaxosMode::SwitchSequencer | PaxosMode::EndHostSequencer => 2,
            // The leader's reply already encodes a majority.
            PaxosMode::MultiPaxos => 1,
        }
    }
}

impl Application for PaxosClient {
    fn start(&mut self, os: &mut OsServices) {
        self.my_ip_key = os.local_ip().to_u32() as u64;
        self.sock = os.udp_bind(CLIENT_PORT);
        os.set_timer_in(self.duration, TOK_STOP);
        os.set_timer_in(SimTime::from_ms(1), TOK_RETRY);
        self.issue(os);
    }

    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent) {
        if self.stopped {
            return;
        }
        let SocketEvent::DataAvailable(s) = ev else {
            return;
        };
        while let Some((_from, data)) = os.udp_recv_from(s) {
            let Some((_seq, _client, req)) = decode_req(&data) else {
                continue;
            };
            let replica = data.get(24).copied().unwrap_or(0);
            let needed = self.required_replies();
            if let Some(entry) = self.outstanding.get_mut(&req) {
                entry.1 += 1;
                if replica == 0 {
                    entry.2 = true;
                }
                if entry.1 >= needed && (entry.2 || self.mode == PaxosMode::MultiPaxos) {
                    let (t0, _, _) = self.outstanding.remove(&req).unwrap();
                    self.completed += 1;
                    self.latency_total += os.now() - t0;
                }
            }
        }
        self.issue(os);
    }

    fn on_timer(&mut self, os: &mut OsServices, token: u64) {
        match token {
            TOK_STOP => {
                self.stopped = true;
                os.finish();
            }
            TOK_RETRY if !self.stopped => {
                // Drop requests stuck for too long (OUM is unreliable) and
                // keep the closed loop full.
                let now = os.now();
                self.outstanding.retain(|_, (t0, _, _)| now - *t0 < SimTime::from_ms(20));
                self.issue(os);
                os.set_timer_in(SimTime::from_ms(5), TOK_RETRY);
            }
            _ => {}
        }
    }

    fn report(&self) -> String {
        format!(
            "paxos-client mode={:?} completed={} tput={:.0}req/s latency={:.1}us",
            self.mode,
            self.completed,
            self.throughput_rps(),
            self.mean_latency_us()
        )
    }

    fn done(&self) -> bool {
        self.stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_encoding_roundtrip() {
        let m = encode_req(7, 42, 99);
        assert_eq!(decode_req(&m), Some((7, 42, 99)));
        assert!(decode_req(&m[..10]).is_none());
    }

    /// Determinism regression: the client's stuck-request sweep must keep
    /// exactly the young requests and leave them observable in request-id
    /// order, independent of the order they entered the table. Under the
    /// pre-fix `HashMap` table, iteration order (and thus any future
    /// order-sensitive use of it) depended on the per-instance hash seed.
    #[test]
    fn stuck_request_sweep_is_history_independent() {
        let mk = || {
            PaxosClient::new(
                PaxosMode::MultiPaxos,
                SocketAddr::new(Ipv4Addr::new(10, 0, 0, 9), PAXOS_LEADER_PORT),
                4,
                SimTime::from_ms(1),
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for id in [9u64, 2, 17, 4, 11] {
            a.outstanding.insert(id, (SimTime::from_ms(id), 0, false));
        }
        for id in [4u64, 17, 11, 2, 9] {
            b.outstanding.insert(id, (SimTime::from_ms(id), 0, false));
        }
        let now = SimTime::from_ms(25);
        for c in [&mut a, &mut b] {
            c.outstanding.retain(|_, (t0, _, _)| now - *t0 < SimTime::from_ms(20));
        }
        let ka: Vec<u64> = a.outstanding.keys().copied().collect();
        let kb: Vec<u64> = b.outstanding.keys().copied().collect();
        assert_eq!(ka, vec![9, 11, 17], "young requests, ascending id order");
        assert_eq!(ka, kb, "insertion history does not leak");
    }

    #[test]
    fn required_replies_by_mode() {
        let c = |m| PaxosClient::new(m, SocketAddr::new(Ipv4Addr::new(10, 0, 0, 9), OUM_PORT), 1, SimTime::from_ms(1));
        assert_eq!(c(PaxosMode::SwitchSequencer).required_replies(), 2);
        assert_eq!(c(PaxosMode::EndHostSequencer).required_replies(), 2);
        assert_eq!(c(PaxosMode::MultiPaxos).required_replies(), 1);
    }
}
