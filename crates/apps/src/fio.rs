//! fio-style block I/O workload for the storage host (NVMe over the SimBricks
//! PCIe interface, §7.2).
//!
//! The workload keeps a configurable number of commands in flight (queue
//! depth), chooses offsets sequentially or pseudo-randomly, mixes reads and
//! writes by a configurable ratio, runs for a fixed virtual duration, and
//! reports IOPS plus latency statistics.

use simbricks_base::SimTime;
use simbricks_hostsim::{BlockApp, BlockCompletion, BlockOsServices};

/// Access pattern of the workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    Sequential,
    Random,
}

/// fio-style workload configuration.
#[derive(Clone, Copy, Debug)]
pub struct FioConfig {
    /// Commands kept in flight.
    pub queue_depth: usize,
    /// Blocks (4 KiB) per command.
    pub blocks_per_cmd: u32,
    /// Fraction of commands that are reads, in percent (100 = read-only).
    pub read_percent: u8,
    pub pattern: AccessPattern,
    /// Number of 4 KiB blocks in the addressable range.
    pub capacity_blocks: u64,
    /// Virtual run time.
    pub duration: SimTime,
    /// Seed for the deterministic offset/op sequence.
    pub seed: u64,
}

impl Default for FioConfig {
    fn default() -> Self {
        FioConfig {
            queue_depth: 8,
            blocks_per_cmd: 1,
            read_percent: 100,
            pattern: AccessPattern::Random,
            capacity_blocks: 4096,
            duration: SimTime::from_ms(10),
            seed: 0xf10,
        }
    }
}

const TOK_END: u64 = 1;

/// The workload driver.
pub struct FioWorkload {
    cfg: FioConfig,
    rng: u64,
    next_id: u64,
    next_lba: u64,
    issued: u64,
    stopped: bool,
    pub completed: u64,
    pub reads_issued: u64,
    pub writes_issued: u64,
    latency_total: SimTime,
    latency_max: SimTime,
    first_completion: Option<SimTime>,
    last_completion: SimTime,
}

impl FioWorkload {
    pub fn new(cfg: FioConfig) -> Self {
        FioWorkload {
            rng: cfg.seed | 1,
            cfg,
            next_id: 0,
            next_lba: 0,
            issued: 0,
            stopped: false,
            completed: 0,
            reads_issued: 0,
            writes_issued: 0,
            latency_total: SimTime::ZERO,
            latency_max: SimTime::ZERO,
            first_completion: None,
            last_completion: SimTime::ZERO,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: deterministic, seedable, good enough for offsets.
        self.rng ^= self.rng >> 12;
        self.rng ^= self.rng << 25;
        self.rng ^= self.rng >> 27;
        self.rng.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn pick_lba(&mut self) -> u64 {
        let span = self
            .cfg
            .capacity_blocks
            .saturating_sub(self.cfg.blocks_per_cmd as u64)
            .max(1);
        match self.cfg.pattern {
            AccessPattern::Sequential => {
                let lba = self.next_lba;
                self.next_lba = (self.next_lba + self.cfg.blocks_per_cmd as u64) % span;
                lba
            }
            AccessPattern::Random => self.next_u64() % span,
        }
    }

    fn issue_one(&mut self, os: &mut BlockOsServices) -> bool {
        if self.stopped {
            return false;
        }
        let id = self.next_id;
        let lba = self.pick_lba();
        let is_read = (self.next_u64() % 100) < self.cfg.read_percent as u64;
        let ok = if is_read {
            os.read(id, lba, self.cfg.blocks_per_cmd)
        } else {
            os.write(id, lba, self.cfg.blocks_per_cmd)
        };
        if ok {
            self.next_id += 1;
            self.issued += 1;
            if is_read {
                self.reads_issued += 1;
            } else {
                self.writes_issued += 1;
            }
        }
        ok
    }

    fn fill_queue(&mut self, os: &mut BlockOsServices) {
        while !self.stopped && os.queue_free() > 0 && self.inflight() < self.cfg.queue_depth as u64
        {
            if !self.issue_one(os) {
                break;
            }
        }
    }

    fn inflight(&self) -> u64 {
        self.issued - self.completed
    }

    /// Completed operations per second of measured virtual time.
    pub fn iops(&self) -> f64 {
        match self.first_completion {
            Some(first) if self.last_completion > first && self.completed > 1 => {
                (self.completed - 1) as f64 / (self.last_completion - first).as_secs_f64()
            }
            _ => 0.0,
        }
    }

    /// Mean completion latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_total.as_ps() as f64 / self.completed as f64 / 1e6
        }
    }

    /// Maximum completion latency in microseconds.
    pub fn max_latency_us(&self) -> f64 {
        self.latency_max.as_ps() as f64 / 1e6
    }
}

impl BlockApp for FioWorkload {
    fn start(&mut self, os: &mut BlockOsServices) {
        os.set_timer_in(self.cfg.duration, TOK_END);
        self.fill_queue(os);
    }

    fn on_completion(&mut self, os: &mut BlockOsServices, c: BlockCompletion) {
        self.completed += 1;
        let lat = c.latency();
        self.latency_total += lat;
        self.latency_max = self.latency_max.max(lat);
        if self.first_completion.is_none() {
            self.first_completion = Some(c.completed);
        }
        self.last_completion = c.completed;
        if self.stopped {
            if self.inflight() == 0 {
                os.finish();
            }
            return;
        }
        self.fill_queue(os);
    }

    fn on_timer(&mut self, os: &mut BlockOsServices, token: u64) {
        if token == TOK_END {
            self.stopped = true;
            if self.inflight() == 0 {
                os.finish();
            }
        }
    }

    fn report(&self) -> String {
        format!(
            "fio qd={} ops={} iops={:.0} mean_lat={:.1}us max_lat={:.1}us",
            self.cfg.queue_depth,
            self.completed,
            self.iops(),
            self.mean_latency_us(),
            self.max_latency_us()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{channel_pair, ChannelParams, Kernel, StepOutcome};
    use simbricks_hostsim::{HostKind, StorageHostConfig, StorageHostModel};
    use simbricks_nvmesim::{NvmeConfig, NvmeDev};

    fn run_fio(cfg: FioConfig) -> (StorageHostModel, NvmeDev) {
        let (host_end, dev_end) = channel_pair(ChannelParams::default_sync());
        let end = cfg.duration + SimTime::from_ms(5);
        let mut host_kernel = Kernel::new("storage-host", end);
        host_kernel.add_port(host_end);
        let mut dev_kernel = Kernel::new("nvme", end);
        dev_kernel.add_port(dev_end);
        let mut host = StorageHostModel::new(
            StorageHostConfig::new(HostKind::QemuTiming),
            Box::new(FioWorkload::new(cfg)),
        );
        let mut dev = NvmeDev::new(NvmeConfig::default());
        loop {
            let a = host_kernel.step(&mut host, 256);
            let b = dev_kernel.step(&mut dev, 256);
            if a == StepOutcome::Finished && b == StepOutcome::Finished {
                break;
            }
        }
        (host, dev)
    }

    #[test]
    fn read_only_workload_completes_and_reports_iops() {
        let (host, dev) = run_fio(FioConfig {
            queue_depth: 4,
            duration: SimTime::from_ms(5),
            ..Default::default()
        });
        assert!(host.stats().completed > 10);
        assert_eq!(dev.writes, 0, "read-only workload issues no writes");
        assert_eq!(dev.reads, host.stats().completed);
        let report = host.app_report();
        assert!(report.contains("iops="), "{report}");
    }

    #[test]
    fn mixed_workload_issues_reads_and_writes() {
        let (host, dev) = run_fio(FioConfig {
            read_percent: 50,
            queue_depth: 8,
            duration: SimTime::from_ms(5),
            ..Default::default()
        });
        assert!(dev.reads > 0, "some reads");
        assert!(dev.writes > 0, "some writes");
        assert_eq!(dev.reads + dev.writes, host.stats().completed);
    }

    #[test]
    fn deeper_queues_give_more_iops() {
        let shallow = run_fio(FioConfig {
            queue_depth: 1,
            duration: SimTime::from_ms(8),
            ..Default::default()
        })
        .0;
        let deep = run_fio(FioConfig {
            queue_depth: 16,
            duration: SimTime::from_ms(8),
            ..Default::default()
        })
        .0;
        assert!(
            deep.stats().completed > shallow.stats().completed * 4,
            "queue depth 16 ({}) should far outrun depth 1 ({})",
            deep.stats().completed,
            shallow.stats().completed
        );
    }

    #[test]
    fn sequential_and_random_patterns_both_work_deterministically() {
        let a = run_fio(FioConfig {
            pattern: AccessPattern::Sequential,
            duration: SimTime::from_ms(3),
            ..Default::default()
        })
        .0;
        let b = run_fio(FioConfig {
            pattern: AccessPattern::Sequential,
            duration: SimTime::from_ms(3),
            ..Default::default()
        })
        .0;
        assert_eq!(a.stats().completed, b.stats().completed);
        assert_eq!(a.app_report(), b.app_report(), "reruns are bit-identical");
        let r = run_fio(FioConfig {
            pattern: AccessPattern::Random,
            duration: SimTime::from_ms(3),
            ..Default::default()
        })
        .0;
        assert!(r.stats().completed > 0);
    }
}
