//! # simbricks-apps
//!
//! Guest applications used by the paper's evaluation workloads. They run
//! unmodified on any of the host simulators (gem5-like, QEMU-timing-like,
//! QEMU-KVM-like) via the [`simbricks_hostsim::Application`] interface:
//!
//! * [`iperf`] — TCP stream and rate-paced UDP traffic generators (Fig. 1,
//!   Fig. 6, Fig. 7 workloads).
//! * [`netperf`] — TCP_STREAM + TCP_RR throughput/latency benchmark
//!   (Tab. 1 / Tab. 3 workloads).
//! * [`memcache`] — a memcached-style key-value server and a memaslap-style
//!   closed-loop client (Fig. 8 workload).
//! * [`paxos`] — NOPaxos-style ordered-unreliable-multicast replication with
//!   a switch or end-host sequencer, plus a leader-based Multi-Paxos
//!   baseline (Fig. 10 workload).
//! * [`hostload`] — host-only workloads (`sleep`, `dd`-style CPU burn) used
//!   by the synchronization-overhead experiment (§7.3.1).
//! * [`fio`] — fio-style block I/O workload for the NVMe storage host
//!   (§7.2, PCIe interface generality).

pub mod fio;
pub mod hostload;
pub mod iperf;
pub mod memcache;
pub mod netperf;
pub mod paxos;

pub use fio::{AccessPattern, FioConfig, FioWorkload};
pub use hostload::{DdLoad, SleepLoad};
pub use iperf::{IperfTcpClient, IperfTcpServer, IperfUdpClient, IperfUdpServer};
pub use memcache::{MemaslapClient, MemcachedServer};
pub use netperf::{NetperfClient, NetperfServer};
pub use paxos::{PaxosClient, PaxosMode, Replica, SequencerHost};
