//! memcached-style key-value server and memaslap-style closed-loop client
//! (the Fig. 8 scale-out workload), using a compact UDP request/response
//! protocol: `G<key>` / `S<key>=<value>` requests, `V<value>` / `OK` replies.

use std::collections::BTreeMap;

use simbricks_base::snap::{SnapReader, SnapResult, SnapWriter};
use simbricks_base::SimTime;
use simbricks_hostsim::{Application, OsServices};
use simbricks_netstack::{SocketAddr, SocketEvent, SocketId};

use crate::netperf::{restore_sock, snap_sock};

pub const MEMCACHE_PORT: u16 = 11211;

const TOK_STOP: u64 = 1;
const TOK_RETRY: u64 = 2;

/// The key-value server.
pub struct MemcachedServer {
    sock: Option<SocketId>,
    /// Key-value store. Ordered map: snapshot encoding and any future scan
    /// iterate in key order structurally — hash order can never leak.
    store: BTreeMap<Vec<u8>, Vec<u8>>,
    pub requests: u64,
    /// Modelled per-request CPU time (hash lookup, allocation, ...).
    pub service_time: SimTime,
}

impl MemcachedServer {
    pub fn new() -> Self {
        MemcachedServer {
            sock: None,
            store: BTreeMap::new(),
            requests: 0,
            service_time: SimTime::from_us(2),
        }
    }
}

impl Default for MemcachedServer {
    fn default() -> Self {
        Self::new()
    }
}

impl Application for MemcachedServer {
    fn start(&mut self, os: &mut OsServices) {
        self.sock = os.udp_bind(MEMCACHE_PORT);
    }

    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent) {
        if let SocketEvent::DataAvailable(s) = ev {
            while let Some((from, req)) = os.udp_recv_from(s) {
                self.requests += 1;
                os.consume_cpu(self.service_time);
                let reply = match req.split_first() {
                    Some((b'G', key)) => match self.store.get(key) {
                        Some(v) => {
                            let mut r = vec![b'V'];
                            r.extend_from_slice(v);
                            r
                        }
                        None => b"MISS".to_vec(),
                    },
                    Some((b'S', rest)) => {
                        if let Some(eq) = rest.iter().position(|&b| b == b'=') {
                            self.store
                                .insert(rest[..eq].to_vec(), rest[eq + 1..].to_vec());
                        }
                        b"OK".to_vec()
                    }
                    _ => b"ERR".to_vec(),
                };
                os.udp_send_to(s, from, &reply);
            }
        }
    }

    fn on_timer(&mut self, _os: &mut OsServices, _token: u64) {}

    fn report(&self) -> String {
        format!("memcached requests={} keys={}", self.requests, self.store.len())
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        snap_sock(w, self.sock);
        w.u64(self.requests);
        w.time(self.service_time);
        // Ascending key order, straight off the ordered map.
        w.usize(self.store.len());
        for (k, v) in &self.store {
            w.bytes(k);
            w.bytes(v);
        }
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.sock = restore_sock(r)?;
        self.requests = r.u64()?;
        self.service_time = r.time()?;
        self.store.clear();
        for _ in 0..r.usize()? {
            let k = r.bytes()?;
            let v = r.bytes()?;
            self.store.insert(k, v);
        }
        Ok(())
    }
}

/// memaslap-style closed-loop client: keeps `concurrency` requests in flight
/// against a set of servers (picked round-robin, mixing GET and SET), for a
/// fixed duration, reporting throughput and mean latency.
pub struct MemaslapClient {
    servers: Vec<SocketAddr>,
    concurrency: usize,
    duration: SimTime,
    value_size: usize,
    sock: Option<SocketId>,
    /// In-flight request id -> issue time. Ordered map: the FIFO reply
    /// match and the periodic retry sweep iterate in id order structurally.
    outstanding: BTreeMap<u64, SimTime>,
    next_req: u64,
    started: SimTime,
    stopped: bool,
    pub completed: u64,
    latency_total: SimTime,
}

impl MemaslapClient {
    pub fn new(
        servers: Vec<SocketAddr>,
        concurrency: usize,
        value_size: usize,
        duration: SimTime,
    ) -> Self {
        MemaslapClient {
            servers,
            concurrency: concurrency.max(1),
            duration,
            value_size,
            sock: None,
            outstanding: BTreeMap::new(),
            next_req: 0,
            started: SimTime::ZERO,
            stopped: false,
            completed: 0,
            latency_total: SimTime::ZERO,
        }
    }

    /// Completed requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.duration == SimTime::ZERO {
            return 0.0;
        }
        self.completed as f64 / self.duration.as_secs_f64()
    }

    /// Mean request latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.latency_total.as_ps() as f64 / self.completed as f64 / 1e6
    }

    fn issue(&mut self, os: &mut OsServices) {
        if self.stopped || self.servers.is_empty() {
            return;
        }
        let Some(s) = self.sock else { return };
        while self.outstanding.len() < self.concurrency {
            let id = self.next_req;
            self.next_req += 1;
            let server = self.servers[(id as usize) % self.servers.len()];
            // 10% SETs, 90% GETs (typical memaslap mix).
            let key = format!("key-{}", id % 1000);
            let req = if id.is_multiple_of(10) {
                let mut r = format!("S{key}=").into_bytes();
                r.extend(std::iter::repeat_n(b'v', self.value_size));
                r
            } else {
                format!("G{key}").into_bytes()
            };
            // The request id travels implicitly: one request per server at a
            // time is not guaranteed, so tag the key space by id modulo; for
            // latency we only need issue order (replies are matched FIFO).
            os.udp_send_to(s, server, &req);
            self.outstanding.insert(id, os.now());
        }
    }
}

impl Application for MemaslapClient {
    fn start(&mut self, os: &mut OsServices) {
        self.started = os.now();
        self.sock = os.udp_bind(20000);
        os.set_timer_in(self.duration, TOK_STOP);
        os.set_timer_in(SimTime::from_us(10), TOK_RETRY);
        self.issue(os);
    }

    fn on_socket_event(&mut self, os: &mut OsServices, ev: SocketEvent) {
        if self.stopped {
            return;
        }
        if let SocketEvent::DataAvailable(s) = ev {
            while let Some((_, _reply)) = os.udp_recv_from(s) {
                // Match the oldest outstanding request (FIFO completion),
                // ties broken by request id. Request ids are issued in time
                // order, so the id-ordered map makes (time, id) order
                // structural — iteration order can never decide the match,
                // which would diverge across processes and across
                // checkpoint/restore.
                if let Some((&id, _)) = self.outstanding.iter().min_by_key(|(id, t)| (**t, **id)) {
                    let t0 = self.outstanding.remove(&id).unwrap();
                    self.completed += 1;
                    self.latency_total += os.now() - t0;
                }
            }
            self.issue(os);
        }
    }

    fn on_timer(&mut self, os: &mut OsServices, token: u64) {
        match token {
            TOK_STOP => {
                self.stopped = true;
                os.finish();
            }
            TOK_RETRY if !self.stopped => {
                // UDP requests can be dropped: periodically top up the
                // request window so the closed loop never wedges.
                self.outstanding.retain(|_, t0| os.now() - *t0 < SimTime::from_ms(10));
                self.issue(os);
                os.set_timer_in(SimTime::from_ms(1), TOK_RETRY);
            }
            _ => {}
        }
    }

    fn report(&self) -> String {
        format!(
            "memaslap completed={} tput={:.0}req/s latency={:.1}us",
            self.completed,
            self.throughput_rps(),
            self.mean_latency_us()
        )
    }

    fn done(&self) -> bool {
        self.stopped
    }

    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        snap_sock(w, self.sock);
        // Ascending id order, straight off the ordered map.
        w.usize(self.outstanding.len());
        for (id, t) in &self.outstanding {
            w.u64(*id);
            w.time(*t);
        }
        w.u64(self.next_req);
        w.time(self.started);
        w.bool(self.stopped);
        w.u64(self.completed);
        w.time(self.latency_total);
        Ok(())
    }

    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.sock = restore_sock(r)?;
        self.outstanding.clear();
        for _ in 0..r.usize()? {
            let id = r.u64()?;
            let t = r.time()?;
            self.outstanding.insert(id, t);
        }
        self.next_req = r.u64()?;
        self.started = r.time()?;
        self.stopped = r.bool()?;
        self.completed = r.u64()?;
        self.latency_total = r.time()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> MemaslapClient {
        MemaslapClient::new(Vec::new(), 8, 64, SimTime::from_ms(1))
    }

    /// Determinism regression: two clients holding the same in-flight
    /// request set — reached through different insertion/removal histories —
    /// must produce byte-identical snapshots and match replies to the same
    /// request. Under the pre-fix `HashMap` table (with the per-site sort
    /// removed, as this fix does), the snapshot encodings differ between
    /// the two instances and this test fails.
    #[test]
    fn outstanding_table_is_history_independent() {
        let mut a = client();
        let mut b = client();
        // Same final set {0..24 odd ids at t=id}, different histories.
        for id in 0..24u64 {
            a.outstanding.insert(id, SimTime::from_us(id));
        }
        for id in (0..24u64).step_by(2) {
            a.outstanding.remove(&id);
        }
        for id in (1..24u32).step_by(2).rev().map(u64::from) {
            b.outstanding.insert(id, SimTime::from_us(id));
        }
        let snap = |c: &MemaslapClient| {
            let mut w = SnapWriter::new();
            c.snapshot(&mut w).unwrap();
            w.into_vec()
        };
        assert_eq!(snap(&a), snap(&b), "same set, same snapshot bytes");
        // The FIFO match is (issue time, id)-deterministic: with id==time
        // here, both clients would complete request 1 first.
        let first_a = a.outstanding.iter().min_by_key(|(id, t)| (**t, **id));
        let first_b = b.outstanding.iter().min_by_key(|(id, t)| (**t, **id));
        assert_eq!(first_a.map(|(id, _)| *id), Some(1));
        assert_eq!(first_a.map(|(id, _)| *id), first_b.map(|(id, _)| *id));
    }

    /// The retry sweep (`on_timer` TOK_RETRY) must keep exactly the young
    /// requests, independent of iteration order.
    #[test]
    fn retry_sweep_is_order_independent() {
        let mut c = client();
        for id in [7u64, 3, 15, 1, 12, 5] {
            c.outstanding.insert(id, SimTime::from_ms(id));
        }
        let now = SimTime::from_ms(16);
        c.outstanding.retain(|_, t0| now - *t0 < SimTime::from_ms(10));
        let kept: Vec<u64> = c.outstanding.keys().copied().collect();
        assert_eq!(kept, vec![7, 12, 15], "young requests, ascending id order");
    }
}
