//! Host-only workloads used by the synchronization-overhead experiment
//! (§7.3.1): `sleep 10` (the CPU is almost always idle, so the host is
//! dominated by synchronization events) and a `dd`-style CPU burn (the host
//! is always busy, so synchronization is amortized).

use simbricks_base::snap::{SnapReader, SnapResult, SnapWriter};
use simbricks_base::SimTime;
use simbricks_hostsim::{Application, OsServices};
use simbricks_netstack::SocketEvent;

const TOK_DONE: u64 = 1;
const TOK_BURN: u64 = 2;

/// `sleep <duration>`: does nothing until the timer fires.
pub struct SleepLoad {
    duration: SimTime,
    finished: bool,
}

impl SleepLoad {
    pub fn new(duration: SimTime) -> Self {
        SleepLoad {
            duration,
            finished: false,
        }
    }
}

impl Application for SleepLoad {
    fn start(&mut self, os: &mut OsServices) {
        os.set_timer_in(self.duration, TOK_DONE);
    }
    fn on_socket_event(&mut self, _os: &mut OsServices, _ev: SocketEvent) {}
    fn on_timer(&mut self, os: &mut OsServices, token: u64) {
        if token == TOK_DONE {
            self.finished = true;
            os.finish();
        }
    }
    fn report(&self) -> String {
        format!("sleep done={}", self.finished)
    }
    fn done(&self) -> bool {
        self.finished
    }
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.bool(self.finished);
        Ok(())
    }
    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.finished = r.bool()?;
        Ok(())
    }
}

/// `dd if=/dev/urandom`-style load: consumes CPU in back-to-back slices for
/// the whole duration, generating a high event rate on the host.
pub struct DdLoad {
    duration: SimTime,
    slice: SimTime,
    elapsed: SimTime,
    pub slices: u64,
    finished: bool,
}

impl DdLoad {
    pub fn new(duration: SimTime) -> Self {
        DdLoad {
            duration,
            slice: SimTime::from_us(10),
            elapsed: SimTime::ZERO,
            slices: 0,
            finished: false,
        }
    }
}

impl Application for DdLoad {
    fn start(&mut self, os: &mut OsServices) {
        os.set_timer_in(self.slice, TOK_BURN);
    }
    fn on_socket_event(&mut self, _os: &mut OsServices, _ev: SocketEvent) {}
    fn on_timer(&mut self, os: &mut OsServices, token: u64) {
        if token != TOK_BURN || self.finished {
            return;
        }
        self.slices += 1;
        self.elapsed += self.slice;
        os.consume_cpu(self.slice);
        if self.elapsed >= self.duration {
            self.finished = true;
            os.finish();
        } else {
            os.set_timer_in(self.slice, TOK_BURN);
        }
    }
    fn report(&self) -> String {
        format!("dd slices={} done={}", self.slices, self.finished)
    }
    fn done(&self) -> bool {
        self.finished
    }
    fn snapshot(&self, w: &mut SnapWriter) -> SnapResult<()> {
        w.time(self.elapsed);
        w.u64(self.slices);
        w.bool(self.finished);
        Ok(())
    }
    fn restore(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.elapsed = r.time()?;
        self.slices = r.u64()?;
        self.finished = r.bool()?;
        Ok(())
    }
}
