//! Lowering: a validated [`Scenario`] onto a
//! [`PartitionBuilder`]/[`Experiment`] build.
//!
//! The lowering rules are chosen so that a scenario reproduces the exact
//! component and channel build order of the hand-rolled harnesses it
//! replaced (component order determines event-log fingerprints):
//!
//! * Nodes are instantiated in **declaration order** — one document walk.
//! * A link's channel is created when its **first** endpoint node is built
//!   (hosts consume their single link; switches consume their links in link
//!   declaration order).
//! * A switch's port numbering is its links' declaration order.
//! * A link's `a` side maps to the first element of the channel pair — and
//!   to the listening (impairment direction 0) side of a distributed link.
//!
//! Per-link impairment PRNGs are seeded with
//! `mix_seed(scenario.seed, fnv1a_str(link_name))` and per-switch AQM PRNGs
//! with the switch name, so every random stream is a pure function of the
//! scenario file — bit-identical across executors, transports, shardings,
//! and checkpoint/restore.

use std::collections::BTreeMap;

use simbricks_apps::iperf::{IperfTcpClient, IperfTcpServer, IperfUdpClient, IperfUdpServer};
use simbricks_apps::memcache::{MemaslapClient, MemcachedServer, MEMCACHE_PORT};
use simbricks_apps::netperf::{NetperfClient, NetperfServer};
use simbricks_base::{fnv1a_str, mix_seed, ChannelEnd, ChannelParams, SimTime};
use simbricks_hostsim::{Application, HostConfig};
use simbricks_netsim::{SwitchBm, SwitchConfig};
use simbricks_netstack::SocketAddr;
use simbricks_runner::{Experiment, FaultKind, FaultSpec, PartitionBuilder};

use crate::spec::{AppSpec, FaultDeclKind, LinkSpec, Node, Scenario};

/// Name → global-component-id map produced by [`lower`], for pulling app
/// reports and switch stats out of a
/// [`simbricks_runner::RunResult`] by scenario name.
#[derive(Debug, Clone, Default)]
pub struct Lowered {
    /// `(host name, <name>.host component id)` in declaration order.
    pub hosts: Vec<(String, usize)>,
    /// `(switch name, component id)` in declaration order.
    pub switches: Vec<(String, usize)>,
}

fn partition_of<'a>(spec: &'a Scenario, node: &str) -> &'a str {
    spec.nodes
        .iter()
        .find(|n| n.name() == node)
        .map(|n| n.partition())
        .expect("validated: link endpoints resolve")
}

fn host_config(spec: &Scenario, name: &str) -> HostConfig {
    let h = spec.host(name).expect("validated: host exists");
    let mut cfg = HostConfig::new(h.kind, h.index);
    cfg.nic = h.nic;
    if let Some(cc) = h.congestion {
        cfg.congestion = cc;
    }
    if let Some(mtu) = h.mtu {
        cfg.mtu = mtu;
    }
    cfg
}

fn build_app(spec: &Scenario, app: &AppSpec) -> Box<dyn Application> {
    let dur = |d: Option<SimTime>| d.unwrap_or(spec.duration);
    let ip_of = |name: &str| host_config(spec, name).ip;
    match app {
        AppSpec::IperfTcpServer { port } => Box::new(IperfTcpServer::new(*port)),
        AppSpec::IperfTcpClient {
            server,
            port,
            duration,
        } => Box::new(IperfTcpClient::new(ip_of(server), *port, dur(*duration))),
        AppSpec::IperfUdpServer { port } => Box::new(IperfUdpServer::new(*port)),
        AppSpec::IperfUdpClient {
            server,
            port,
            rate_bps,
            payload,
            duration,
        } => Box::new(IperfUdpClient::new(
            SocketAddr::new(ip_of(server), *port),
            *rate_bps,
            *payload,
            dur(*duration),
        )),
        AppSpec::NetperfServer {
            stream_port,
            rr_port,
        } => Box::new(NetperfServer::new(*stream_port, *rr_port)),
        AppSpec::NetperfClient {
            server,
            stream_port,
            rr_port,
            stream_duration,
            rr_duration,
        } => {
            let half = SimTime::from_ps(spec.duration.as_ps() / 2);
            Box::new(NetperfClient::new(
                ip_of(server),
                *stream_port,
                *rr_port,
                stream_duration.unwrap_or(half),
                rr_duration.unwrap_or(half),
            ))
        }
        AppSpec::MemcachedServer => Box::new(MemcachedServer::new()),
        AppSpec::MemaslapClient {
            servers,
            concurrency,
            value_size,
            duration,
        } => {
            let addrs: Vec<SocketAddr> = servers
                .iter()
                .map(|s| SocketAddr::new(ip_of(s), MEMCACHE_PORT))
                .collect();
            Box::new(MemaslapClient::new(
                addrs,
                *concurrency,
                *value_size,
                dur(*duration),
            ))
        }
    }
}

/// Channel parameters for one link: the experiment's Ethernet defaults plus
/// the link's latency override and impairment model (seed derived from the
/// scenario seed and the link name unless pinned in the file).
fn link_params(spec: &Scenario, base: ChannelParams, link: &LinkSpec) -> ChannelParams {
    let mut p = base;
    if let Some(l) = link.latency {
        p = p.with_latency(l).with_sync_interval(p.sync_interval.min(l));
    }
    if let Some(imp) = &link.impairment {
        p = p.with_impairment(imp.build(mix_seed(spec.seed, fnv1a_str(&link.name))));
    }
    p
}

/// Fetch this node's endpoint of link `li`, creating the channel if this is
/// the first endpoint to be built and parking the far side for its owner.
fn take_end(
    spec: &Scenario,
    pb: &mut PartitionBuilder,
    pending: &mut BTreeMap<usize, ChannelEnd>,
    li: usize,
    side: u8,
) -> ChannelEnd {
    if let Some(end) = pending.remove(&li) {
        return end;
    }
    let link = &spec.links[li];
    let params = link_params(spec, pb.exp().eth_params(), link);
    let (pa, pbn) = (
        partition_of(spec, &link.a).to_string(),
        partition_of(spec, &link.b).to_string(),
    );
    let (a_end, b_end) = pb.channel(&link.name, &pa, &pbn, params);
    if side == 0 {
        pending.insert(li, b_end);
        a_end
    } else {
        pending.insert(li, a_end);
        b_end
    }
}

/// Lower a validated scenario onto `pb`. Calls [`PartitionBuilder::init`]
/// with the configured [`Experiment`], instantiates every node, and returns
/// the name → component-id map.
pub fn lower(spec: &Scenario, pb: &mut PartitionBuilder) -> Lowered {
    let mut exp = Experiment::new(&spec.name, spec.duration.saturating_add(spec.end_margin));
    if spec.log {
        exp = exp.with_logging();
    }
    if !spec.synchronized {
        exp = exp.unsynchronized();
    }
    if let Some(l) = spec.link_latency {
        exp = exp.with_link_latency(l);
    }
    if let Some(l) = spec.pcie_latency {
        exp = exp.with_pcie_latency(l);
    }
    if let Some(i) = spec.sync_interval {
        exp = exp.with_sync_interval(i);
    }
    if let Some(a) = spec.adaptive_sync {
        exp = exp.with_adaptive_sync(a);
    }
    if spec.hier_sync {
        exp = exp.with_hier_sync();
    }
    if spec.global_barrier {
        exp = exp.with_global_barrier();
    }
    pb.init(exp);

    let mut lowered = Lowered::default();
    // Far ends of already-created channels, keyed by link index.
    let mut pending: BTreeMap<usize, ChannelEnd> = BTreeMap::new();

    for node in &spec.nodes {
        match node {
            Node::Host(h) => {
                let (li, side) = spec.links_of(&h.name)[0];
                let end = take_end(spec, pb, &mut pending, li, side);
                let cfg = host_config(spec, &h.name);
                let app = build_app(spec, &h.app);
                let (hid, _nid) =
                    pb.attach_host_nic_on(&h.partition, &h.name, cfg, app, h.rtl_nic, end);
                lowered.hosts.push((h.name.clone(), hid));
            }
            Node::Switch(s) => {
                let link_list = spec.links_of(&s.name);
                let mut ends = Vec::with_capacity(link_list.len());
                for (li, side) in &link_list {
                    ends.push(take_end(spec, pb, &mut pending, *li, *side));
                }
                let mut cfg = SwitchConfig {
                    ports: ends.len(),
                    seed: mix_seed(spec.seed, fnv1a_str(&s.name)),
                    ..Default::default()
                };
                if let Some(b) = s.bandwidth_bps {
                    cfg.bandwidth_bps = b;
                }
                if let Some(q) = s.queue_capacity {
                    cfg.queue_capacity = q;
                }
                if let Some(a) = s.aqm {
                    cfg.aqm = Some(a.to_aqm());
                }
                let mut sw = SwitchBm::new(cfg);
                for (port, (li, _)) in link_list.iter().enumerate() {
                    if let Some(a) = spec.links[*li].aqm {
                        sw.set_port_aqm(port, a.to_aqm());
                    }
                }
                let id = pb.add(&s.partition, &s.name, Box::new(sw), ends);
                lowered.switches.push((s.name.clone(), id));
            }
        }
    }
    debug_assert!(pending.is_empty(), "all channel ends consumed");
    lowered
}

/// Lower the scenario's `[[fault]]` declarations onto runner
/// [`FaultSpec`]s. Omitted targets are resolved deterministically from the
/// scenario seed mixed with the fault's position (`mix_seed(seed,
/// fnv1a_str("fault#<i>"))`), so a given scenario file always yields the
/// same schedule — replays and CI reruns inject identical faults.
pub fn fault_schedule(spec: &Scenario) -> Vec<FaultSpec> {
    let partitions = spec.partitions();
    let cross_links: Vec<&str> = spec
        .links
        .iter()
        .filter(|l| spec.link_crosses_partitions(l))
        .map(|l| l.name.as_str())
        .collect();
    spec.faults
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let pick = |n: usize| {
                (mix_seed(spec.seed, fnv1a_str(&format!("fault#{i}"))) % n as u64) as usize
            };
            let kind = match f.kind {
                FaultDeclKind::KillWorker => FaultKind::KillWorker {
                    partition: match &f.partition {
                        Some(p) => p.clone(),
                        // validate(): partitions is never empty (>= 1 host).
                        None => partitions[pick(partitions.len())].clone(),
                    },
                },
                FaultDeclKind::SeverLink => FaultKind::SeverLink {
                    link: match &f.link {
                        Some(l) => l.clone(),
                        // validate(): cross_links is non-empty for untargeted
                        // sever_link faults.
                        None => cross_links[pick(cross_links.len())].to_string(),
                    },
                },
                FaultDeclKind::CorruptCheckpoint => FaultKind::CorruptCheckpoint,
                FaultDeclKind::TruncateCheckpoint => FaultKind::TruncateCheckpoint,
            };
            FaultSpec { at: f.at, kind }
        })
        .collect()
}

/// `BuildFn`-shaped entry point: the scenario string **is** the TOML text,
/// so distributed workers rebuild their partition from the identical
/// document the orchestrator parsed. Panics with the scenario error message
/// on invalid input (the orchestrator validates first, so a worker-side
/// failure means the file changed mid-run).
pub fn build_from_toml(scenario: &str, pb: &mut PartitionBuilder) {
    let spec = Scenario::from_toml_str(scenario)
        .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
    lower(&spec, pb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_hostsim::HostModel;
    use simbricks_runner::Execution;

    const BACK_TO_BACK: &str = r#"
[scenario]
name = "b2b"
duration = "200us"
log = true

[[host]]
name = "s0"
kind = "qemu_timing"

[host.app]
type = "iperf_tcp_server"

[[host]]
name = "c0"
kind = "qemu_timing"

[host.app]
type = "iperf_tcp_client"
server = "s0"

[[link]]
name = "wire"
a = "s0"
b = "c0"
"#;

    #[test]
    fn lowers_and_runs_a_host_pair() {
        let spec = Scenario::from_toml_str(BACK_TO_BACK).unwrap();
        let mut pb = PartitionBuilder::new_local();
        let low = lower(&spec, &mut pb);
        assert_eq!(low.hosts.len(), 2);
        let r = pb.into_experiment().run(Execution::Sequential);
        assert_eq!(
            r.component_names,
            ["s0.host", "s0.nic", "c0.host", "c0.nic"]
        );
        let server: &HostModel = r.model(low.hosts[0].1).unwrap();
        assert!(
            server.app_report().contains("goodput="),
            "server report: {}",
            server.app_report()
        );
    }

    #[test]
    fn scenario_fingerprint_is_stable_across_runs_and_seed_sensitive() {
        let run = |text: &str| {
            let spec = Scenario::from_toml_str(text).unwrap();
            let mut pb = PartitionBuilder::new_local();
            lower(&spec, &mut pb);
            pb.into_experiment()
                .run(Execution::Sequential)
                .merged_log()
                .fingerprint()
        };
        let impaired = BACK_TO_BACK.to_string()
            + "\n[link.impairment]\nloss = \"bernoulli\"\nloss_permille = 30\njitter = \"100ns\"\n";
        let a = run(&impaired);
        let b = run(&impaired);
        assert_eq!(a, b, "same scenario must be bit-identical");
        let reseeded = impaired.replace("duration = \"200us\"", "duration = \"200us\"\nseed = 99");
        assert_ne!(a, run(&reseeded), "seed must steer the impairment streams");
    }

    #[test]
    fn fault_schedule_is_deterministic_and_seed_derived() {
        let text = BACK_TO_BACK.to_string()
            + "\n[[fault]]\nat = \"50us\"\nkind = \"kill_worker\"\n\
               \n[[fault]]\nat = \"80us\"\nkind = \"sever_link\"\nlink = \"wire\"\n";
        // Put c0 in its own partition so `wire` crosses partitions.
        let text = text.replace("name = \"c0\"\n", "name = \"c0\"\npartition = \"p1\"\n");
        let spec = Scenario::from_toml_str(&text).unwrap();
        let a = fault_schedule(&spec);
        let b = fault_schedule(&spec);
        assert_eq!(a, b, "schedule must be a pure function of the file");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].at, SimTime::from_us(50));
        // Untargeted kill picks a declared partition, seed-derived.
        match &a[0].kind {
            FaultKind::KillWorker { partition } => {
                assert!(spec.partitions().contains(partition));
            }
            k => panic!("expected KillWorker, got {k:?}"),
        }
        assert_eq!(
            a[1].kind,
            FaultKind::SeverLink {
                link: "wire".into()
            }
        );
        // A different seed may steer untargeted picks; at minimum the
        // schedule stays well-formed and deterministic per seed.
        let reseeded = text.replace("duration = \"200us\"", "duration = \"200us\"\nseed = 3");
        let spec2 = Scenario::from_toml_str(&reseeded).unwrap();
        assert_eq!(fault_schedule(&spec2), fault_schedule(&spec2));
    }

    #[test]
    fn per_port_aqm_override_applies_to_switch_side() {
        let text = r#"
[scenario]
name = "aqm-port"
duration = "100us"

[[host]]
name = "s0"

[host.app]
type = "iperf_tcp_server"

[[host]]
name = "c0"

[host.app]
type = "iperf_tcp_client"
server = "s0"

[[switch]]
name = "sw"
ecn_k = 20

[[link]]
name = "l0"
a = "s0"
b = "sw"

[[link]]
name = "l1"
a = "c0"
b = "sw"

[link.aqm]
type = "codel"
target = "5us"
interval = "100us"
"#;
        let spec = Scenario::from_toml_str(text).unwrap();
        // Build the switch exactly as the lowering does and check the ports.
        let mut pb = PartitionBuilder::new_local();
        lower(&spec, &mut pb);
        // Port 0 carries link l0 (dctcp default), port 1 carries l1 (codel).
        let r = pb.into_experiment().run(Execution::Sequential);
        let sw: &SwitchBm = r.model(4).unwrap();
        assert_eq!(
            sw.port_aqm(0),
            simbricks_netsim::Aqm::DctcpThreshold { k_pkts: 20 }
        );
        assert_eq!(
            sw.port_aqm(1),
            simbricks_netsim::Aqm::CoDel {
                target: SimTime::from_us(5),
                interval: SimTime::from_us(100),
            }
        );
    }
}
