//! Dependency-free parser for the TOML subset the scenario format uses.
//!
//! Supported grammar (a deliberate subset of TOML 1.0):
//!
//! * `[table]` and `[[array-of-tables]]` headers with dotted bare-key paths,
//! * `key = value` entries with bare keys,
//! * values: basic strings (`"..."` with `\"
//!   \\ \n \t` escapes), integers (optional sign, `_` separators), booleans,
//!   and single-line arrays of those scalars,
//! * `#` comments (full-line and trailing).
//!
//! Crucially the parser preserves **document order** of the section headers:
//! `[[host]]` / `[[switch]]` interleaving determines component build order
//! (and therefore event-log fingerprints), so the document is represented as
//! an ordered list of [`Section`]s rather than a tree. Sub-tables such as
//! `[link.impairment]` appear as their own sections immediately after the
//! array element they belong to; [`crate::spec`] attaches them to the most
//! recent matching parent.
//!
//! Every error carries the 1-based source line and an actionable message.

use std::fmt;

/// A scalar or single-line-array TOML value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Basic string (escapes already resolved).
    Str(String),
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Single-line array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    fn emit(&self, out: &mut String) {
        match self {
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Array(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    e.emit(out);
                }
                out.push(']');
            }
        }
    }
}

/// One `[header]` or `[[header]]` block with its `key = value` entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Dotted header path, e.g. `["link", "impairment"]`.
    pub path: Vec<String>,
    /// `true` for `[[array-of-tables]]` headers.
    pub is_array: bool,
    /// 1-based line of the header (0 for the implicit root section).
    pub line: usize,
    /// Entries in document order: `(key, value, line)`.
    pub entries: Vec<(String, Value, usize)>,
}

impl Section {
    /// Look up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v)
    }

    /// Source line of an entry, for error reporting (header line if absent).
    pub fn line_of(&self, key: &str) -> usize {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, _, l)| *l)
            .unwrap_or(self.line)
    }

    /// Replace the value of `key`, or append the entry if it is missing.
    pub fn set(&mut self, key: &str, value: Value) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _, _)| k == key) {
            e.1 = value;
        } else {
            self.entries.push((key.to_string(), value, self.line));
        }
    }

    /// Dotted header path as a display string.
    pub fn path_str(&self) -> String {
        self.path.join(".")
    }
}

/// A parsed document: top-level entries plus ordered sections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Doc {
    /// `key = value` entries that appear before the first section header.
    pub root: Vec<(String, Value, usize)>,
    /// All section blocks in document order.
    pub sections: Vec<Section>,
}

/// Parse failure with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line the error was detected on (0 = whole document).
    pub line: usize,
    /// Actionable description.
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for TomlError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        msg: msg.into(),
    })
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Strip a trailing `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse a basic string starting at `s[0] == '"'`; returns (value, rest).
fn parse_string(s: &str, line: usize) -> Result<(String, &str), TomlError> {
    debug_assert!(s.starts_with('"'));
    let mut out = String::new();
    let mut chars = s.char_indices().skip(1);
    let mut escaped = false;
    for (i, c) in &mut chars {
        if escaped {
            match c {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => return err(line, format!("unknown string escape `\\{other}`")),
            }
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Ok((out, &s[i + 1..])),
            c => out.push(c),
        }
    }
    err(line, "unterminated string literal (missing closing `\"`)")
}

/// Parse one scalar/array value from a trimmed string; must consume it all.
fn parse_value(s: &str, line: usize) -> Result<Value, TomlError> {
    let s = s.trim();
    if s.is_empty() {
        return err(line, "missing value after `=`");
    }
    if s.starts_with('"') {
        let (v, rest) = parse_string(s, line)?;
        if !rest.trim().is_empty() {
            return err(line, format!("unexpected trailing text `{}`", rest.trim()));
        }
        return Ok(Value::Str(v));
    }
    if s.starts_with('[') {
        if !s.ends_with(']') {
            return err(line, "arrays must open and close on one line: `[a, b, c]`");
        }
        let inner = &s[1..s.len() - 1];
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            // Find the end of the next element: a top-level comma.
            let elem_end = if rest.starts_with('"') {
                let (v, after) = parse_string(rest, line)?;
                items.push(Value::Str(v));
                rest = after.trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r.trim_start();
                    continue;
                } else if rest.is_empty() {
                    break;
                } else {
                    return err(line, format!("expected `,` between array elements, found `{rest}`"));
                }
            } else {
                rest.find(',').unwrap_or(rest.len())
            };
            let (elem, after) = rest.split_at(elem_end);
            items.push(parse_value(elem, line)?);
            rest = after.strip_prefix(',').unwrap_or(after).trim_start();
        }
        return Ok(Value::Array(items));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits: String = s.chars().filter(|&c| c != '_').collect();
    if let Ok(i) = digits.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if s.contains('.') || s.eq_ignore_ascii_case("inf") || s.eq_ignore_ascii_case("nan") {
        return err(
            line,
            format!(
                "floats are not supported (value `{s}`): use integers or suffixed \
                 strings like \"500ns\" / \"10Gbps\" so results stay bit-deterministic"
            ),
        );
    }
    err(
        line,
        format!("cannot parse value `{s}` (expected string, integer, boolean, or array)"),
    )
}

/// Parse a `[header]` / `[[header]]` dotted path.
fn parse_header(line_text: &str, line: usize) -> Result<(Vec<String>, bool), TomlError> {
    let (inner, is_array) = if let Some(i) = line_text.strip_prefix("[[") {
        match i.strip_suffix("]]") {
            Some(i) => (i, true),
            None => return err(line, "array-of-tables header must end with `]]`"),
        }
    } else {
        let i = line_text.strip_prefix('[').unwrap();
        match i.strip_suffix(']') {
            Some(i) => (i, false),
            None => return err(line, "table header must end with `]`"),
        }
    };
    let mut path = Vec::new();
    for seg in inner.split('.') {
        let seg = seg.trim();
        if !is_bare_key(seg) {
            return err(
                line,
                format!("invalid header segment `{seg}` (use bare keys: letters, digits, `_`, `-`)"),
            );
        }
        path.push(seg.to_string());
    }
    Ok((path, is_array))
}

impl Doc {
    /// Parse a scenario document.
    pub fn parse(text: &str) -> Result<Doc, TomlError> {
        let mut doc = Doc::default();
        let mut current: Option<Section> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let t = strip_comment(raw).trim();
            if t.is_empty() {
                continue;
            }
            if t.starts_with('[') {
                let (path, is_array) = parse_header(t, line)?;
                if let Some(s) = current.take() {
                    doc.sections.push(s);
                }
                current = Some(Section {
                    path,
                    is_array,
                    line,
                    entries: Vec::new(),
                });
                continue;
            }
            let Some(eq) = t.find('=') else {
                return err(
                    line,
                    format!("expected `key = value` or a `[section]` header, found `{t}`"),
                );
            };
            let key = t[..eq].trim();
            if !is_bare_key(key) {
                return err(
                    line,
                    format!("invalid key `{key}` (use bare keys: letters, digits, `_`, `-`)"),
                );
            }
            let value = parse_value(&t[eq + 1..], line)?;
            let entry = (key.to_string(), value, line);
            match &mut current {
                Some(s) => {
                    if s.entries.iter().any(|(k, _, _)| k == key) {
                        return err(line, format!("duplicate key `{key}` in [{}]", s.path_str()));
                    }
                    s.entries.push(entry);
                }
                None => {
                    if doc.root.iter().any(|(k, _, _)| k == key) {
                        return err(line, format!("duplicate top-level key `{key}`"));
                    }
                    doc.root.push(entry);
                }
            }
        }
        if let Some(s) = current.take() {
            doc.sections.push(s);
        }
        Ok(doc)
    }

    /// Serialize back to TOML text (used to re-emit sweep-modified
    /// scenarios, e.g. as the scenario string shipped to dist workers).
    pub fn to_toml_string(&self) -> String {
        let mut out = String::new();
        for (k, v, _) in &self.root {
            out.push_str(k);
            out.push_str(" = ");
            v.emit(&mut out);
            out.push('\n');
        }
        for s in &self.sections {
            if !out.is_empty() {
                out.push('\n');
            }
            if s.is_array {
                out.push('[');
            }
            out.push('[');
            out.push_str(&s.path_str());
            out.push(']');
            if s.is_array {
                out.push(']');
            }
            out.push('\n');
            for (k, v, _) in &s.entries {
                out.push_str(k);
                out.push_str(" = ");
                v.emit(&mut out);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_in_document_order() {
        let text = r#"
# a scenario
[scenario]
name = "demo"
seed = 42

[[host]]
name = "s0"

[host.app]
type = "iperf_tcp_server"
port = 5000

[[switch]]
name = "sw"

[[host]]
name = "c0"
"#;
        let d = Doc::parse(text).unwrap();
        let paths: Vec<String> = d.sections.iter().map(|s| s.path_str()).collect();
        assert_eq!(paths, ["scenario", "host", "host.app", "switch", "host"]);
        assert_eq!(d.sections[0].get("seed"), Some(&Value::Int(42)));
        assert_eq!(
            d.sections[2].get("type").and_then(|v| v.as_str()),
            Some("iperf_tcp_server")
        );
        assert!(d.sections[1].is_array && d.sections[3].is_array);
        assert!(!d.sections[2].is_array);
    }

    #[test]
    fn value_forms() {
        let d = Doc::parse(
            "a = \"x \\\"y\\\" z\"\nb = -3\nc = 1_000_000\nd = true\ne = [1, 2, 3]\nf = [\"p\", \"q\"]\ng = [] # empty\n",
        )
        .unwrap();
        assert_eq!(d.root[0].1, Value::Str("x \"y\" z".into()));
        assert_eq!(d.root[1].1, Value::Int(-3));
        assert_eq!(d.root[2].1, Value::Int(1_000_000));
        assert_eq!(d.root[3].1, Value::Bool(true));
        assert_eq!(
            d.root[4].1,
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            d.root[5].1,
            Value::Array(vec![Value::Str("p".into()), Value::Str("q".into())])
        );
        assert_eq!(d.root[6].1, Value::Array(vec![]));
    }

    #[test]
    fn errors_carry_line_numbers_and_hints() {
        let e = Doc::parse("x = 1\ny = 2.5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("floats are not supported"), "{}", e.msg);

        let e = Doc::parse("[bad\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = Doc::parse("k = \"unterminated\n").unwrap_err();
        assert!(e.msg.contains("unterminated"), "{}", e.msg);

        let e = Doc::parse("[s]\na = 1\na = 2\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("duplicate"), "{}", e.msg);

        let e = Doc::parse("just a sentence\n").unwrap_err();
        assert!(e.msg.contains("key = value"), "{}", e.msg);
    }

    #[test]
    fn comments_are_stripped_but_not_inside_strings() {
        let d = Doc::parse("a = \"has # hash\" # real comment\nb = 1 # tail\n").unwrap();
        assert_eq!(d.root[0].1, Value::Str("has # hash".into()));
        assert_eq!(d.root[1].1, Value::Int(1));
    }

    #[test]
    fn roundtrip_through_serializer() {
        let text = "top = 1\n\n[scenario]\nname = \"x\"\n\n[[host]]\nname = \"h0\"\nports = [1, 2]\n";
        let d = Doc::parse(text).unwrap();
        let out = d.to_toml_string();
        let d2 = Doc::parse(&out).unwrap();
        // Line numbers differ; compare structure.
        assert_eq!(d.root.len(), d2.root.len());
        assert_eq!(d.sections.len(), d2.sections.len());
        for (a, b) in d.sections.iter().zip(&d2.sections) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.is_array, b.is_array);
            let ae: Vec<_> = a.entries.iter().map(|(k, v, _)| (k, v)).collect();
            let be: Vec<_> = b.entries.iter().map(|(k, v, _)| (k, v)).collect();
            assert_eq!(ae, be);
        }
    }
}
