//! Typed scenario model parsed out of the TOML document.
//!
//! The spec layer turns an ordered [`crate::toml::Doc`] into validated Rust
//! types ([`Scenario`], [`HostSpec`], [`SwitchSpec`], [`LinkSpec`]) without
//! touching any simulator — lowering onto a
//! [`simbricks_runner::PartitionBuilder`] lives in [`crate::lower()`]. Node
//! **declaration order is preserved** because it determines component build
//! order and therefore event-log fingerprints.
//!
//! All quantities with units are written as suffixed strings — durations as
//! `"500ns"` / `"2ms"`, bandwidths as `"10Gbps"` — never floats, so a
//! scenario file can never introduce platform-dependent rounding into
//! simulated time (simcheck rule R4 holds by construction).

use std::fmt;

use simbricks_base::{Impairment, LossModel, SimTime};
use simbricks_hostsim::{HostKind, NicModelKind};
use simbricks_netsim::Aqm;
use simbricks_netstack::CongestionControl;

use crate::toml::{Doc, Section, TomlError, Value};

/// Scenario parse/validation failure with source location and context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based source line (0 when the error is not tied to one line).
    pub line: usize,
    /// Actionable description.
    pub msg: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.msg)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<TomlError> for ScenarioError {
    fn from(e: TomlError) -> Self {
        ScenarioError {
            line: e.line,
            msg: e.msg,
        }
    }
}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError {
        line,
        msg: msg.into(),
    })
}

// ---------------------------------------------------------------------------
// Unit parsing
// ---------------------------------------------------------------------------

/// Parse a suffixed duration string: `"<integer><ps|ns|us|ms|s>"`.
pub fn parse_duration(s: &str) -> Result<SimTime, String> {
    let s = s.trim();
    let split = s
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let digits: String = num.chars().filter(|&c| c != '_').collect();
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("`{s}` is not a duration (expected e.g. \"500ns\", \"2ms\")"))?;
    match unit.trim() {
        "ps" => Ok(SimTime::from_ps(n)),
        "ns" => Ok(SimTime::from_ns(n)),
        "us" => Ok(SimTime::from_us(n)),
        "ms" => Ok(SimTime::from_ms(n)),
        "s" => Ok(SimTime::from_sec(n)),
        "" => Err(format!(
            "duration `{s}` needs a unit suffix: ps, ns, us, ms, or s"
        )),
        u => Err(format!(
            "unknown duration unit `{u}` in `{s}` (use ps, ns, us, ms, or s)"
        )),
    }
}

/// Parse a bandwidth: `"<integer><bps|Kbps|Mbps|Gbps>"` (case-insensitive).
pub fn parse_bandwidth(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let split = s
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let digits: String = num.chars().filter(|&c| c != '_').collect();
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("`{s}` is not a bandwidth (expected e.g. \"10Gbps\")"))?;
    let mult = match unit.trim().to_ascii_lowercase().as_str() {
        "bps" | "" => 1,
        "kbps" => 1_000,
        "mbps" => 1_000_000,
        "gbps" => 1_000_000_000,
        u => {
            return Err(format!(
                "unknown bandwidth unit `{u}` in `{s}` (use bps, Kbps, Mbps, or Gbps)"
            ))
        }
    };
    n.checked_mul(mult)
        .ok_or_else(|| format!("bandwidth `{s}` overflows"))
}

// ---------------------------------------------------------------------------
// Section field accessors
// ---------------------------------------------------------------------------

fn check_keys(sec: &Section, allowed: &[&str]) -> Result<(), ScenarioError> {
    for (k, _, line) in &sec.entries {
        if !allowed.contains(&k.as_str()) {
            return err(
                *line,
                format!(
                    "unknown key `{k}` in [{}] (known keys: {})",
                    sec.path_str(),
                    allowed.join(", ")
                ),
            );
        }
    }
    Ok(())
}

fn get_str(sec: &Section, key: &str) -> Result<Option<String>, ScenarioError> {
    match sec.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(v) => err(
            sec.line_of(key),
            format!("`{key}` must be a string, found {}", v.type_name()),
        ),
    }
}

fn req_str(sec: &Section, key: &str) -> Result<String, ScenarioError> {
    match get_str(sec, key)? {
        Some(s) if !s.is_empty() => Ok(s),
        Some(_) => err(sec.line_of(key), format!("`{key}` must not be empty")),
        None => err(
            sec.line,
            format!("[{}] is missing required key `{key}`", sec.path_str()),
        ),
    }
}

fn get_bool(sec: &Section, key: &str) -> Result<Option<bool>, ScenarioError> {
    match sec.get(key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(v) => err(
            sec.line_of(key),
            format!("`{key}` must be true or false, found {}", v.type_name()),
        ),
    }
}

fn get_u64(sec: &Section, key: &str) -> Result<Option<u64>, ScenarioError> {
    match sec.get(key) {
        None => Ok(None),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
        Some(Value::Int(i)) => err(
            sec.line_of(key),
            format!("`{key}` must be non-negative, found {i}"),
        ),
        Some(v) => err(
            sec.line_of(key),
            format!("`{key}` must be an integer, found {}", v.type_name()),
        ),
    }
}

fn get_usize(sec: &Section, key: &str) -> Result<Option<usize>, ScenarioError> {
    Ok(get_u64(sec, key)?.map(|v| v as usize))
}

fn get_u16(sec: &Section, key: &str) -> Result<Option<u16>, ScenarioError> {
    match get_u64(sec, key)? {
        None => Ok(None),
        Some(v) if v <= u16::MAX as u64 => Ok(Some(v as u16)),
        Some(v) => err(
            sec.line_of(key),
            format!("`{key}` = {v} does not fit in 16 bits"),
        ),
    }
}

fn get_duration(sec: &Section, key: &str) -> Result<Option<SimTime>, ScenarioError> {
    match sec.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => {
            parse_duration(s).map(Some).map_err(|m| ScenarioError {
                line: sec.line_of(key),
                msg: format!("`{key}`: {m}"),
            })
        }
        Some(Value::Int(_)) => err(
            sec.line_of(key),
            format!("`{key}` needs a unit: write it as a string like \"500ns\" or \"2ms\""),
        ),
        Some(v) => err(
            sec.line_of(key),
            format!("`{key}` must be a duration string, found {}", v.type_name()),
        ),
    }
}

fn get_bandwidth(sec: &Section, key: &str) -> Result<Option<u64>, ScenarioError> {
    match sec.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => {
            parse_bandwidth(s).map(Some).map_err(|m| ScenarioError {
                line: sec.line_of(key),
                msg: format!("`{key}`: {m}"),
            })
        }
        Some(Value::Int(i)) if *i > 0 => Ok(Some(*i as u64)),
        Some(v) => err(
            sec.line_of(key),
            format!(
                "`{key}` must be a bandwidth like \"10Gbps\" (or raw bps integer), found {}",
                v.type_name()
            ),
        ),
    }
}

// ---------------------------------------------------------------------------
// Spec types
// ---------------------------------------------------------------------------

/// Queue-discipline selection for a switch or a single switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AqmSpec {
    /// Tail-drop only.
    DropTail,
    /// DCTCP-style instantaneous marking threshold (packets).
    Dctcp {
        /// Marking threshold K in packets.
        k_pkts: usize,
    },
    /// Random Early Detection.
    Red {
        /// Queue length (packets) below which nothing is marked/dropped.
        min_pkts: usize,
        /// Queue length at which the probability ramp reaches its maximum.
        max_pkts: usize,
        /// Probability at `max_pkts`, in permille.
        max_prob_permille: u16,
    },
    /// CoDel sojourn-time AQM.
    CoDel {
        /// Target sojourn time.
        target: SimTime,
        /// Sliding measurement interval.
        interval: SimTime,
    },
    /// DualPI2 coupled AQM (L4S).
    DualPi2 {
        /// Queue-delay target.
        target: SimTime,
        /// PI controller update period.
        tupdate: SimTime,
    },
}

impl AqmSpec {
    /// Convert to the switch's runtime [`Aqm`] enum.
    pub fn to_aqm(self) -> Aqm {
        match self {
            AqmSpec::DropTail => Aqm::DropTail,
            AqmSpec::Dctcp { k_pkts } => Aqm::DctcpThreshold { k_pkts },
            AqmSpec::Red {
                min_pkts,
                max_pkts,
                max_prob_permille,
            } => Aqm::Red {
                min_pkts,
                max_pkts,
                max_prob_permille,
            },
            AqmSpec::CoDel { target, interval } => Aqm::CoDel { target, interval },
            AqmSpec::DualPi2 { target, tupdate } => Aqm::DualPi2 { target, tupdate },
        }
    }

    fn parse(sec: &Section) -> Result<AqmSpec, ScenarioError> {
        let ty = req_str(sec, "type")?;
        match ty.as_str() {
            "droptail" => {
                check_keys(sec, &["type"])?;
                Ok(AqmSpec::DropTail)
            }
            "dctcp" => {
                check_keys(sec, &["type", "k_pkts"])?;
                let k = get_usize(sec, "k_pkts")?.unwrap_or(20);
                if k == 0 {
                    return err(sec.line_of("k_pkts"), "dctcp `k_pkts` must be > 0");
                }
                Ok(AqmSpec::Dctcp { k_pkts: k })
            }
            "red" => {
                check_keys(sec, &["type", "min_pkts", "max_pkts", "max_prob_permille"])?;
                let min = get_usize(sec, "min_pkts")?.unwrap_or(5);
                let max = get_usize(sec, "max_pkts")?.unwrap_or(15);
                let p = get_u16(sec, "max_prob_permille")?.unwrap_or(100);
                if min >= max {
                    return err(
                        sec.line,
                        format!("red needs min_pkts < max_pkts (got {min} >= {max})"),
                    );
                }
                if p > 1000 {
                    return err(
                        sec.line_of("max_prob_permille"),
                        format!("red `max_prob_permille` is a permille, max 1000 (got {p})"),
                    );
                }
                Ok(AqmSpec::Red {
                    min_pkts: min,
                    max_pkts: max,
                    max_prob_permille: p,
                })
            }
            "codel" => {
                check_keys(sec, &["type", "target", "interval"])?;
                let target = get_duration(sec, "target")?.unwrap_or(SimTime::from_us(5));
                let interval = get_duration(sec, "interval")?.unwrap_or(SimTime::from_us(100));
                if target == SimTime::ZERO || interval == SimTime::ZERO {
                    return err(sec.line, "codel `target` and `interval` must be > 0");
                }
                Ok(AqmSpec::CoDel { target, interval })
            }
            "dualpi2" => {
                check_keys(sec, &["type", "target", "tupdate"])?;
                let target = get_duration(sec, "target")?.unwrap_or(SimTime::from_us(15));
                let tupdate = get_duration(sec, "tupdate")?.unwrap_or(SimTime::from_us(16));
                if target == SimTime::ZERO || tupdate == SimTime::ZERO {
                    return err(sec.line, "dualpi2 `target` and `tupdate` must be > 0");
                }
                Ok(AqmSpec::DualPi2 { target, tupdate })
            }
            other => err(
                sec.line_of("type"),
                format!(
                    "unknown AQM type `{other}` (known: droptail, dctcp, red, codel, dualpi2)"
                ),
            ),
        }
    }
}

/// Link impairment description (`[link.impairment]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImpairmentSpec {
    /// Loss process.
    pub loss: LossModel,
    /// Uniform extra-delay bound (0 disables jitter).
    pub jitter: SimTime,
    /// Probability (permille) of holding a packet back past its successor.
    pub reorder_permille: u16,
    /// Rate-variation epoch length (0 disables rate variation).
    pub rate_period: SimTime,
    /// Per-epoch extra-delay bound for rate variation.
    pub rate_jitter: SimTime,
    /// Explicit PRNG seed; `None` derives one from the scenario seed and the
    /// link name.
    pub seed: Option<u64>,
}

impl ImpairmentSpec {
    /// Build the runtime [`Impairment`], deriving the seed when unset.
    pub fn build(&self, default_seed: u64) -> Impairment {
        let mut imp = Impairment::none().with_seed(self.seed.unwrap_or(default_seed));
        imp.loss = self.loss;
        imp.jitter_max = self.jitter;
        imp.reorder_permille = self.reorder_permille;
        imp.rate_period = self.rate_period;
        imp.rate_jitter_max = self.rate_jitter;
        imp
    }

    fn parse(sec: &Section) -> Result<ImpairmentSpec, ScenarioError> {
        check_keys(
            sec,
            &[
                "loss",
                "loss_permille",
                "to_bad_permille",
                "to_good_permille",
                "bad_loss_permille",
                "jitter",
                "reorder_permille",
                "rate_period",
                "rate_jitter",
                "seed",
            ],
        )?;
        let permille = |key: &str, default: u16| -> Result<u16, ScenarioError> {
            let v = get_u16(sec, key)?.unwrap_or(default);
            if v > 1000 {
                return err(
                    sec.line_of(key),
                    format!("`{key}` is a permille, max 1000 (got {v})"),
                );
            }
            Ok(v)
        };
        let loss = match get_str(sec, "loss")?.as_deref() {
            None => {
                // Bare `loss_permille` implies Bernoulli.
                if sec.get("loss_permille").is_some() {
                    LossModel::Bernoulli {
                        permille: permille("loss_permille", 0)?,
                    }
                } else {
                    LossModel::None
                }
            }
            Some("bernoulli") => LossModel::Bernoulli {
                permille: permille("loss_permille", 0)?,
            },
            Some("gilbert_elliott") => LossModel::GilbertElliott {
                to_bad_permille: permille("to_bad_permille", 5)?,
                to_good_permille: permille("to_good_permille", 200)?,
                bad_loss_permille: permille("bad_loss_permille", 500)?,
            },
            Some(other) => {
                return err(
                    sec.line_of("loss"),
                    format!("unknown loss model `{other}` (known: bernoulli, gilbert_elliott)"),
                )
            }
        };
        let spec = ImpairmentSpec {
            loss,
            jitter: get_duration(sec, "jitter")?.unwrap_or(SimTime::ZERO),
            reorder_permille: permille("reorder_permille", 0)?,
            rate_period: get_duration(sec, "rate_period")?.unwrap_or(SimTime::ZERO),
            rate_jitter: get_duration(sec, "rate_jitter")?.unwrap_or(SimTime::ZERO),
            seed: get_u64(sec, "seed")?,
        };
        if let Err(m) = spec.build(1).validate() {
            return err(sec.line, format!("invalid impairment: {m}"));
        }
        Ok(spec)
    }
}

/// Application running on a host (`[host.app]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppSpec {
    /// iperf-style TCP sink.
    IperfTcpServer {
        /// Listen port.
        port: u16,
    },
    /// iperf-style TCP source.
    IperfTcpClient {
        /// Server host name.
        server: String,
        /// Server port.
        port: u16,
        /// Send duration (scenario duration when `None`).
        duration: Option<SimTime>,
    },
    /// iperf-style UDP sink.
    IperfUdpServer {
        /// Listen port.
        port: u16,
    },
    /// Paced UDP source.
    IperfUdpClient {
        /// Server host name.
        server: String,
        /// Server port.
        port: u16,
        /// Offered rate in bits per second.
        rate_bps: u64,
        /// Datagram payload bytes.
        payload: usize,
        /// Send duration (scenario duration when `None`).
        duration: Option<SimTime>,
    },
    /// netperf-style stream + request/response sink.
    NetperfServer {
        /// Bulk-stream port.
        stream_port: u16,
        /// Request/response port.
        rr_port: u16,
    },
    /// netperf-style client: bulk stream then latency ping-pong.
    NetperfClient {
        /// Server host name.
        server: String,
        /// Bulk-stream port.
        stream_port: u16,
        /// Request/response port.
        rr_port: u16,
        /// Stream phase duration (half the scenario duration when `None`).
        stream_duration: Option<SimTime>,
        /// RR phase duration (half the scenario duration when `None`).
        rr_duration: Option<SimTime>,
    },
    /// memcached UDP server.
    MemcachedServer,
    /// memaslap-style closed-loop key/value client.
    MemaslapClient {
        /// Server host names.
        servers: Vec<String>,
        /// Outstanding requests kept in flight.
        concurrency: usize,
        /// Value size in bytes.
        value_size: usize,
        /// Run duration (scenario duration when `None`).
        duration: Option<SimTime>,
    },
}

impl AppSpec {
    /// Host names this app sends to (used for validation).
    pub fn server_refs(&self) -> Vec<&str> {
        match self {
            AppSpec::IperfTcpClient { server, .. }
            | AppSpec::IperfUdpClient { server, .. }
            | AppSpec::NetperfClient { server, .. } => vec![server.as_str()],
            AppSpec::MemaslapClient { servers, .. } => {
                servers.iter().map(|s| s.as_str()).collect()
            }
            _ => Vec::new(),
        }
    }

    fn parse(sec: &Section) -> Result<AppSpec, ScenarioError> {
        let ty = req_str(sec, "type")?;
        match ty.as_str() {
            "iperf_tcp_server" => {
                check_keys(sec, &["type", "port"])?;
                Ok(AppSpec::IperfTcpServer {
                    port: get_u16(sec, "port")?.unwrap_or(5000),
                })
            }
            "iperf_tcp_client" => {
                check_keys(sec, &["type", "server", "port", "duration"])?;
                Ok(AppSpec::IperfTcpClient {
                    server: req_str(sec, "server")?,
                    port: get_u16(sec, "port")?.unwrap_or(5000),
                    duration: get_duration(sec, "duration")?,
                })
            }
            "iperf_udp_server" => {
                check_keys(sec, &["type", "port"])?;
                Ok(AppSpec::IperfUdpServer {
                    port: get_u16(sec, "port")?.unwrap_or(9000),
                })
            }
            "iperf_udp_client" => {
                check_keys(sec, &["type", "server", "port", "rate", "payload", "duration"])?;
                let rate = get_bandwidth(sec, "rate")?.ok_or_else(|| ScenarioError {
                    line: sec.line,
                    msg: "iperf_udp_client needs `rate` (e.g. \"500Mbps\")".into(),
                })?;
                Ok(AppSpec::IperfUdpClient {
                    server: req_str(sec, "server")?,
                    port: get_u16(sec, "port")?.unwrap_or(9000),
                    rate_bps: rate,
                    payload: get_usize(sec, "payload")?.unwrap_or(800),
                    duration: get_duration(sec, "duration")?,
                })
            }
            "netperf_server" => {
                check_keys(sec, &["type", "stream_port", "rr_port"])?;
                Ok(AppSpec::NetperfServer {
                    stream_port: get_u16(sec, "stream_port")?.unwrap_or(5201),
                    rr_port: get_u16(sec, "rr_port")?.unwrap_or(5202),
                })
            }
            "netperf_client" => {
                check_keys(
                    sec,
                    &[
                        "type",
                        "server",
                        "stream_port",
                        "rr_port",
                        "stream_duration",
                        "rr_duration",
                    ],
                )?;
                Ok(AppSpec::NetperfClient {
                    server: req_str(sec, "server")?,
                    stream_port: get_u16(sec, "stream_port")?.unwrap_or(5201),
                    rr_port: get_u16(sec, "rr_port")?.unwrap_or(5202),
                    stream_duration: get_duration(sec, "stream_duration")?,
                    rr_duration: get_duration(sec, "rr_duration")?,
                })
            }
            "memcached_server" => {
                check_keys(sec, &["type"])?;
                Ok(AppSpec::MemcachedServer)
            }
            "memaslap_client" => {
                check_keys(
                    sec,
                    &["type", "servers", "concurrency", "value_size", "duration"],
                )?;
                let servers = match sec.get("servers") {
                    Some(Value::Array(v)) if !v.is_empty() => {
                        let mut names = Vec::new();
                        for e in v {
                            match e.as_str() {
                                Some(s) => names.push(s.to_string()),
                                None => {
                                    return err(
                                        sec.line_of("servers"),
                                        "`servers` must be an array of host-name strings",
                                    )
                                }
                            }
                        }
                        names
                    }
                    _ => {
                        return err(
                            sec.line,
                            "memaslap_client needs `servers = [\"h0\", ...]` (non-empty)",
                        )
                    }
                };
                Ok(AppSpec::MemaslapClient {
                    servers,
                    concurrency: get_usize(sec, "concurrency")?.unwrap_or(2),
                    value_size: get_usize(sec, "value_size")?.unwrap_or(64),
                    duration: get_duration(sec, "duration")?,
                })
            }
            other => err(
                sec.line_of("type"),
                format!(
                    "unknown app type `{other}` (known: iperf_tcp_server, iperf_tcp_client, \
                     iperf_udp_server, iperf_udp_client, netperf_server, netperf_client, \
                     memcached_server, memaslap_client)"
                ),
            ),
        }
    }
}

/// A simulated host + NIC pair (`[[host]]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpec {
    /// Component base name (`<name>.host` / `<name>.nic`).
    pub name: String,
    /// Host simulator fidelity.
    pub kind: HostKind,
    /// NIC behavioural model.
    pub nic: NicModelKind,
    /// TCP congestion control (host default when `None`).
    pub congestion: Option<CongestionControl>,
    /// Interface MTU (host default when `None`).
    pub mtu: Option<usize>,
    /// Address index: `ip = 10.x.y.(index+1)`, assigned by declaration order
    /// unless overridden.
    pub index: u32,
    /// Partition this host runs in.
    pub partition: String,
    /// Use the RTL NIC model instead of the behavioural one.
    pub rtl_nic: bool,
    /// The application workload (required).
    pub app: AppSpec,
    /// Header source line.
    pub line: usize,
}

/// A behavioural switch (`[[switch]]`). Port count is implied by the links
/// that reference it, in link declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchSpec {
    /// Component name.
    pub name: String,
    /// Partition this switch runs in.
    pub partition: String,
    /// Egress bandwidth override.
    pub bandwidth_bps: Option<u64>,
    /// Egress queue capacity override (bytes).
    pub queue_capacity: Option<usize>,
    /// Default queue discipline for every port.
    pub aqm: Option<AqmSpec>,
    /// Header source line.
    pub line: usize,
}

/// A point-to-point channel between two nodes (`[[link]]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkSpec {
    /// Unique link name (also the dist cross-link identifier).
    pub name: String,
    /// First endpoint node name (dist listen side, impairment direction 0).
    pub a: String,
    /// Second endpoint node name (dist connect side, direction 1).
    pub b: String,
    /// Propagation latency override.
    pub latency: Option<SimTime>,
    /// Channel impairment model.
    pub impairment: Option<ImpairmentSpec>,
    /// Per-port AQM override applied to switch endpoints of this link.
    pub aqm: Option<AqmSpec>,
    /// Header source line.
    pub line: usize,
}

/// The kinds of deterministic faults a scenario can schedule (`[[fault]]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDeclKind {
    /// Kill a partition's worker process mid-run.
    KillWorker,
    /// Tear down a cross-partition link's proxy.
    SeverLink,
    /// Flip a bit in the newest complete checkpoint-ring slot.
    CorruptCheckpoint,
    /// Truncate the newest complete checkpoint-ring slot (torn write).
    TruncateCheckpoint,
}

/// One scheduled fault (`[[fault]]`): injected by the dist orchestrator when
/// the fleet's minimum virtual time reaches `at`. Omitted targets (partition
/// for `kill_worker`, link for `sever_link`) are chosen deterministically
/// from the scenario seed at lowering time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDecl {
    /// Virtual-time threshold.
    pub at: SimTime,
    /// What to break.
    pub kind: FaultDeclKind,
    /// Target partition (only for `kill_worker`; seed-derived if omitted).
    pub partition: Option<String>,
    /// Target cross link (only for `sever_link`; seed-derived if omitted).
    pub link: Option<String>,
    /// Header source line.
    pub line: usize,
}

impl FaultDecl {
    fn parse(sec: &Section) -> Result<FaultDecl, ScenarioError> {
        check_keys(sec, &["at", "kind", "partition", "link"])?;
        let at = get_duration(sec, "at")?.ok_or_else(|| ScenarioError {
            line: sec.line,
            msg: "[[fault]] needs `at` (e.g. at = \"3ms\")".into(),
        })?;
        let kind = match req_str(sec, "kind")?.as_str() {
            "kill_worker" => FaultDeclKind::KillWorker,
            "sever_link" => FaultDeclKind::SeverLink,
            "corrupt_checkpoint" => FaultDeclKind::CorruptCheckpoint,
            "truncate_checkpoint" => FaultDeclKind::TruncateCheckpoint,
            other => {
                return err(
                    sec.line_of("kind"),
                    format!(
                        "unknown fault kind `{other}` (known: kill_worker, sever_link, \
                         corrupt_checkpoint, truncate_checkpoint)"
                    ),
                )
            }
        };
        let partition = get_str(sec, "partition")?;
        let link = get_str(sec, "link")?;
        if partition.is_some() && kind != FaultDeclKind::KillWorker {
            return err(sec.line_of("partition"), "`partition` is only valid for kill_worker");
        }
        if link.is_some() && kind != FaultDeclKind::SeverLink {
            return err(sec.line_of("link"), "`link` is only valid for sever_link");
        }
        Ok(FaultDecl {
            at,
            kind,
            partition,
            link,
            line: sec.line,
        })
    }
}

/// A node in declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Host + NIC pair.
    Host(HostSpec),
    /// Behavioural switch.
    Switch(SwitchSpec),
}

impl Node {
    /// The node's name.
    pub fn name(&self) -> &str {
        match self {
            Node::Host(h) => &h.name,
            Node::Switch(s) => &s.name,
        }
    }

    /// The node's partition.
    pub fn partition(&self) -> &str {
        match self {
            Node::Host(h) => &h.partition,
            Node::Switch(s) => &s.partition,
        }
    }
}

/// A fully parsed, validated scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Experiment name.
    pub name: String,
    /// Master seed: per-link impairment and per-switch AQM seeds derive from
    /// it (mixed with the element name) unless overridden.
    pub seed: u64,
    /// Workload duration (apps default to it).
    pub duration: SimTime,
    /// Extra virtual time past `duration` before the experiment ends.
    pub end_margin: SimTime,
    /// Enable event logging (needed for fingerprints).
    pub log: bool,
    /// Synchronized channels (the paper's accurate mode).
    pub synchronized: bool,
    /// Hierarchical sync domains.
    pub hier_sync: bool,
    /// Conservative global-barrier sync (the paper's baseline protocol).
    pub global_barrier: bool,
    /// Adaptive sync-interval override.
    pub adaptive_sync: Option<bool>,
    /// Global sync-interval override.
    pub sync_interval: Option<SimTime>,
    /// Default Ethernet link latency.
    pub link_latency: Option<SimTime>,
    /// Default PCIe latency.
    pub pcie_latency: Option<SimTime>,
    /// Default executor string (`[run] exec`), e.g. `"sequential"`.
    pub exec: String,
    /// Default dist transport string (`[run] transport`).
    pub transport: String,
    /// Hosts and switches in declaration order.
    pub nodes: Vec<Node>,
    /// Links in declaration order.
    pub links: Vec<LinkSpec>,
    /// Scheduled faults in declaration order (`[[fault]]`).
    pub faults: Vec<FaultDecl>,
    /// Restart budget for fault recovery (`[faults] max_restarts`).
    pub max_restarts: Option<u64>,
    /// Worker heartbeat period override (`[faults] heartbeat`), wall clock.
    pub heartbeat: Option<SimTime>,
}

fn parse_host_kind(s: &str, line: usize) -> Result<HostKind, ScenarioError> {
    match s {
        "gem5_timing" | "gem5" => Ok(HostKind::Gem5Timing),
        "qemu_timing" | "qemu" => Ok(HostKind::QemuTiming),
        "qemu_kvm" | "kvm" => Ok(HostKind::QemuKvm),
        other => err(
            line,
            format!("unknown host kind `{other}` (known: gem5_timing, qemu_timing, qemu_kvm)"),
        ),
    }
}

fn parse_nic_kind(s: &str, line: usize) -> Result<NicModelKind, ScenarioError> {
    match s {
        "i40e" => Ok(NicModelKind::I40e),
        "corundum" => Ok(NicModelKind::Corundum),
        "e1000" => Ok(NicModelKind::E1000),
        other => err(
            line,
            format!("unknown NIC model `{other}` (known: i40e, corundum, e1000)"),
        ),
    }
}

fn parse_congestion(s: &str, line: usize) -> Result<CongestionControl, ScenarioError> {
    match s {
        "reno" => Ok(CongestionControl::Reno),
        "dctcp" => Ok(CongestionControl::Dctcp),
        other => err(
            line,
            format!("unknown congestion control `{other}` (known: reno, dctcp)"),
        ),
    }
}

/// Which `[[...]]` array element a sub-table may attach to.
enum LastArray {
    None,
    Host,
    Switch,
    Link,
}

impl Scenario {
    /// Parse and validate a scenario from TOML text.
    pub fn from_toml_str(text: &str) -> Result<Scenario, ScenarioError> {
        let doc = Doc::parse(text)?;
        Self::from_doc(&doc)
    }

    /// Parse and validate a scenario from an already-parsed document.
    pub fn from_doc(doc: &Doc) -> Result<Scenario, ScenarioError> {
        if let Some((k, _, line)) = doc.root.first() {
            return err(
                *line,
                format!("top-level key `{k}` is not allowed: put it under a [scenario] section"),
            );
        }
        let mut scenario_sec: Option<&Section> = None;
        let mut run_sec: Option<&Section> = None;
        let mut faults_sec: Option<&Section> = None;
        let mut nodes: Vec<Node> = Vec::new();
        let mut links: Vec<LinkSpec> = Vec::new();
        let mut faults: Vec<FaultDecl> = Vec::new();
        // Node indices that received an explicit [host.app] sub-table.
        let mut app_seen: Vec<usize> = Vec::new();
        let mut host_counter: u32 = 0;
        let mut last = LastArray::None;

        for sec in &doc.sections {
            let path: Vec<&str> = sec.path.iter().map(|s| s.as_str()).collect();
            match (path.as_slice(), sec.is_array) {
                (["scenario"], false) => {
                    if scenario_sec.is_some() {
                        return err(sec.line, "duplicate [scenario] section");
                    }
                    scenario_sec = Some(sec);
                    last = LastArray::None;
                }
                (["run"], false) => {
                    if run_sec.is_some() {
                        return err(sec.line, "duplicate [run] section");
                    }
                    run_sec = Some(sec);
                    last = LastArray::None;
                }
                (["faults"], false) => {
                    if faults_sec.is_some() {
                        return err(sec.line, "duplicate [faults] section");
                    }
                    faults_sec = Some(sec);
                    last = LastArray::None;
                }
                (["fault"], true) => {
                    faults.push(FaultDecl::parse(sec)?);
                    last = LastArray::None;
                }
                (["host"], true) => {
                    check_keys(
                        sec,
                        &[
                            "name",
                            "kind",
                            "nic",
                            "congestion",
                            "mtu",
                            "index",
                            "partition",
                            "rtl_nic",
                        ],
                    )?;
                    let index = match get_u64(sec, "index")? {
                        Some(i) if i <= u32::MAX as u64 => i as u32,
                        Some(i) => {
                            return err(
                                sec.line_of("index"),
                                format!("host `index` = {i} does not fit in 32 bits"),
                            )
                        }
                        None => host_counter,
                    };
                    host_counter += 1;
                    let kind = match get_str(sec, "kind")? {
                        Some(s) => parse_host_kind(&s, sec.line_of("kind"))?,
                        None => HostKind::Gem5Timing,
                    };
                    let nic = match get_str(sec, "nic")? {
                        Some(s) => parse_nic_kind(&s, sec.line_of("nic"))?,
                        None => NicModelKind::I40e,
                    };
                    let congestion = match get_str(sec, "congestion")? {
                        Some(s) => Some(parse_congestion(&s, sec.line_of("congestion"))?),
                        None => None,
                    };
                    nodes.push(Node::Host(HostSpec {
                        name: req_str(sec, "name")?,
                        kind,
                        nic,
                        congestion,
                        mtu: get_usize(sec, "mtu")?,
                        index,
                        partition: get_str(sec, "partition")?.unwrap_or_else(|| "w0".into()),
                        rtl_nic: get_bool(sec, "rtl_nic")?.unwrap_or(false),
                        // Placeholder until the [host.app] sub-table arrives;
                        // validate() rejects hosts that never get one.
                        app: AppSpec::MemcachedServer,
                        line: sec.line,
                    }));
                    // Remember whether an app sub-table arrived (parallel
                    // vec would be clumsy: use a sentinel check in validate
                    // via `app_seen` tracking below).
                    last = LastArray::Host;
                }
                (["switch"], true) => {
                    check_keys(
                        sec,
                        &["name", "partition", "bandwidth", "queue_capacity", "ecn_k"],
                    )?;
                    let aqm = match get_usize(sec, "ecn_k")? {
                        Some(k) if k > 0 => Some(AqmSpec::Dctcp { k_pkts: k }),
                        Some(_) => return err(sec.line_of("ecn_k"), "`ecn_k` must be > 0"),
                        None => None,
                    };
                    nodes.push(Node::Switch(SwitchSpec {
                        name: req_str(sec, "name")?,
                        partition: get_str(sec, "partition")?.unwrap_or_else(|| "w0".into()),
                        bandwidth_bps: get_bandwidth(sec, "bandwidth")?,
                        queue_capacity: get_usize(sec, "queue_capacity")?,
                        aqm,
                        line: sec.line,
                    }));
                    last = LastArray::Switch;
                }
                (["link"], true) => {
                    check_keys(sec, &["name", "a", "b", "latency"])?;
                    links.push(LinkSpec {
                        name: req_str(sec, "name")?,
                        a: req_str(sec, "a")?,
                        b: req_str(sec, "b")?,
                        latency: get_duration(sec, "latency")?,
                        impairment: None,
                        aqm: None,
                        line: sec.line,
                    });
                    last = LastArray::Link;
                }
                (["host", "app"], false) => match (nodes.last_mut(), &last) {
                    (Some(Node::Host(h)), LastArray::Host) => {
                        h.app = AppSpec::parse(sec)?;
                        app_seen.push(nodes.len() - 1);
                        // Consume the slot so a second [host.app] errors.
                        last = LastArray::None;
                    }
                    _ => {
                        return err(
                            sec.line,
                            "[host.app] must follow the [[host]] it belongs to",
                        )
                    }
                },
                (["switch", "aqm"], false) => match (nodes.last_mut(), &last) {
                    (Some(Node::Switch(s)), LastArray::Switch) => {
                        if s.aqm.is_some() {
                            // Only `ecn_k` can have set it at this point.
                            return err(
                                sec.line,
                                format!(
                                    "switch `{}` sets both `ecn_k` and [switch.aqm]: pick one",
                                    s.name
                                ),
                            );
                        }
                        s.aqm = Some(AqmSpec::parse(sec)?);
                        last = LastArray::None;
                    }
                    _ => {
                        return err(
                            sec.line,
                            "[switch.aqm] must follow the [[switch]] it belongs to",
                        )
                    }
                },
                (["link", "impairment"], false) => match (links.last_mut(), &last) {
                    (Some(l), LastArray::Link) => {
                        if l.impairment.is_some() {
                            return err(sec.line, "duplicate [link.impairment]");
                        }
                        l.impairment = Some(ImpairmentSpec::parse(sec)?);
                    }
                    _ => {
                        return err(
                            sec.line,
                            "[link.impairment] must follow the [[link]] it belongs to",
                        )
                    }
                },
                (["link", "aqm"], false) => match (links.last_mut(), &last) {
                    (Some(l), LastArray::Link) => {
                        if l.aqm.is_some() {
                            return err(sec.line, "duplicate [link.aqm]");
                        }
                        l.aqm = Some(AqmSpec::parse(sec)?);
                    }
                    _ => {
                        return err(sec.line, "[link.aqm] must follow the [[link]] it belongs to")
                    }
                },
                _ => {
                    return err(
                        sec.line,
                        format!(
                            "unknown section [{}{}{}] (known: [scenario], [run], [faults], \
                             [[fault]], [[host]], [host.app], [[switch]], [switch.aqm], \
                             [[link]], [link.impairment], [link.aqm])",
                            if sec.is_array { "[" } else { "" },
                            sec.path_str(),
                            if sec.is_array { "]" } else { "" },
                        ),
                    )
                }
            }
        }

        let ssec = match scenario_sec {
            Some(s) => s,
            None => return err(0, "missing [scenario] section (with `name` and `duration`)"),
        };
        check_keys(
            ssec,
            &[
                "name",
                "seed",
                "duration",
                "end_margin",
                "log",
                "synchronized",
                "hier_sync",
                "global_barrier",
                "adaptive_sync",
                "sync_interval",
                "link_latency",
                "pcie_latency",
            ],
        )?;
        let duration = get_duration(ssec, "duration")?.ok_or_else(|| ScenarioError {
            line: ssec.line,
            msg: "[scenario] needs `duration` (e.g. duration = \"2ms\")".into(),
        })?;
        if duration == SimTime::ZERO {
            return err(ssec.line_of("duration"), "`duration` must be > 0");
        }
        let (exec, transport) = match run_sec {
            Some(r) => {
                check_keys(r, &["exec", "transport"])?;
                (
                    get_str(r, "exec")?.unwrap_or_else(|| "sequential".into()),
                    get_str(r, "transport")?.unwrap_or_else(|| "auto".into()),
                )
            }
            None => ("sequential".into(), "auto".into()),
        };
        let (max_restarts, heartbeat) = match faults_sec {
            Some(f) => {
                check_keys(f, &["max_restarts", "heartbeat"])?;
                (get_u64(f, "max_restarts")?, get_duration(f, "heartbeat")?)
            }
            None => (None, None),
        };
        let scen = Scenario {
            name: req_str(ssec, "name")?,
            seed: get_u64(ssec, "seed")?.unwrap_or(1),
            duration,
            end_margin: get_duration(ssec, "end_margin")?.unwrap_or(SimTime::from_ms(2)),
            log: get_bool(ssec, "log")?.unwrap_or(false),
            synchronized: get_bool(ssec, "synchronized")?.unwrap_or(true),
            hier_sync: get_bool(ssec, "hier_sync")?.unwrap_or(false),
            global_barrier: get_bool(ssec, "global_barrier")?.unwrap_or(false),
            adaptive_sync: get_bool(ssec, "adaptive_sync")?,
            sync_interval: get_duration(ssec, "sync_interval")?,
            link_latency: get_duration(ssec, "link_latency")?,
            pcie_latency: get_duration(ssec, "pcie_latency")?,
            exec,
            transport,
            nodes,
            links,
            faults,
            max_restarts,
            heartbeat,
        };
        scen.validate(&app_seen)?;
        Ok(scen)
    }

    /// Distinct partition names in first-use (declaration) order.
    pub fn partitions(&self) -> Vec<String> {
        let mut parts: Vec<String> = Vec::new();
        for n in &self.nodes {
            if !parts.iter().any(|p| p == n.partition()) {
                parts.push(n.partition().to_string());
            }
        }
        parts
    }

    /// Number of hosts in the scenario.
    pub fn hosts_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Host(_)))
            .count()
    }

    /// Look up a host spec by name.
    pub fn host(&self, name: &str) -> Option<&HostSpec> {
        self.nodes.iter().find_map(|n| match n {
            Node::Host(h) if h.name == name => Some(h),
            _ => None,
        })
    }

    /// Links that reference `node`, in declaration order, with the side the
    /// node sits on (`0` = `a`, `1` = `b`).
    pub fn links_of(&self, node: &str) -> Vec<(usize, u8)> {
        let mut v = Vec::new();
        for (i, l) in self.links.iter().enumerate() {
            if l.a == node {
                v.push((i, 0));
            } else if l.b == node {
                v.push((i, 1));
            }
        }
        v
    }

    fn validate(&self, app_seen: &[usize]) -> Result<(), ScenarioError> {
        // Unique node names.
        for (i, n) in self.nodes.iter().enumerate() {
            if self.nodes[..i].iter().any(|m| m.name() == n.name()) {
                let line = match n {
                    Node::Host(h) => h.line,
                    Node::Switch(s) => s.line,
                };
                return err(line, format!("duplicate node name `{}`", n.name()));
            }
        }
        // Unique link names, endpoints resolve, no self-links.
        for (i, l) in self.links.iter().enumerate() {
            if self.links[..i].iter().any(|m| m.name == l.name) {
                return err(l.line, format!("duplicate link name `{}`", l.name));
            }
            if l.a == l.b {
                return err(l.line, format!("link `{}` connects `{}` to itself", l.name, l.a));
            }
            for endpoint in [&l.a, &l.b] {
                if !self.nodes.iter().any(|n| n.name() == endpoint.as_str()) {
                    return err(
                        l.line,
                        format!(
                            "link `{}` references unknown node `{endpoint}` \
                             (declare it with [[host]] or [[switch]])",
                            l.name
                        ),
                    );
                }
            }
            if l.aqm.is_some()
                && !self.links_touches_switch(l)
            {
                return err(
                    l.line,
                    format!(
                        "link `{}` has a [link.aqm] override but neither endpoint is a switch",
                        l.name
                    ),
                );
            }
        }
        // Host degree exactly 1, switch degree >= 1, every host has an app.
        for (idx, n) in self.nodes.iter().enumerate() {
            let deg = self.links_of(n.name()).len();
            match n {
                Node::Host(h) => {
                    if deg != 1 {
                        return err(
                            h.line,
                            format!(
                                "host `{}` must appear in exactly one [[link]] (found {deg})",
                                h.name
                            ),
                        );
                    }
                    if !app_seen.contains(&idx) {
                        return err(
                            h.line,
                            format!("host `{}` is missing its [host.app] sub-table", h.name),
                        );
                    }
                    for server in h.app.server_refs() {
                        match self.host(server) {
                            Some(_) => {}
                            None => {
                                return err(
                                    h.line,
                                    format!(
                                        "app on host `{}` references server `{server}`, which \
                                         is not a declared host",
                                        h.name
                                    ),
                                )
                            }
                        }
                    }
                }
                Node::Switch(s) => {
                    if deg == 0 {
                        return err(
                            s.line,
                            format!("switch `{}` has no links (add it to a [[link]])", s.name),
                        );
                    }
                }
            }
        }
        // Unique host indices (duplicates would alias IPs/MACs).
        let mut idxs: Vec<(u32, &str, usize)> = Vec::new();
        for n in &self.nodes {
            if let Node::Host(h) = n {
                if let Some((_, other, _)) = idxs.iter().find(|(i, _, _)| *i == h.index) {
                    return err(
                        h.line,
                        format!(
                            "hosts `{other}` and `{}` share address index {} \
                             (IPs would collide); set distinct `index` values",
                            h.name, h.index
                        ),
                    );
                }
                idxs.push((h.index, &h.name, h.line));
            }
        }
        if !self.nodes.iter().any(|n| matches!(n, Node::Host(_))) {
            return err(0, "scenario has no hosts");
        }
        // Fault targets must resolve: kill_worker partitions must be declared
        // and sever_link links must cross partitions (intra-partition links
        // have no proxy to tear down).
        let parts = self.partitions();
        for f in &self.faults {
            if let Some(p) = &f.partition {
                if !parts.iter().any(|q| q == p) {
                    return err(
                        f.line,
                        format!(
                            "fault targets unknown partition `{p}` (declared: {})",
                            parts.join(", ")
                        ),
                    );
                }
            }
            if let Some(lk) = &f.link {
                match self.links.iter().find(|l| &l.name == lk) {
                    None => {
                        return err(f.line, format!("fault targets unknown link `{lk}`"));
                    }
                    Some(l) if !self.link_crosses_partitions(l) => {
                        return err(
                            f.line,
                            format!(
                                "fault link `{lk}` does not cross partitions: sever_link \
                                 only applies to cross-partition links"
                            ),
                        );
                    }
                    Some(_) => {}
                }
            }
            if matches!(f.kind, FaultDeclKind::SeverLink)
                && f.link.is_none()
                && !self.links.iter().any(|l| self.link_crosses_partitions(l))
            {
                return err(
                    f.line,
                    "sever_link fault but the scenario has no cross-partition links",
                );
            }
        }
        Ok(())
    }

    /// Whether a link's endpoints live in different partitions.
    pub fn link_crosses_partitions(&self, l: &LinkSpec) -> bool {
        let part_of = |name: &str| {
            self.nodes
                .iter()
                .find(|n| n.name() == name)
                .map(|n| n.partition())
        };
        match (part_of(&l.a), part_of(&l.b)) {
            (Some(pa), Some(pb)) => pa != pb,
            _ => false,
        }
    }

    fn links_touches_switch(&self, l: &LinkSpec) -> bool {
        [&l.a, &l.b].iter().any(|ep| {
            self.nodes
                .iter()
                .any(|n| matches!(n, Node::Switch(s) if &s.name == *ep))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
[scenario]
name = "demo"
seed = 7
duration = "1ms"
log = true

[[host]]
name = "s0"
kind = "gem5_timing"
congestion = "dctcp"
mtu = 4000

[host.app]
type = "iperf_tcp_server"
port = 5000

[[host]]
name = "c0"
congestion = "dctcp"
mtu = 4000

[host.app]
type = "iperf_tcp_client"
server = "s0"
port = 5000

[[switch]]
name = "sw"
ecn_k = 20

[[link]]
name = "l0"
a = "s0"
b = "sw"

[[link]]
name = "l1"
a = "c0"
b = "sw"

[link.impairment]
loss = "bernoulli"
loss_permille = 10
jitter = "50ns"
"#;

    #[test]
    fn parses_a_full_scenario() {
        let s = Scenario::from_toml_str(GOOD).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.seed, 7);
        assert_eq!(s.duration, SimTime::from_ms(1));
        assert!(s.log && s.synchronized && !s.hier_sync);
        assert_eq!(s.nodes.len(), 3);
        assert_eq!(s.links.len(), 2);
        let h = s.host("s0").unwrap();
        assert_eq!(h.index, 0);
        assert_eq!(h.congestion, Some(CongestionControl::Dctcp));
        assert_eq!(s.host("c0").unwrap().index, 1);
        match &s.nodes[2] {
            Node::Switch(sw) => assert_eq!(sw.aqm, Some(AqmSpec::Dctcp { k_pkts: 20 })),
            n => panic!("expected switch, got {n:?}"),
        }
        let imp = s.links[1].impairment.unwrap();
        assert_eq!(imp.loss, LossModel::Bernoulli { permille: 10 });
        assert_eq!(imp.jitter, SimTime::from_ns(50));
        assert_eq!(s.partitions(), ["w0"]);
        assert_eq!(s.links_of("sw"), [(0, 1), (1, 1)]);
    }

    #[test]
    fn units_parse_and_reject() {
        assert_eq!(parse_duration("500ns").unwrap(), SimTime::from_ns(500));
        assert_eq!(parse_duration("2ms").unwrap(), SimTime::from_ms(2));
        assert_eq!(parse_duration("1_000us").unwrap(), SimTime::from_us(1000));
        assert!(parse_duration("500").unwrap_err().contains("unit"));
        assert!(parse_duration("fast").is_err());
        assert_eq!(parse_bandwidth("10Gbps").unwrap(), 10_000_000_000);
        assert_eq!(parse_bandwidth("250Mbps").unwrap(), 250_000_000);
        assert!(parse_bandwidth("10GB").is_err());
    }

    fn expect_err(toml: &str, needle: &str) {
        match Scenario::from_toml_str(toml) {
            Ok(_) => panic!("expected error containing {needle:?}"),
            Err(e) => assert!(
                e.msg.contains(needle),
                "error {:?} does not contain {needle:?}",
                e.msg
            ),
        }
    }

    #[test]
    fn validation_errors_are_actionable() {
        expect_err("[scenario]\nname = \"x\"\n", "duration");
        expect_err(
            "[scenario]\nname = \"x\"\nduration = \"1ms\"\n",
            "no hosts",
        );
        // Unknown link endpoint.
        expect_err(
            &GOOD.replace("b = \"sw\"", "b = \"nope\""),
            "unknown node `nope`",
        );
        // Missing app.
        expect_err(
            &GOOD.replace("type = \"iperf_tcp_server\"\nport = 5000", "type = \"iperf_tcp_server\"\nport = 5000\n[[host]]\nname = \"zz\"\nindex = 99\n[[link]]\nname = \"lz\"\na = \"zz\"\nb = \"sw\""),
            "missing its [host.app]",
        );
        // Unknown keys get named with suggestions.
        expect_err(
            &GOOD.replace("seed = 7", "sede = 7"),
            "unknown key `sede`",
        );
        // Duplicate indices collide.
        expect_err(
            &GOOD.replace("name = \"c0\"\n", "name = \"c0\"\nindex = 0\n"),
            "share address index",
        );
        // Client referencing a non-host.
        expect_err(
            &GOOD.replace("server = \"s0\"", "server = \"sw\""),
            "not a declared host",
        );
    }

    #[test]
    fn subtable_attachment_is_positional() {
        // [host.app] after a [[switch]] must fail.
        let bad = r#"
[scenario]
name = "x"
duration = "1ms"

[[switch]]
name = "sw"

[host.app]
type = "memcached_server"
"#;
        expect_err(bad, "[host.app] must follow");
    }

    /// GOOD with the client host moved to partition "p1" (so `l1` crosses
    /// partitions) plus the given fault TOML appended.
    fn with_faults(fault_toml: &str) -> String {
        format!(
            "{}\n{fault_toml}\n",
            GOOD.replace("name = \"c0\"\n", "name = \"c0\"\npartition = \"p1\"\n")
        )
    }

    #[test]
    fn faults_parse_with_targets_and_defaults() {
        let s = Scenario::from_toml_str(&with_faults(
            "[faults]\nmax_restarts = 3\nheartbeat = \"20ms\"\n\n\
             [[fault]]\nat = \"500us\"\nkind = \"kill_worker\"\npartition = \"p1\"\n\n\
             [[fault]]\nat = \"700us\"\nkind = \"sever_link\"\nlink = \"l1\"\n\n\
             [[fault]]\nat = \"900us\"\nkind = \"corrupt_checkpoint\"\n",
        ))
        .unwrap();
        assert_eq!(s.max_restarts, Some(3));
        assert_eq!(s.heartbeat, Some(SimTime::from_ms(20)));
        assert_eq!(s.faults.len(), 3);
        assert_eq!(s.faults[0].kind, FaultDeclKind::KillWorker);
        assert_eq!(s.faults[0].at, SimTime::from_us(500));
        assert_eq!(s.faults[0].partition.as_deref(), Some("p1"));
        assert_eq!(s.faults[1].kind, FaultDeclKind::SeverLink);
        assert_eq!(s.faults[1].link.as_deref(), Some("l1"));
        assert_eq!(s.faults[2].kind, FaultDeclKind::CorruptCheckpoint);
        assert!(s.faults[2].partition.is_none() && s.faults[2].link.is_none());
    }

    #[test]
    fn fault_targets_may_be_omitted() {
        let s = Scenario::from_toml_str(&with_faults(
            "[[fault]]\nat = \"1us\"\nkind = \"kill_worker\"\n\n\
             [[fault]]\nat = \"2us\"\nkind = \"sever_link\"\n",
        ))
        .unwrap();
        assert!(s.faults[0].partition.is_none());
        assert!(s.faults[1].link.is_none());
        assert_eq!(s.max_restarts, None);
        assert_eq!(s.heartbeat, None);
    }

    #[test]
    fn fault_validation_errors_are_actionable() {
        expect_err(
            &with_faults("[[fault]]\nkind = \"kill_worker\"\n"),
            "needs `at`",
        );
        expect_err(
            &with_faults("[[fault]]\nat = \"1us\"\nkind = \"set_on_fire\"\n"),
            "unknown fault kind `set_on_fire`",
        );
        expect_err(
            &with_faults("[[fault]]\nat = \"1us\"\nkind = \"kill_worker\"\npartition = \"p9\"\n"),
            "unknown partition `p9`",
        );
        expect_err(
            &with_faults("[[fault]]\nat = \"1us\"\nkind = \"sever_link\"\nlink = \"nope\"\n"),
            "unknown link `nope`",
        );
        // l0 is intra-partition (both endpoints default to w0).
        expect_err(
            &with_faults("[[fault]]\nat = \"1us\"\nkind = \"sever_link\"\nlink = \"l0\"\n"),
            "does not cross partitions",
        );
        // partition/link keys are kind-specific.
        expect_err(
            &with_faults("[[fault]]\nat = \"1us\"\nkind = \"sever_link\"\npartition = \"p1\"\n"),
            "only valid for kill_worker",
        );
        expect_err(
            &with_faults("[[fault]]\nat = \"1us\"\nkind = \"kill_worker\"\nlink = \"l1\"\n"),
            "only valid for sever_link",
        );
        // sever_link with no cross links at all (plain GOOD, single partition).
        expect_err(
            &format!("{GOOD}\n[[fault]]\nat = \"1us\"\nkind = \"sever_link\"\n"),
            "no cross-partition links",
        );
        expect_err(
            &with_faults("[faults]\nmax_restarts = 1\n\n[faults]\nmax_restarts = 2\n"),
            "duplicate [faults]",
        );
    }
}
