//! `simbricks-run` — run a declarative scenario file on any executor.
//!
//! ```text
//! simbricks-run <scenario.toml> [options]
//!   --validate              parse + validate only (multiple files allowed)
//!   --exec <mode>           sequential | threads | sharded[:N] | dist
//!                           (default: the scenario's [run] exec)
//!   --transport <t>         tcp | shm | auto  (dist only)
//!   --sweep key=v1,v2,...   sweep a field over values; repeatable flags
//!                           form a cross product. Keys address sections by
//!                           path and element name, `*` matches any name:
//!                             scenario.seed=1,2,3
//!                             link.*.impairment.loss_permille=0,20
//!                             switch.sw.aqm.type=red,codel
//!   --json <path|->         write results as JSON
//!   --quiet                 suppress per-run text output
//!   --checkpoint-ring DIR   record a checkpoint ring into DIR while the
//!                           run progresses (replayable with
//!                           `simbricks-replay`); forces logging on
//!   --ring-period DUR       virtual time between ring entries
//!                           (default: duration / 8)
//!   --ring-keep N           keep only the newest N entries (default: all)
//!   --max-restarts N        fleet restarts to attempt on worker failure
//!                           (dist only; default: the scenario's
//!                           [faults] max_restarts, else #faults + 1 when
//!                           the scenario schedules faults, else 0)
//!   --heartbeat DUR         wall-clock worker heartbeat period (dist only;
//!                           default: the scenario's [faults] heartbeat,
//!                           else 100ms)
//!   --no-faults             ignore the scenario's [[fault]] schedule
//! ```
//!
//! Every run prints (and optionally records) the event-log fingerprint, the
//! per-host app reports, and per-switch statistics. The same scenario text
//! is handed verbatim to distributed workers, so `--exec dist` produces
//! bit-identical simulation results to a local run.

use std::fmt::Write as _;
use std::process::ExitCode;

use simbricks_base::SimTime;
use simbricks_hostsim::HostModel;
use simbricks_netsim::SwitchBm;
use simbricks_runner::{
    maybe_worker, run_distributed, DistError, DistOptions, Execution, PartitionBuilder, RingMeta,
    RingOptions, TransportKind, RING_SCENARIO_FILE,
};
use simbricks_scenario::{build_from_toml, fault_schedule, lower, parse_duration, Doc, Scenario, Value};

struct Args {
    file: Option<String>,
    validate: Vec<String>,
    exec: Option<String>,
    transport: Option<String>,
    sweeps: Vec<(String, Vec<Value>)>,
    json: Option<String>,
    quiet: bool,
    ring_dir: Option<String>,
    ring_period: Option<String>,
    ring_keep: usize,
    max_restarts: Option<u32>,
    heartbeat: Option<String>,
    no_faults: bool,
}

/// Checkpoint-ring recording request, resolved against the scenario.
struct RingCli {
    dir: std::path::PathBuf,
    period: SimTime,
    keep: usize,
}

/// Fault/recovery request from the command line (resolved against the
/// scenario's `[faults]` section per run).
struct FaultCli {
    max_restarts: Option<u32>,
    heartbeat: Option<std::time::Duration>,
    no_faults: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: simbricks-run <scenario.toml> [--exec MODE] [--transport T] \
         [--sweep key=v1,v2,...]... [--json PATH|-] [--quiet] \
         [--checkpoint-ring DIR [--ring-period DUR] [--ring-keep N]] \
         [--max-restarts N] [--heartbeat DUR] [--no-faults]\n       \
         simbricks-run --validate <scenario.toml>..."
    );
    std::process::exit(2);
}

fn parse_sweep(arg: &str) -> Result<(String, Vec<Value>), String> {
    let (key, vals) = arg
        .split_once('=')
        .ok_or_else(|| format!("--sweep `{arg}` must look like key=v1,v2,..."))?;
    if key.split('.').count() < 2 {
        return Err(format!(
            "--sweep key `{key}` must be a dotted path like scenario.seed or \
             link.*.impairment.loss_permille"
        ));
    }
    let values: Vec<Value> = vals
        .split(',')
        .map(|v| {
            let v = v.trim();
            if let Ok(i) = v.replace('_', "").parse::<i64>() {
                Value::Int(i)
            } else if v == "true" || v == "false" {
                Value::Bool(v == "true")
            } else {
                Value::Str(v.to_string())
            }
        })
        .collect();
    if values.is_empty() {
        return Err(format!("--sweep `{arg}` has no values"));
    }
    Ok((key.to_string(), values))
}

fn parse_args() -> Args {
    let mut args = Args {
        file: None,
        validate: Vec::new(),
        exec: None,
        transport: None,
        sweeps: Vec::new(),
        json: None,
        quiet: false,
        ring_dir: None,
        ring_period: None,
        ring_keep: 0,
        max_restarts: None,
        heartbeat: None,
        no_faults: false,
    };
    let mut it = std::env::args().skip(1);
    let mut validating = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--validate" => validating = true,
            "--exec" => args.exec = Some(it.next().unwrap_or_else(|| usage())),
            "--transport" => args.transport = Some(it.next().unwrap_or_else(|| usage())),
            "--sweep" => {
                let s = it.next().unwrap_or_else(|| usage());
                match parse_sweep(&s) {
                    Ok(kv) => args.sweeps.push(kv),
                    Err(e) => {
                        eprintln!("simbricks-run: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => args.json = Some(it.next().unwrap_or_else(|| usage())),
            "--checkpoint-ring" => args.ring_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--ring-period" => args.ring_period = Some(it.next().unwrap_or_else(|| usage())),
            "--ring-keep" => {
                let n = it.next().unwrap_or_else(|| usage());
                args.ring_keep = n.parse().unwrap_or_else(|_| {
                    eprintln!("simbricks-run: --ring-keep `{n}` is not a number");
                    std::process::exit(2);
                });
            }
            "--max-restarts" => {
                let n = it.next().unwrap_or_else(|| usage());
                args.max_restarts = Some(n.parse().unwrap_or_else(|_| {
                    eprintln!("simbricks-run: --max-restarts `{n}` is not a number");
                    std::process::exit(2);
                }));
            }
            "--heartbeat" => args.heartbeat = Some(it.next().unwrap_or_else(|| usage())),
            "--no-faults" => args.no_faults = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') => {
                if validating {
                    args.validate.push(f.to_string());
                } else if args.file.is_none() {
                    args.file = Some(f.to_string());
                } else {
                    usage();
                }
            }
            _ => usage(),
        }
    }
    if validating && args.file.is_some() {
        // `--validate` after the file name: treat the file as a target too.
        args.validate.push(args.file.take().unwrap());
    }
    if !validating && args.file.is_none() {
        usage();
    }
    args
}

// ---------------------------------------------------------------------------
// Sweep application
// ---------------------------------------------------------------------------

/// The address of a section: its path with `[[...]]` element names spliced
/// in, e.g. `[[link]] name="l0"` + `[link.impairment]` → `link.l0.impairment`.
fn section_addrs(doc: &Doc) -> Vec<Vec<String>> {
    let mut addrs = Vec::new();
    let mut last_elem: Vec<String> = Vec::new();
    for sec in &doc.sections {
        if sec.is_array {
            let name = sec
                .get("name")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string();
            last_elem = vec![sec.path[0].clone(), name];
            addrs.push(last_elem.clone());
        } else if sec.path.len() > 1 && last_elem.first() == sec.path.first() {
            // Sub-table of the most recent array element.
            let mut a = last_elem.clone();
            a.extend(sec.path[1..].iter().cloned());
            addrs.push(a);
        } else {
            addrs.push(sec.path.clone());
        }
    }
    addrs
}

fn addr_matches(addr: &[String], key: &[&str]) -> bool {
    addr.len() == key.len()
        && addr
            .iter()
            .zip(key)
            .all(|(a, k)| *k == "*" || a == k)
}

/// Apply one `key = value` override to every matching section, creating a
/// missing sub-table (e.g. `[link.impairment]`) right after its parent.
fn apply_override(doc: &mut Doc, key: &str, value: &Value) -> Result<usize, String> {
    let segs: Vec<&str> = key.split('.').collect();
    let (field, sec_key) = segs.split_last().expect("validated non-empty");
    let addrs = section_addrs(doc);
    let hits: Vec<usize> = (0..doc.sections.len())
        .filter(|i| addr_matches(&addrs[*i], sec_key))
        .collect();
    if !hits.is_empty() {
        for i in &hits {
            doc.sections[*i].set(field, value.clone());
        }
        return Ok(hits.len());
    }
    // Try to create a missing sub-table under a matching parent.
    if sec_key.len() >= 2 {
        let (sub, parent_key) = sec_key.split_last().expect("len >= 2");
        let parents: Vec<usize> = (0..doc.sections.len())
            .filter(|i| addr_matches(&addrs[*i], parent_key))
            .collect();
        if !parents.is_empty() {
            // Insert back-to-front so earlier indices stay valid.
            for &p in parents.iter().rev() {
                let parent = &doc.sections[p];
                let mut sec = simbricks_scenario::Section {
                    path: vec![parent.path[0].clone(), sub.to_string()],
                    is_array: false,
                    line: parent.line,
                    entries: Vec::new(),
                };
                sec.set(field, value.clone());
                doc.sections.insert(p + 1, sec);
            }
            return Ok(parents.len());
        }
    }
    Err(format!(
        "--sweep key `{key}` matches no section in the scenario \
         (addresses look like scenario.seed, host.<name>.mtu, \
         link.<name>.impairment.loss_permille; `*` matches any name)"
    ))
}

/// Cross-product of all sweep axes: list of (label, override) sets.
fn sweep_combos(sweeps: &[(String, Vec<Value>)]) -> Vec<Vec<(String, Value)>> {
    let mut combos: Vec<Vec<(String, Value)>> = vec![Vec::new()];
    for (key, values) in sweeps {
        let mut next = Vec::with_capacity(combos.len() * values.len());
        for combo in &combos {
            for v in values {
                let mut c = combo.clone();
                c.push((key.clone(), v.clone()));
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

fn value_display(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Array(_) => "[...]".into(),
    }
}

// ---------------------------------------------------------------------------
// JSON output (hand-rolled; no dependencies)
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct RunRecord {
    overrides: Vec<(String, Value)>,
    exec: String,
    fingerprint: u64,
    wall_s_milli: u64,
    hosts: Vec<(String, String)>,
    switches: Vec<(String, [u64; 4])>,
}

impl RunRecord {
    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("    {\n      \"overrides\": {");
        for (i, (k, v)) in self.overrides.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "\"{}\": \"{}\"",
                json_escape(k),
                json_escape(&value_display(v))
            );
        }
        let _ = write!(
            s,
            "}},\n      \"exec\": \"{}\",\n      \"fingerprint\": \"{:#018x}\",\n      \
             \"wall_ms\": {},\n      \"hosts\": {{",
            json_escape(&self.exec),
            self.fingerprint,
            self.wall_s_milli,
        );
        for (i, (name, report)) in self.hosts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n        \"{}\": \"{}\"",
                json_escape(name),
                json_escape(report)
            );
        }
        s.push_str("\n      },\n      \"switches\": {");
        for (i, (name, st)) in self.switches.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n        \"{}\": {{\"forwarded\": {}, \"dropped\": {}, \
                 \"ecn_marked\": {}, \"aqm_dropped\": {}}}",
                json_escape(name),
                st[0],
                st[1],
                st[2],
                st[3]
            );
        }
        s.push_str("\n      }\n    }");
        s
    }
}

// ---------------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------------

/// Write a recorded ring's sidecar files: metadata plus the exact scenario
/// text that produced it, so `simbricks-replay` can rebuild the experiment.
fn write_ring_sidecars(ring: &RingCli, text: &str, spec: &Scenario) -> Result<(), String> {
    let meta = RingMeta {
        name: spec.name.clone(),
        period: ring.period,
        keep: ring.keep,
        end: spec.duration.saturating_add(spec.end_margin),
    };
    meta.write_to(&ring.dir).map_err(|e| e.to_string())?;
    let path = ring.dir.join(RING_SCENARIO_FILE);
    std::fs::write(&path, text).map_err(|e| format!("write {}: {e}", path.display()))
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    text: &str,
    spec: &Scenario,
    exec_str: &str,
    transport: &str,
    overrides: Vec<(String, Value)>,
    quiet: bool,
    ring: Option<&RingCli>,
    fault_cli: &FaultCli,
) -> Result<RunRecord, String> {
    if exec_str == "dist" || exec_str.starts_with("dist:") {
        let transport = match transport {
            "tcp" => TransportKind::Tcp,
            "shm" => TransportKind::Shm,
            "auto" | "" => TransportKind::Auto,
            t => return Err(format!("unknown transport `{t}` (use tcp, shm, or auto)")),
        };
        let inner = exec_str
            .strip_prefix("dist:")
            .map(|s| {
                Execution::parse(s).ok_or_else(|| format!("bad executor after dist: `{s}`"))
            })
            .transpose()?
            .unwrap_or(Execution::Sequential);
        let faults = if fault_cli.no_faults {
            Vec::new()
        } else {
            fault_schedule(spec)
        };
        let max_restarts = fault_cli
            .max_restarts
            .or_else(|| spec.max_restarts.map(|v| v.min(u32::MAX as u64) as u32))
            .unwrap_or(if faults.is_empty() {
                0
            } else {
                faults.len() as u32 + 1
            });
        let heartbeat = fault_cli
            .heartbeat
            .or_else(|| {
                spec.heartbeat
                    .map(|t| std::time::Duration::from_nanos(t.as_ps() / 1000))
            })
            .unwrap_or(std::time::Duration::from_millis(100))
            .max(std::time::Duration::from_millis(1));
        let opts = DistOptions {
            partitions: spec.partitions(),
            scenario: text.to_string(),
            exec: inner,
            transport,
            worker_args: Vec::new(),
            checkpoint: None,
            restore_from: None,
            ring: ring.map(|r| RingOptions {
                period: r.period,
                keep: r.keep,
                dir: r.dir.clone(),
            }),
            faults,
            max_restarts,
            heartbeat,
        };
        let r = match run_distributed(&opts, &build_from_toml) {
            Ok(r) => r,
            Err(e) => {
                if let DistError::RestartsExhausted { report, .. } = &e {
                    eprintln!("{report}");
                }
                return Err(e.to_string());
            }
        };
        if let Some(ring) = ring {
            write_ring_sidecars(ring, text, spec)?;
        }
        let fp = r.merged_log().fingerprint();
        if !quiet {
            println!(
                "run {:?} exec=dist partitions={} fingerprint={fp:#018x} wall={:.3}s",
                spec.name,
                opts.partitions.len(),
                r.wall.as_secs_f64()
            );
        }
        if !r.recovery.is_trivial() {
            println!("{}", r.recovery);
        }
        return Ok(RunRecord {
            overrides,
            exec: exec_str.to_string(),
            fingerprint: fp,
            wall_s_milli: r.wall.as_millis() as u64,
            hosts: Vec::new(),
            switches: Vec::new(),
        });
    }
    if !spec.faults.is_empty() && !fault_cli.no_faults {
        return Err(format!(
            "scenario schedules {} [[fault]] declaration(s), but faults are injected by the \
             dist orchestrator: run with --exec dist or pass --no-faults",
            spec.faults.len()
        ));
    }
    let exec = Execution::parse(exec_str)
        .ok_or_else(|| format!("unknown executor `{exec_str}` (sequential, threads, sharded[:N], dist)"))?;
    let mut pb = PartitionBuilder::new_local();
    let low = lower(spec, &mut pb);
    let mut exp = pb.into_experiment();
    if let Some(ring) = ring {
        if exec == Execution::Threads {
            return Err("checkpoint rings need the sequential or sharded executor".into());
        }
        exp.set_checkpoint_ring(ring.period, ring.keep);
        exp.set_ring_dir(ring.dir.clone());
    }
    let r = exp.run(exec);
    if let Some(ring) = ring {
        write_ring_sidecars(ring, text, spec)?;
    }
    let fp = r.merged_log().fingerprint();
    let mut hosts = Vec::new();
    for (name, id) in &low.hosts {
        let h: &HostModel = r
            .model(*id)
            .ok_or_else(|| format!("host {name} has no model in results"))?;
        hosts.push((name.clone(), h.app_report()));
    }
    let mut switches = Vec::new();
    for (name, id) in &low.switches {
        let sw: &SwitchBm = r
            .model(*id)
            .ok_or_else(|| format!("switch {name} has no model in results"))?;
        let st = sw.stats();
        switches.push((
            name.clone(),
            [st.forwarded, st.dropped, st.ecn_marked, st.aqm_dropped],
        ));
    }
    if !quiet {
        let ov: Vec<String> = overrides
            .iter()
            .map(|(k, v)| format!("{k}={}", value_display(v)))
            .collect();
        println!(
            "run {:?}{} exec={exec_str} fingerprint={fp:#018x} wall={:.3}s",
            spec.name,
            if ov.is_empty() {
                String::new()
            } else {
                format!(" [{}]", ov.join(" "))
            },
            r.wall_seconds()
        );
        for (name, report) in &hosts {
            if !report.is_empty() {
                println!("  {name}: {report}");
            }
        }
        for (name, st) in &switches {
            println!(
                "  {name}: forwarded={} dropped={} ecn_marked={} aqm_dropped={}",
                st[0], st[1], st[2], st[3]
            );
        }
    }
    Ok(RunRecord {
        overrides,
        exec: exec_str.to_string(),
        fingerprint: fp,
        wall_s_milli: (r.wall_seconds() * 1000.0) as u64,
        hosts,
        switches,
    })
}

fn main() -> ExitCode {
    // Must run before anything else: dist workers re-exec this binary.
    maybe_worker(&build_from_toml);
    let args = parse_args();

    if !args.validate.is_empty() {
        let mut ok = true;
        for file in &args.validate {
            let text = match std::fs::read_to_string(file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{file}: cannot read: {e}");
                    ok = false;
                    continue;
                }
            };
            match Scenario::from_toml_str(&text) {
                Ok(s) => {
                    let hosts = s.hosts_count();
                    println!(
                        "{file}: OK ({hosts} hosts, {} switches, {} links, {} partition(s))",
                        s.nodes.len() - hosts,
                        s.links.len(),
                        s.partitions().len()
                    );
                }
                Err(e) => {
                    eprintln!("{file}: {e}");
                    ok = false;
                }
            }
        }
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let file = args.file.as_deref().expect("checked in parse_args");
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("simbricks-run: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base_doc = match Doc::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simbricks-run: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let combos = sweep_combos(&args.sweeps);
    if args.ring_dir.is_some() && combos.len() > 1 {
        eprintln!(
            "simbricks-run: --checkpoint-ring records exactly one run; \
             narrow the --sweep to a single value"
        );
        return ExitCode::FAILURE;
    }

    let fault_cli = FaultCli {
        max_restarts: args.max_restarts,
        heartbeat: match &args.heartbeat {
            None => None,
            Some(h) => match parse_duration(h) {
                Ok(d) => Some(std::time::Duration::from_nanos(d.as_ps() / 1000)),
                Err(e) => {
                    eprintln!("simbricks-run: --heartbeat: {e}");
                    return ExitCode::FAILURE;
                }
            },
        },
        no_faults: args.no_faults,
    };

    let mut records = Vec::new();
    let mut scen_name = String::new();
    for combo in combos {
        let mut doc = base_doc.clone();
        for (key, value) in &combo {
            if let Err(e) = apply_override(&mut doc, key, value) {
                eprintln!("simbricks-run: {e}");
                return ExitCode::FAILURE;
            }
        }
        if args.ring_dir.is_some() {
            // Replay needs the event logs: force logging on (the override
            // lands in the scenario text stored with the ring, so replays
            // rebuild the identical experiment).
            if let Err(e) = apply_override(&mut doc, "scenario.log", &Value::Bool(true)) {
                eprintln!("simbricks-run: {e}");
                return ExitCode::FAILURE;
            }
        }
        let run_text = doc.to_toml_string();
        let spec = match Scenario::from_toml_str(&run_text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("simbricks-run: {file} (after sweep overrides): {e}");
                return ExitCode::FAILURE;
            }
        };
        scen_name = spec.name.clone();
        let exec_str = args.exec.clone().unwrap_or_else(|| spec.exec.clone());
        let transport = args
            .transport
            .clone()
            .unwrap_or_else(|| spec.transport.clone());
        let ring = match &args.ring_dir {
            None => None,
            Some(dir) => {
                let period = match &args.ring_period {
                    Some(p) => match parse_duration(p) {
                        Ok(d) => d,
                        Err(e) => {
                            eprintln!("simbricks-run: --ring-period: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    // Default: eight entries across the scenario's duration.
                    None => SimTime::from_ps((spec.duration.as_ps() / 8).max(1)),
                };
                Some(RingCli {
                    dir: std::path::PathBuf::from(dir),
                    period,
                    keep: args.ring_keep,
                })
            }
        };
        match run_one(
            &run_text,
            &spec,
            &exec_str,
            &transport,
            combo,
            args.quiet,
            ring.as_ref(),
            &fault_cli,
        ) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                eprintln!("simbricks-run: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &args.json {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"scenario\": \"{}\",\n  \"file\": \"{}\",\n  \"runs\": [\n",
            json_escape(&scen_name),
            json_escape(file)
        );
        for (i, r) in records.iter().enumerate() {
            out.push_str(&r.to_json());
            out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        if path == "-" {
            print!("{out}");
        } else if let Err(e) = std::fs::write(path, out) {
            eprintln!("simbricks-run: write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
