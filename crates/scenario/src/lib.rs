//! # simbricks-scenario
//!
//! Declarative scenario layer: a dependency-free TOML format describing a
//! full SimBricks experiment — hosts (with apps), switches (with AQM),
//! links (with latency and deterministic impairment models), partitions,
//! seeds, and run options — plus the lowering that turns a scenario into a
//! [`simbricks_runner::PartitionBuilder`]/[`simbricks_runner::Experiment`]
//! build, so the same file runs unchanged on every executor (sequential,
//! threads, sharded, distributed over TCP or shared memory).
//!
//! The layer is split cleanly:
//!
//! * [`toml`] — a minimal, order-preserving TOML subset parser (no external
//!   crates; section order in the file is component build order),
//! * [`spec`] — typed scenario model with schema validation and actionable,
//!   line-numbered errors,
//! * [`lower()`] — lowering onto the partition builder, including per-link
//!   impairment seeds and per-port AQM overrides.
//!
//! The TOML *text itself* is the opaque scenario string shipped to
//! distributed workers, so [`lower::build_from_toml`] is a drop-in
//! `BuildFn` for [`simbricks_runner::maybe_worker`] /
//! [`simbricks_runner::run_distributed`].

#![deny(missing_docs)]

pub mod lower;
pub mod spec;
pub mod toml;

pub use lower::{build_from_toml, fault_schedule, lower, Lowered};
pub use spec::{
    parse_bandwidth, parse_duration, AppSpec, AqmSpec, FaultDecl, FaultDeclKind, HostSpec,
    ImpairmentSpec, LinkSpec, Node, Scenario, ScenarioError, SwitchSpec,
};
pub use toml::{Doc, Section, TomlError, Value};
