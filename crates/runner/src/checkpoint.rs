//! Checkpoint file format: container for the per-component snapshots of one
//! experiment (or one distributed partition).
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   "SBCK"                      4 bytes
//! version u16 (currently 4)           rejected if unknown
//! flags   u16 (reserved, must be 0)
//! name    u32-prefixed UTF-8          experiment name (validated on restore)
//! time    u64                         checkpoint virtual time [ps]
//! count   u64                         number of components
//! per component:
//!   name  u32-prefixed UTF-8          component name
//!   blob  u32-prefixed bytes          kernel snapshot ++ model snapshot
//! checksum u64                        FNV-1a over every preceding byte
//! ```
//!
//! Corrupt, truncated, or version-mismatched files fail decoding with a
//! descriptive [`SnapError`] — never a panic or silent misrestore. The
//! trailing checksum catches bit flips that happen to decode structurally.

use std::path::Path;

use simbricks_base::snap::{fnv1a, SnapError, SnapReader, SnapResult, SnapWriter};
use simbricks_base::SimTime;

/// File magic: "SBCK" (SimBricks ChecKpoint).
pub const CKPT_MAGIC: [u8; 4] = *b"SBCK";
/// Format version this build writes and reads. Bumped to 2 when the
/// pooled-buffer work extended the `KernelStats` snapshot encoding from 13
/// to 16 `u64`s, and to 3 when hierarchical sync extended the per-port sync
/// state (`last_promise` after the adaptive interval, a seventh `PortStats`
/// counter): v2 files would pass the magic check and then misparse, so they
/// are rejected cleanly here instead.
// Version 4: TcpConn RTT estimator state is integer picoseconds
// (u64 srtt/rttvar), replacing the former f64 nanosecond fields.
// Version 5: per-port link-impairment state (PRNG, Gilbert–Elliott chain,
// reorder holdback slot, counters) appended to the SyncPort snapshot, and
// per-egress-queue AQM state (enqueue timestamps, CoDel/PI controller
// variables) appended to the switch snapshot.
pub const CKPT_VERSION: u16 = 5;

/// A decoded checkpoint container.
#[derive(Debug)]
pub struct CheckpointFile {
    /// Experiment name recorded at save time.
    pub name: String,
    /// Virtual time the experiment was quiesced at.
    pub at: SimTime,
    /// Per-component (name, state blob) in experiment build order.
    pub components: Vec<(String, Vec<u8>)>,
}

impl CheckpointFile {
    /// Encode the container to bytes (checksum appended).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.raw(&CKPT_MAGIC);
        w.u16(CKPT_VERSION);
        w.u16(0);
        w.str(&self.name);
        w.time(self.at);
        w.usize(self.components.len());
        for (name, blob) in &self.components {
            w.str(name);
            w.bytes(blob);
        }
        let mut out = w.into_vec();
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode and validate a container from bytes.
    pub fn decode(buf: &[u8]) -> SnapResult<CheckpointFile> {
        if buf.len() < CKPT_MAGIC.len() + 2 {
            return Err(SnapError::Truncated);
        }
        if buf[..4] != CKPT_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != CKPT_VERSION {
            return Err(SnapError::Version {
                found: version,
                expected: CKPT_VERSION,
            });
        }
        if buf.len() < 8 + 6 {
            return Err(SnapError::Truncated);
        }
        let (body, trailer) = buf.split_at(buf.len() - 8);
        let sum = u64::from_le_bytes(trailer.try_into().unwrap());
        if fnv1a(body) != sum {
            return Err(SnapError::Corrupt(
                "checksum mismatch (file damaged or partially written)".into(),
            ));
        }
        let mut r = SnapReader::new(&body[6..]);
        let flags = r.u16()?;
        if flags != 0 {
            return Err(SnapError::Corrupt(format!("unknown flags {flags:#x}")));
        }
        let name = r.str()?;
        let at = r.time()?;
        let count = r.usize()?;
        if count > 1 << 20 {
            return Err(SnapError::Corrupt(format!("absurd component count {count}")));
        }
        let mut components = Vec::with_capacity(count);
        for _ in 0..count {
            let cname = r.str()?;
            let blob = r.bytes()?;
            components.push((cname, blob));
        }
        if !r.is_empty() {
            return Err(SnapError::Corrupt(format!(
                "{} trailing bytes after last component",
                r.remaining()
            )));
        }
        Ok(CheckpointFile {
            name,
            at,
            components,
        })
    }

    /// Write the container to `path` (atomically, via [`write_blob`]).
    pub fn write_to(&self, path: &Path) -> SnapResult<()> {
        write_blob(path, &self.encode())
    }

    /// Read and validate a container from `path`.
    pub fn read_from(path: &Path) -> SnapResult<CheckpointFile> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapError::Io(format!("read {}: {e}", path.display())))?;
        Self::decode(&bytes)
    }
}

/// Write an already-encoded checkpoint container to `path` via a temp file
/// plus rename, so a crash or full disk mid-write never destroys an
/// existing good checkpoint with a truncated one.
pub fn write_blob(path: &Path, bytes: &[u8]) -> SnapResult<()> {
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, bytes)
        .map_err(|e| SnapError::Io(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| SnapError::Io(format!("rename to {}: {e}", path.display())))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointFile {
        CheckpointFile {
            name: "exp".into(),
            at: SimTime::from_ms(3),
            components: vec![
                ("a.host".into(), vec![1, 2, 3]),
                ("a.nic".into(), vec![]),
                ("switch".into(), vec![9; 100]),
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let bytes = f.encode();
        let back = CheckpointFile::decode(&bytes).unwrap();
        assert_eq!(back.name, "exp");
        assert_eq!(back.at, SimTime::from_ms(3));
        assert_eq!(back.components, f.components);
    }

    /// Table-driven negative tests: every class of damaged input must fail
    /// with the right, descriptive error — no panics, no silent acceptance.
    #[test]
    fn damaged_inputs_fail_with_clear_errors() {
        let good = sample().encode();

        struct Case {
            name: &'static str,
            make: fn(&[u8]) -> Vec<u8>,
            check: fn(&SnapError) -> bool,
        }
        let cases = [
            Case {
                name: "empty file",
                make: |_| Vec::new(),
                check: |e| matches!(e, SnapError::Truncated),
            },
            Case {
                name: "wrong magic",
                make: |g| {
                    let mut b = g.to_vec();
                    b[0] = b'X';
                    b
                },
                check: |e| matches!(e, SnapError::BadMagic),
            },
            Case {
                name: "future version",
                make: |g| {
                    let mut b = g.to_vec();
                    b[4] = 0xff;
                    b[5] = 0x7f;
                    b
                },
                check: |e| matches!(e, SnapError::Version { found: 0x7fff, expected: CKPT_VERSION }),
            },
            Case {
                // The previous on-disk format: its per-port sync state lacks
                // the hierarchical-sync fields, so restoring it would
                // misparse. It must be rejected by the version gate alone,
                // before any body parsing happens.
                name: "version-2 checkpoint from an older build",
                make: |g| {
                    let mut b = g.to_vec();
                    b[4] = 2;
                    b[5] = 0;
                    b
                },
                check: |e| matches!(e, SnapError::Version { found: 2, expected: CKPT_VERSION }),
            },
            Case {
                // The immediately preceding format: a v4 SyncPort snapshot
                // ends after the stats block, with no impairment state, and a
                // v4 switch snapshot lacks AQM fields. Those bodies would
                // misparse under the current decoder, so the version gate
                // must reject the file outright.
                name: "version-4 checkpoint from an older build",
                make: |g| {
                    let mut b = g.to_vec();
                    b[4] = 4;
                    b[5] = 0;
                    b
                },
                check: |e| matches!(e, SnapError::Version { found: 4, expected: CKPT_VERSION }),
            },
            Case {
                name: "truncated mid-component",
                make: |g| g[..g.len() / 2].to_vec(),
                check: |e| {
                    // Cutting the file also cuts the checksum; either way a
                    // clean error, never a panic.
                    matches!(e, SnapError::Truncated | SnapError::Corrupt(_))
                },
            },
            Case {
                name: "checksum trailer cut off",
                make: |g| g[..g.len() - 8].to_vec(),
                check: |e| matches!(e, SnapError::Truncated | SnapError::Corrupt(_)),
            },
            Case {
                name: "single flipped payload bit",
                make: |g| {
                    let mut b = g.to_vec();
                    let mid = b.len() / 2;
                    b[mid] ^= 0x10;
                    b
                },
                check: |e| matches!(e, SnapError::Corrupt(_)),
            },
            Case {
                name: "flipped checksum",
                make: |g| {
                    let mut b = g.to_vec();
                    let last = b.len() - 1;
                    b[last] ^= 1;
                    b
                },
                check: |e| matches!(e, SnapError::Corrupt(_)),
            },
            Case {
                name: "nonzero reserved flags",
                make: |g| {
                    // Rebuild with bad flags and a matching checksum, so the
                    // flag check itself is what fires.
                    let mut body = g[..g.len() - 8].to_vec();
                    body[6] = 1;
                    let sum = fnv1a(&body);
                    body.extend_from_slice(&sum.to_le_bytes());
                    body
                },
                check: |e| matches!(e, SnapError::Corrupt(_)),
            },
        ];
        for case in &cases {
            let damaged = (case.make)(&good);
            match CheckpointFile::decode(&damaged) {
                Ok(_) => panic!("{}: damaged input decoded successfully", case.name),
                Err(e) => assert!(
                    (case.check)(&e),
                    "{}: unexpected error {e:?}",
                    case.name
                ),
            }
        }
    }

    #[test]
    fn read_from_missing_file_is_io_error() {
        let e = CheckpointFile::read_from(Path::new("/nonexistent/nope.ckpt")).unwrap_err();
        assert!(matches!(e, SnapError::Io(_)));
    }
}
