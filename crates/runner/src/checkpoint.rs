//! Checkpoint file format: container for the per-component snapshots of one
//! experiment (or one distributed partition).
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   "SBCK"                      4 bytes
//! version u16 (currently 6)           rejected if unknown
//! flags   u16 (reserved, must be 0)
//! name    u32-prefixed UTF-8          experiment name (validated on restore)
//! time    u64                         checkpoint virtual time [ps]
//! count   u64                         number of components
//! per component:
//!   name  u32-prefixed UTF-8          component name
//!   blob  u32-prefixed bytes          kernel snapshot ++ model snapshot
//! checksum u64                        FNV-1a over every preceding byte
//! ```
//!
//! Corrupt, truncated, or version-mismatched files fail decoding with a
//! descriptive [`SnapError`] — never a panic or silent misrestore. The
//! trailing checksum catches bit flips that happen to decode structurally.

use std::path::Path;

use simbricks_base::snap::{fnv1a, SnapError, SnapReader, SnapResult, SnapWriter};
use simbricks_base::SimTime;

/// File magic: "SBCK" (SimBricks ChecKpoint).
pub const CKPT_MAGIC: [u8; 4] = *b"SBCK";
/// Format version this build writes and reads. Bumped to 2 when the
/// pooled-buffer work extended the `KernelStats` snapshot encoding from 13
/// to 16 `u64`s, and to 3 when hierarchical sync extended the per-port sync
/// state (`last_promise` after the adaptive interval, a seventh `PortStats`
/// counter): v2 files would pass the magic check and then misparse, so they
/// are rejected cleanly here instead.
// Version 4: TcpConn RTT estimator state is integer picoseconds
// (u64 srtt/rttvar), replacing the former f64 nanosecond fields.
// Version 5: per-port link-impairment state (PRNG, Gilbert–Elliott chain,
// reorder holdback slot, counters) appended to the SyncPort snapshot, and
// per-egress-queue AQM state (enqueue timestamps, CoDel/PI controller
// variables) appended to the switch snapshot.
// Version 6: the EventLog snapshot gained a leading mode tag for the
// fingerprint-only log (per-epoch FNV accumulators replace materialized
// entries when active), shifting every field after it.
pub const CKPT_VERSION: u16 = 6;

/// A decoded checkpoint container.
#[derive(Debug)]
pub struct CheckpointFile {
    /// Experiment name recorded at save time.
    pub name: String,
    /// Virtual time the experiment was quiesced at.
    pub at: SimTime,
    /// Per-component (name, state blob) in experiment build order.
    pub components: Vec<(String, Vec<u8>)>,
}

impl CheckpointFile {
    /// Encode the container to bytes (checksum appended).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.raw(&CKPT_MAGIC);
        w.u16(CKPT_VERSION);
        w.u16(0);
        w.str(&self.name);
        w.time(self.at);
        w.usize(self.components.len());
        for (name, blob) in &self.components {
            w.str(name);
            w.bytes(blob);
        }
        let mut out = w.into_vec();
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode and validate a container from bytes.
    pub fn decode(buf: &[u8]) -> SnapResult<CheckpointFile> {
        if buf.len() < CKPT_MAGIC.len() + 2 {
            return Err(SnapError::Truncated);
        }
        if buf[..4] != CKPT_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != CKPT_VERSION {
            return Err(SnapError::Version {
                found: version,
                expected: CKPT_VERSION,
            });
        }
        if buf.len() < 8 + 6 {
            return Err(SnapError::Truncated);
        }
        let (body, trailer) = buf.split_at(buf.len() - 8);
        let sum = u64::from_le_bytes(trailer.try_into().unwrap());
        if fnv1a(body) != sum {
            return Err(SnapError::Corrupt(
                "checksum mismatch (file damaged or partially written)".into(),
            ));
        }
        let mut r = SnapReader::new(&body[6..]);
        let flags = r.u16()?;
        if flags != 0 {
            return Err(SnapError::Corrupt(format!("unknown flags {flags:#x}")));
        }
        let name = r.str()?;
        let at = r.time()?;
        let count = r.usize()?;
        if count > 1 << 20 {
            return Err(SnapError::Corrupt(format!("absurd component count {count}")));
        }
        let mut components = Vec::with_capacity(count);
        for _ in 0..count {
            let cname = r.str()?;
            let blob = r.bytes()?;
            components.push((cname, blob));
        }
        if !r.is_empty() {
            return Err(SnapError::Corrupt(format!(
                "{} trailing bytes after last component",
                r.remaining()
            )));
        }
        Ok(CheckpointFile {
            name,
            at,
            components,
        })
    }

    /// Write the container to `path` (atomically, via [`write_blob`]).
    pub fn write_to(&self, path: &Path) -> SnapResult<()> {
        write_blob(path, &self.encode())
    }

    /// Read and validate a container from `path`.
    pub fn read_from(path: &Path) -> SnapResult<CheckpointFile> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapError::Io(format!("read {}: {e}", path.display())))?;
        Self::decode(&bytes)
    }

    /// Merge per-partition containers (same experiment, same quiesce time)
    /// into one whole-experiment container whose components follow `order` —
    /// the global build order recorded at partition discovery. The result is
    /// byte-identical to what a single-process run of the same experiment
    /// would have checkpointed, so distributed ring entries restore through
    /// the ordinary local path.
    pub fn merge(parts: &[CheckpointFile], order: &[String]) -> SnapResult<CheckpointFile> {
        let first = parts
            .first()
            .ok_or_else(|| SnapError::Corrupt("merge of zero checkpoint parts".into()))?;
        let mut by_name: std::collections::BTreeMap<&str, &[u8]> = std::collections::BTreeMap::new();
        for p in parts {
            if p.name != first.name || p.at != first.at {
                return Err(SnapError::Corrupt(format!(
                    "checkpoint parts disagree: ({}, {}) vs ({}, {})",
                    p.name,
                    p.at.as_ps(),
                    first.name,
                    first.at.as_ps()
                )));
            }
            for (cname, blob) in &p.components {
                if by_name.insert(cname, blob).is_some() {
                    return Err(SnapError::Corrupt(format!(
                        "component {cname} appears in more than one partition"
                    )));
                }
            }
        }
        let mut components = Vec::with_capacity(order.len());
        for name in order {
            match by_name.remove(name.as_str()) {
                Some(blob) => components.push((name.clone(), blob.to_vec())),
                None => {
                    return Err(SnapError::Corrupt(format!(
                        "component {name} missing from checkpoint parts"
                    )))
                }
            }
        }
        if let Some((extra, _)) = by_name.into_iter().next() {
            return Err(SnapError::Corrupt(format!(
                "component {extra} not in the experiment's build order"
            )));
        }
        Ok(CheckpointFile {
            name: first.name.clone(),
            at: first.at,
            components,
        })
    }
}

/// Write an already-encoded checkpoint container to `path` via a temp file
/// plus rename, so a crash or full disk mid-write never destroys an
/// existing good checkpoint with a truncated one. If either step fails, the
/// temp file is removed — a failed save must not leak `.tmp` litter into
/// the checkpoint directory.
pub fn write_blob(path: &Path, bytes: &[u8]) -> SnapResult<()> {
    write_blob_with(path, bytes, &mut |tmp, bytes| std::fs::write(tmp, bytes))
}

/// [`write_blob`] with an injectable writer for the temp file, so tests can
/// simulate a full disk. On writer error *or* rename error the temp file is
/// deleted before the error propagates.
pub fn write_blob_with(
    path: &Path,
    bytes: &[u8],
    write: &mut dyn FnMut(&Path, &[u8]) -> std::io::Result<()>,
) -> SnapResult<()> {
    let tmp = path.with_extension("ckpt.tmp");
    if let Err(e) = write(&tmp, bytes) {
        let _ = std::fs::remove_file(&tmp);
        return Err(SnapError::Io(format!("write {}: {e}", tmp.display())));
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(SnapError::Io(format!("rename to {}: {e}", path.display())));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Checkpoint rings
// ---------------------------------------------------------------------------

/// Metadata file name inside a checkpoint-ring directory.
pub const RING_META_FILE: &str = "RING.meta";
/// Scenario text file name inside a checkpoint-ring directory (written by
/// the CLI layer; the replay tool rebuilds the experiment from it).
pub const RING_SCENARIO_FILE: &str = "scenario.toml";

/// Metadata describing a checkpoint-ring directory: a bounded sequence of
/// SBCK containers `ck-<time_ps>.ckpt` snapshotted every `period` of virtual
/// time, of which only the newest `keep` survive (0 = keep all).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingMeta {
    /// Experiment name (validated against the containers on open).
    pub name: String,
    /// Virtual time between ring entries.
    pub period: SimTime,
    /// Newest entries kept; 0 keeps every entry.
    pub keep: usize,
    /// Experiment end time — bounds the epoch count during bisection.
    pub end: SimTime,
}

impl RingMeta {
    /// Write the metadata file into `dir` (line-oriented `key=value` text).
    pub fn write_to(&self, dir: &Path) -> SnapResult<()> {
        let text = format!(
            "simbricks-ring v1\nname={}\nperiod_ps={}\nkeep={}\nend_ps={}\n",
            self.name,
            self.period.as_ps(),
            self.keep,
            self.end.as_ps()
        );
        let path = dir.join(RING_META_FILE);
        std::fs::write(&path, text)
            .map_err(|e| SnapError::Io(format!("write {}: {e}", path.display())))
    }

    /// Read and validate the metadata file from `dir`.
    pub fn read_from(dir: &Path) -> SnapResult<RingMeta> {
        let path = dir.join(RING_META_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| SnapError::Io(format!("read {}: {e}", path.display())))?;
        let mut lines = text.lines();
        if lines.next() != Some("simbricks-ring v1") {
            return Err(SnapError::Corrupt(format!(
                "{}: not a simbricks-ring v1 metadata file",
                path.display()
            )));
        }
        let mut name = None;
        let mut period = None;
        let mut keep = None;
        let mut end = None;
        for line in lines {
            let Some((k, v)) = line.split_once('=') else {
                continue;
            };
            match k {
                "name" => name = Some(v.to_string()),
                "period_ps" => period = v.parse::<u64>().ok().map(SimTime::from_ps),
                "keep" => keep = v.parse::<usize>().ok(),
                "end_ps" => end = v.parse::<u64>().ok().map(SimTime::from_ps),
                _ => {}
            }
        }
        match (name, period, keep, end) {
            (Some(name), Some(period), Some(keep), Some(end)) if period > SimTime::ZERO => {
                Ok(RingMeta {
                    name,
                    period,
                    keep,
                    end,
                })
            }
            _ => Err(SnapError::Corrupt(format!(
                "{}: missing or invalid ring metadata fields",
                path.display()
            ))),
        }
    }
}

/// Path of the ring entry checkpointed at virtual time `t`.
pub fn ring_entry_path(dir: &Path, t: SimTime) -> std::path::PathBuf {
    dir.join(format!("ck-{:020}.ckpt", t.as_ps()))
}

/// All ring entries in `dir`, sorted by checkpoint time (directory order is
/// not deterministic, the explicit sort is what makes replay deterministic).
pub fn ring_entries(dir: &Path) -> SnapResult<Vec<(SimTime, std::path::PathBuf)>> {
    let rd = std::fs::read_dir(dir)
        .map_err(|e| SnapError::Io(format!("read dir {}: {e}", dir.display())))?;
    let mut out = Vec::new();
    for ent in rd {
        let ent = ent.map_err(|e| SnapError::Io(format!("read dir {}: {e}", dir.display())))?;
        let fname = ent.file_name();
        let Some(fname) = fname.to_str() else {
            continue;
        };
        if let Some(ps) = fname
            .strip_prefix("ck-")
            .and_then(|s| s.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((SimTime::from_ps(ps), ent.path()));
        }
    }
    out.sort_by_key(|(t, _)| *t);
    Ok(out)
}

/// Pure pruning policy: given the (sorted or unsorted) checkpoint times
/// currently present and the `keep` bound, return the times to delete —
/// everything but the newest `keep`. `keep == 0` keeps all.
pub fn ring_prune_plan(times: &[SimTime], keep: usize) -> Vec<SimTime> {
    if keep == 0 || times.len() <= keep {
        return Vec::new();
    }
    let mut sorted = times.to_vec();
    sorted.sort();
    sorted.truncate(times.len() - keep);
    sorted
}

/// Apply [`ring_prune_plan`] to the entries on disk, returning the removed
/// paths.
pub fn prune_ring(dir: &Path, keep: usize) -> SnapResult<Vec<std::path::PathBuf>> {
    let entries = ring_entries(dir)?;
    let times: Vec<SimTime> = entries.iter().map(|(t, _)| *t).collect();
    let doomed = ring_prune_plan(&times, keep);
    let mut removed = Vec::new();
    for t in doomed {
        let path = ring_entry_path(dir, t);
        std::fs::remove_file(&path)
            .map_err(|e| SnapError::Io(format!("remove {}: {e}", path.display())))?;
        removed.push(path);
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointFile {
        CheckpointFile {
            name: "exp".into(),
            at: SimTime::from_ms(3),
            components: vec![
                ("a.host".into(), vec![1, 2, 3]),
                ("a.nic".into(), vec![]),
                ("switch".into(), vec![9; 100]),
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let bytes = f.encode();
        let back = CheckpointFile::decode(&bytes).unwrap();
        assert_eq!(back.name, "exp");
        assert_eq!(back.at, SimTime::from_ms(3));
        assert_eq!(back.components, f.components);
    }

    /// Table-driven negative tests: every class of damaged input must fail
    /// with the right, descriptive error — no panics, no silent acceptance.
    #[test]
    fn damaged_inputs_fail_with_clear_errors() {
        let good = sample().encode();

        struct Case {
            name: &'static str,
            make: fn(&[u8]) -> Vec<u8>,
            check: fn(&SnapError) -> bool,
        }
        let cases = [
            Case {
                name: "empty file",
                make: |_| Vec::new(),
                check: |e| matches!(e, SnapError::Truncated),
            },
            Case {
                name: "wrong magic",
                make: |g| {
                    let mut b = g.to_vec();
                    b[0] = b'X';
                    b
                },
                check: |e| matches!(e, SnapError::BadMagic),
            },
            Case {
                name: "future version",
                make: |g| {
                    let mut b = g.to_vec();
                    b[4] = 0xff;
                    b[5] = 0x7f;
                    b
                },
                check: |e| matches!(e, SnapError::Version { found: 0x7fff, expected: CKPT_VERSION }),
            },
            Case {
                // The previous on-disk format: its per-port sync state lacks
                // the hierarchical-sync fields, so restoring it would
                // misparse. It must be rejected by the version gate alone,
                // before any body parsing happens.
                name: "version-2 checkpoint from an older build",
                make: |g| {
                    let mut b = g.to_vec();
                    b[4] = 2;
                    b[5] = 0;
                    b
                },
                check: |e| matches!(e, SnapError::Version { found: 2, expected: CKPT_VERSION }),
            },
            Case {
                // The immediately preceding format: a v4 SyncPort snapshot
                // ends after the stats block, with no impairment state, and a
                // v4 switch snapshot lacks AQM fields. Those bodies would
                // misparse under the current decoder, so the version gate
                // must reject the file outright.
                name: "version-4 checkpoint from an older build",
                make: |g| {
                    let mut b = g.to_vec();
                    b[4] = 4;
                    b[5] = 0;
                    b
                },
                check: |e| matches!(e, SnapError::Version { found: 4, expected: CKPT_VERSION }),
            },
            Case {
                // v5 is the format immediately before the event-log mode tag
                // was added: a v5 EventLog snapshot starts directly with the
                // enabled flag, so the current decoder would read its first
                // byte as a mode tag and misparse. The version gate must
                // reject it before any body decoding.
                name: "version-5 checkpoint from an older build",
                make: |g| {
                    let mut b = g.to_vec();
                    b[4] = 5;
                    b[5] = 0;
                    b
                },
                check: |e| matches!(e, SnapError::Version { found: 5, expected: CKPT_VERSION }),
            },
            Case {
                name: "truncated mid-component",
                make: |g| g[..g.len() / 2].to_vec(),
                check: |e| {
                    // Cutting the file also cuts the checksum; either way a
                    // clean error, never a panic.
                    matches!(e, SnapError::Truncated | SnapError::Corrupt(_))
                },
            },
            Case {
                name: "checksum trailer cut off",
                make: |g| g[..g.len() - 8].to_vec(),
                check: |e| matches!(e, SnapError::Truncated | SnapError::Corrupt(_)),
            },
            Case {
                name: "single flipped payload bit",
                make: |g| {
                    let mut b = g.to_vec();
                    let mid = b.len() / 2;
                    b[mid] ^= 0x10;
                    b
                },
                check: |e| matches!(e, SnapError::Corrupt(_)),
            },
            Case {
                name: "flipped checksum",
                make: |g| {
                    let mut b = g.to_vec();
                    let last = b.len() - 1;
                    b[last] ^= 1;
                    b
                },
                check: |e| matches!(e, SnapError::Corrupt(_)),
            },
            Case {
                name: "nonzero reserved flags",
                make: |g| {
                    // Rebuild with bad flags and a matching checksum, so the
                    // flag check itself is what fires.
                    let mut body = g[..g.len() - 8].to_vec();
                    body[6] = 1;
                    let sum = fnv1a(&body);
                    body.extend_from_slice(&sum.to_le_bytes());
                    body
                },
                check: |e| matches!(e, SnapError::Corrupt(_)),
            },
        ];
        for case in &cases {
            let damaged = (case.make)(&good);
            match CheckpointFile::decode(&damaged) {
                Ok(_) => panic!("{}: damaged input decoded successfully", case.name),
                Err(e) => assert!(
                    (case.check)(&e),
                    "{}: unexpected error {e:?}",
                    case.name
                ),
            }
        }
    }

    /// Fuzz-ish hardening sweep: decode must return `Err` — never panic and
    /// never silently accept — for *every* truncation length (a torn write
    /// can stop at any byte) and for a single flipped bit at *every* byte
    /// position (bit rot anywhere in the blob). Exhaustive rather than
    /// sampled: the container is small and the sweep is the proof that no
    /// byte position escapes the magic/version gates or the FNV-1a trailer.
    #[test]
    fn every_truncation_and_bit_flip_is_rejected_cleanly() {
        let good = sample().encode();
        assert!(CheckpointFile::decode(&good).is_ok());
        for n in 0..good.len() {
            assert!(
                CheckpointFile::decode(&good[..n]).is_err(),
                "truncation to {n}/{} bytes decoded successfully",
                good.len()
            );
        }
        for i in 0..good.len() {
            for bit in 0..8 {
                let mut b = good.clone();
                b[i] ^= 1 << bit;
                assert!(
                    CheckpointFile::decode(&b).is_err(),
                    "flip of bit {bit} at byte {i}/{} decoded successfully",
                    good.len()
                );
            }
        }
    }

    /// The same classes of damage applied to a checkpoint-ring entry on
    /// disk: loading must surface a typed error, so ring recovery can reject
    /// the entry and fall back to an older slot instead of crashing.
    #[test]
    fn damaged_ring_entries_on_disk_load_as_errors() {
        let dir = tmpdir("ring-damage");
        let at = SimTime::from_ms(2);
        let path = ring_entry_path(&dir, at);
        let good = sample().encode();

        write_blob(&path, &good).unwrap();
        assert!(CheckpointFile::read_from(&path).is_ok());

        // Torn write: half the entry.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(
            CheckpointFile::read_from(&path),
            Err(SnapError::Truncated | SnapError::Corrupt(_))
        ));

        // Bit rot in the middle.
        let mut rotted = good.clone();
        let mid = rotted.len() / 2;
        rotted[mid] ^= 0x10;
        std::fs::write(&path, &rotted).unwrap();
        assert!(matches!(
            CheckpointFile::read_from(&path),
            Err(SnapError::Corrupt(_))
        ));

        // Zero-length entry (crash between create and write).
        std::fs::write(&path, []).unwrap();
        assert!(matches!(
            CheckpointFile::read_from(&path),
            Err(SnapError::Truncated)
        ));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_from_missing_file_is_io_error() {
        let e = CheckpointFile::read_from(Path::new("/nonexistent/nope.ckpt")).unwrap_err();
        assert!(matches!(e, SnapError::Io(_)));
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("sbck-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Regression: a failed save (full disk, permission error) must remove
    /// the temp file it created — a half-written `.tmp` next to good ring
    /// entries used to survive the error path.
    #[test]
    fn failed_write_cleans_up_temp_file() {
        let dir = tmpdir("leak");
        let path = dir.join("state.ckpt");

        // Full-disk-simulating writer: writes a partial prefix, then fails.
        let mut full_disk = |tmp: &Path, bytes: &[u8]| -> std::io::Result<()> {
            std::fs::write(tmp, &bytes[..bytes.len() / 2])?;
            Err(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "no space left on device",
            ))
        };
        let err = write_blob_with(&path, &[7u8; 64], &mut full_disk).unwrap_err();
        assert!(matches!(err, SnapError::Io(_)), "unexpected error {err:?}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(
            leftovers.is_empty(),
            "temp file leaked on the error path: {leftovers:?}"
        );

        // Rename failure (target directory vanished) also cleans up.
        let gone = dir.join("sub").join("state.ckpt");
        let err = write_blob_with(&gone, &[7u8; 64], &mut |tmp, bytes| {
            // The temp path is also under the missing dir; write it next to
            // the test dir instead so only the rename fails.
            let _ = tmp;
            std::fs::write(dir.join("sub.ckpt.tmp"), bytes)
        })
        .unwrap_err();
        assert!(matches!(err, SnapError::Io(_)));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_meta_roundtrip_and_rejects_garbage() {
        let dir = tmpdir("meta");
        let meta = RingMeta {
            name: "exp".into(),
            period: SimTime::from_us(500),
            keep: 4,
            end: SimTime::from_ms(6),
        };
        meta.write_to(&dir).unwrap();
        assert_eq!(RingMeta::read_from(&dir).unwrap(), meta);

        std::fs::write(dir.join(RING_META_FILE), "not a ring\n").unwrap();
        assert!(matches!(
            RingMeta::read_from(&dir),
            Err(SnapError::Corrupt(_))
        ));
        std::fs::write(dir.join(RING_META_FILE), "simbricks-ring v1\nname=x\n").unwrap();
        assert!(matches!(
            RingMeta::read_from(&dir),
            Err(SnapError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_entries_sorted_and_pruned_to_newest_keep() {
        let dir = tmpdir("ring");
        // Write entries out of order; a stray file must be ignored.
        for ms in [5u64, 1, 3, 2, 4] {
            std::fs::write(ring_entry_path(&dir, SimTime::from_ms(ms)), b"x").unwrap();
        }
        std::fs::write(dir.join("README"), b"not a checkpoint").unwrap();
        let entries = ring_entries(&dir).unwrap();
        let times: Vec<u64> = entries.iter().map(|(t, _)| t.as_ps() / 1_000_000_000).collect();
        assert_eq!(times, vec![1, 2, 3, 4, 5]);

        let removed = prune_ring(&dir, 2).unwrap();
        assert_eq!(removed.len(), 3);
        let left: Vec<u64> = ring_entries(&dir)
            .unwrap()
            .iter()
            .map(|(t, _)| t.as_ps() / 1_000_000_000)
            .collect();
        assert_eq!(left, vec![4, 5], "pruning must keep the newest entries");

        // keep == 0 keeps everything.
        assert!(prune_ring(&dir, 0).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_plan_is_pure_and_keeps_newest() {
        let t = |ms: u64| SimTime::from_ms(ms);
        assert!(ring_prune_plan(&[t(1), t(2)], 0).is_empty());
        assert!(ring_prune_plan(&[t(1), t(2)], 2).is_empty());
        assert_eq!(ring_prune_plan(&[t(3), t(1), t(2)], 1), vec![t(1), t(2)]);
        assert_eq!(ring_prune_plan(&[t(3), t(1), t(2)], 2), vec![t(1)]);
        assert!(ring_prune_plan(&[], 3).is_empty());
    }

    #[test]
    fn merge_orders_components_and_rejects_mismatch() {
        let part = |names: &[&str], at: SimTime| CheckpointFile {
            name: "exp".into(),
            at,
            components: names.iter().map(|n| (n.to_string(), vec![n.len() as u8])).collect(),
        };
        let at = SimTime::from_ms(1);
        let order = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let merged =
            CheckpointFile::merge(&[part(&["b"], at), part(&["c", "a"], at)], &order).unwrap();
        let names: Vec<&str> = merged.components.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(merged.at, at);

        // Disagreeing quiesce times.
        let e = CheckpointFile::merge(&[part(&["a"], at), part(&["b"], SimTime::from_ms(2))], &order)
            .unwrap_err();
        assert!(matches!(e, SnapError::Corrupt(_)));
        // Missing component.
        let e = CheckpointFile::merge(&[part(&["a", "b"], at)], &order).unwrap_err();
        assert!(matches!(e, SnapError::Corrupt(_)));
        // Duplicate component.
        let e = CheckpointFile::merge(&[part(&["a"], at), part(&["a", "b", "c"], at)], &order)
            .unwrap_err();
        assert!(matches!(e, SnapError::Corrupt(_)));
        // Component not in the build order.
        let e = CheckpointFile::merge(&[part(&["a", "b", "c", "d"], at)], &order).unwrap_err();
        assert!(matches!(e, SnapError::Corrupt(_)));
    }
}

// Enable with `cargo add --dev proptest@1 -p simbricks-runner` and
// `--features simbricks-runner/proptest` (the dependency is not vendored in
// offline build environments; CI adds it on the fly).
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Ring pruning keeps exactly the newest `keep` checkpoint times for
        /// any schedule (arbitrary order, duplicates collapsed), and keeps
        /// everything when `keep == 0`.
        #[test]
        fn prune_plan_keeps_newest(times_ps in proptest::collection::btree_set(0u64..1_000_000, 0..64),
                                   keep in 0usize..16) {
            let times: Vec<SimTime> = times_ps.iter().map(|&t| SimTime::from_ps(t)).collect();
            let doomed = ring_prune_plan(&times, keep);
            let mut survivors: Vec<SimTime> =
                times.iter().copied().filter(|t| !doomed.contains(t)).collect();
            survivors.sort();
            if keep == 0 {
                prop_assert!(doomed.is_empty());
            } else {
                prop_assert_eq!(survivors.len(), times.len().min(keep));
                // Survivors are exactly the newest `keep` times.
                let mut sorted = times.clone();
                sorted.sort();
                let newest: Vec<SimTime> =
                    sorted[sorted.len().saturating_sub(keep)..].to_vec();
                prop_assert_eq!(survivors, newest);
            }
        }
    }
}
