//! Sharded work-stealing executor: many kernels over a fixed worker pool.
//!
//! The seed offered an all-or-nothing choice:
//! [`Execution::Sequential`](crate::Execution::Sequential) (every component
//! cooperatively stepped on one core) or
//! [`Execution::Threads`](crate::Execution::Threads) (one OS thread per
//! component, the paper's one-process-per-simulator architecture). Neither matches the common case
//! of N components ≫ N cores, where thread-per-component oversubscribes the
//! machine and sequential leaves cores idle. This module schedules all
//! kernels of an experiment over a fixed pool of workers (§5.5 scalability
//! claim at local scale):
//!
//! * **Sharding.** Components are split into contiguous shards, one per
//!   worker. Each worker sweeps its own shard first, which keeps a kernel on
//!   the same core across polls (warm caches for its event queue and ports).
//! * **Work stealing.** A worker whose shard yields no progress sweeps the
//!   other shards. Every component is guarded by its own [`Mutex`];
//!   `try_lock` makes stealing race-free without a global scheduler lock,
//!   and a failed `try_lock` just means another worker is already stepping
//!   that kernel.
//! * **Parking.** A kernel whose [`Kernel::step`] returns
//!   [`StepOutcome::Blocked`] with a parkable
//!   [`WakeHint`](simbricks_base::WakeHint) is skipped until
//!   [`Kernel::has_new_input`] sees a fresh message on one of its SPSC
//!   queues — a cheap peek at one queue slot per port, instead of a full
//!   poll/bound recomputation. The SimBricks synchronization protocol
//!   guarantees this is lossless: a blocked synchronized kernel can only be
//!   unblocked by a new message (promise) from a peer.
//!
//! Cross-shard communication needs no extra machinery: components already
//! exchange messages through the lock-free SPSC channel pairs created at
//! wiring time, which work identically within and across shards.
//!
//! Determinism: the executor only changes *when* (in wall-clock time) each
//! kernel polls; the §5.5 protocol fixes *what* every kernel observes at
//! every virtual time. Sequential, threaded, and sharded runs therefore
//! produce bit-identical event logs (asserted by
//! `tests/integration_determinism.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use simbricks_base::{Kernel, Model, StepOutcome};

/// Tuning knobs for the sharded executor.
#[derive(Clone, Copy, Debug)]
pub struct ShardedOptions {
    /// Number of worker threads. Clamped to the component count at run time.
    pub workers: usize,
    /// `max_steps` passed to each [`Kernel::step`] call: how many clock
    /// advances a kernel may make before the worker moves on. Larger values
    /// amortize scheduling overhead, smaller values interleave more fairly.
    pub batch: usize,
    /// Some channels are fed by another OS process (distributed partition,
    /// §5.4): "everything blocked" is then a normal transient state — a
    /// remote promise can arrive at any wall-clock moment — so the deadlock
    /// detector is disabled.
    pub external_inputs: bool,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            workers: default_workers(),
            batch: 512,
            external_inputs: false,
        }
    }
}

/// Worker count used when none is configured: `SIMBRICKS_WORKERS` if set,
/// otherwise the machine's available parallelism.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("SIMBRICKS_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One schedulable component: its kernel plus its model, mutably borrowed
/// from the experiment for the duration of the run.
pub(crate) struct Unit<'a> {
    pub name: &'a str,
    pub kernel: &'a mut Kernel,
    pub model: &'a mut dyn Model,
}

/// Mutable per-component scheduling state, guarded by the slot mutex.
struct UnitState<'a> {
    unit: Unit<'a>,
    /// Blocked with a parkable hint: skip until new input (or a force pass).
    parked: bool,
    done: bool,
}

struct Slot<'a> {
    state: Mutex<UnitState<'a>>,
    /// Lock-free mirror of `done` so sweeps skip finished slots without
    /// touching the mutex.
    finished: AtomicBool,
}

/// How many consecutive no-progress sweeps a worker tolerates before it
/// force-steps parked kernels too (safety valve against a missed wakeup).
const FORCE_AFTER_IDLE: u32 = 64;

/// Wall-clock time without global progress after which a synchronized run is
/// declared deadlocked.
const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(10);

/// Run every unit to completion on `opts.workers` worker threads.
///
/// `stop` is the experiment's shared stop flag: in unsynchronized (emulation)
/// runs the first component to finish raises it so free-running peers
/// terminate; the executor also uses it to force-wake parked kernels.
pub(crate) fn run_sharded(
    units: Vec<Unit<'_>>,
    opts: ShardedOptions,
    stop: &AtomicBool,
    synchronized: bool,
) {
    let n = units.len();
    if n == 0 {
        return;
    }
    let workers = opts.workers.max(1).min(n);
    let slots: Vec<Slot> = units
        .into_iter()
        .map(|unit| Slot {
            state: Mutex::new(UnitState {
                unit,
                parked: false,
                done: false,
            }),
            finished: AtomicBool::new(false),
        })
        .collect();
    let finished = AtomicUsize::new(0);
    // Monotone counter bumped on every productive sweep; workers use it to
    // notice global progress (and its absence, for deadlock detection).
    let progress = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let finished = &finished;
            let progress = &progress;
            scope.spawn(move || {
                worker_loop(
                    w,
                    workers,
                    slots,
                    finished,
                    progress,
                    opts.batch,
                    stop,
                    synchronized,
                    opts.external_inputs,
                );
            });
        }
    });
}

/// Step one component if it is runnable. Returns true when the step made
/// progress (advanced or finished), false when the slot was skipped, already
/// locked by another worker, or blocked.
#[allow(clippy::too_many_arguments)]
fn try_step(
    slot: &Slot<'_>,
    batch: usize,
    force: bool,
    finished: &AtomicUsize,
    stop: &AtomicBool,
    synchronized: bool,
) -> bool {
    if slot.finished.load(Ordering::Relaxed) {
        return false;
    }
    let Ok(mut st) = slot.state.try_lock() else {
        return false;
    };
    if st.done {
        return false;
    }
    if st.parked && !force && !st.unit.kernel.has_new_input() {
        return false;
    }
    let UnitState {
        ref mut unit,
        ref mut parked,
        ref mut done,
    } = *st;
    let outcome = unit.kernel.step(unit.model, batch);
    match outcome {
        StepOutcome::Finished => {
            *done = true;
            *parked = false;
            slot.finished.store(true, Ordering::Relaxed);
            finished.fetch_add(1, Ordering::Relaxed);
            if !synchronized {
                // Emulation mode: the first component to finish (the workload
                // driver) ends the run for everyone.
                stop.store(true, Ordering::Relaxed);
            }
            true
        }
        StepOutcome::Progressed => {
            *parked = false;
            true
        }
        StepOutcome::Blocked(hint) => {
            *parked = hint.parkable;
            false
        }
        // Checkpoint pauses are orchestrated by the experiment's cooperative
        // quiesce loop before the sharded phase starts; a kernel reporting
        // Paused here is simply not runnable yet.
        StepOutcome::Paused => {
            *parked = false;
            false
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    workers: usize,
    slots: &[Slot<'_>],
    finished: &AtomicUsize,
    progress: &AtomicU64,
    batch: usize,
    stop: &AtomicBool,
    synchronized: bool,
    external_inputs: bool,
) {
    let n = slots.len();
    // Contiguous shard [lo, hi) owned by this worker (affinity, not
    // exclusivity — any worker may step any component).
    let lo = w * n / workers;
    let hi = (w + 1) * n / workers;
    let mut idle_sweeps: u32 = 0;
    let mut last_progress = progress.load(Ordering::Relaxed);
    let mut stalled_since: Option<Instant> = None;

    while finished.load(Ordering::Relaxed) < n {
        let force = stop.load(Ordering::Relaxed) || idle_sweeps >= FORCE_AFTER_IDLE;
        let mut progressed = false;
        // Own shard first: keeps each kernel on one core in the steady state.
        for slot in &slots[lo..hi] {
            if try_step(slot, batch, force, finished, stop, synchronized) {
                progressed = true;
            }
        }
        if !progressed {
            // Work stealing: help whoever still has runnable kernels.
            for slot in slots[hi..].iter().chain(&slots[..lo]) {
                if try_step(slot, batch, force, finished, stop, synchronized) {
                    progressed = true;
                }
            }
        }

        if progressed {
            progress.fetch_add(1, Ordering::Relaxed);
            idle_sweeps = 0;
            stalled_since = None;
            continue;
        }
        idle_sweeps = idle_sweeps.saturating_add(1);
        let seen = progress.load(Ordering::Relaxed);
        if seen != last_progress {
            last_progress = seen;
            stalled_since = None;
        } else if synchronized && !external_inputs && force {
            // No one anywhere is progressing, even with parked kernels
            // force-stepped. Give peers real wall-clock time before calling
            // it a deadlock (another worker may hold locks mid-step); a
            // distributed partition skips this entirely, since a remote
            // promise can legitimately take arbitrarily long.
            let since = *stalled_since.get_or_insert_with(Instant::now);
            if since.elapsed() > DEADLOCK_TIMEOUT {
                panic!(
                    "deadlock in sharded execution: {} of {} components blocked: {}",
                    n - finished.load(Ordering::Relaxed),
                    n,
                    describe_blocked(slots)
                );
            }
        }
        if synchronized {
            std::thread::yield_now();
        } else {
            // Emulation mode: components wait for the wall clock; wait with
            // them instead of burning the core.
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// Best-effort state dump for the deadlock panic (skips slots another worker
/// holds locked). Re-steps each blocked kernel once to report what it is
/// waiting for (the [`WakeHint`](simbricks_base::WakeHint) next-event time).
fn describe_blocked(slots: &[Slot<'_>]) -> String {
    let mut out = Vec::new();
    for slot in slots {
        if slot.finished.load(Ordering::Relaxed) {
            continue;
        }
        if let Ok(mut st) = slot.state.try_lock() {
            let UnitState { ref mut unit, .. } = *st;
            let waiting = match unit.kernel.step(unit.model, 1) {
                StepOutcome::Blocked(hint) => format!(" next_event={}", hint.next_event),
                _ => String::new(),
            };
            out.push(format!("{}@{}{}", unit.name, unit.kernel.now(), waiting));
        }
    }
    out.join(", ")
}
