//! Scale-out proxies (§5.4 of the paper).
//!
//! A proxy pair transparently replaces a shared-memory channel with a network
//! connection: each side connects to its local component through an ordinary
//! channel endpoint and forwards every message (data and SYNC) to its peer
//! proxy, which re-injects it locally. Components cannot tell the difference;
//! only one extra hop of forwarding latency (hidden inside the modelled link
//! latency) and one proxy thread per side are added.
//!
//! The paper implements two proxy flavours, and so does this reimplementation:
//!
//! * **Sockets** ([`proxy_channel_over_tcp`], [`ProxyKind::Tcp`]) — messages
//!   are serialized to the wire format and streamed over a TCP connection
//!   (Nagle disabled), with adaptive batching: every message available in the
//!   local queue is forwarded in one write.
//! * **RDMA-style** ([`ProxyKind::Rdma`]) — the paper's RDMA proxy writes
//!   messages directly into the remote queue. Without RDMA hardware we model
//!   this as direct placement into the peer component's queue with no
//!   serialization step, preserving the property that matters: lower
//!   per-message CPU overhead and latency than the sockets proxy.
//!
//! Both flavours report [`ProxyStats`] so harnesses can show batching
//! behaviour and forwarded volume (§7.4.2).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use simbricks_base::{channel_pair, ChannelEnd, ChannelParams, OwnedMsg};

/// Which transport a proxy pair uses between the two simulation "hosts".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyKind {
    /// Serialize messages and stream them over a loopback/real TCP socket.
    Tcp,
    /// Directly place messages into the remote queue (RDMA-write stand-in).
    Rdma,
}

/// Counters shared by the two forwarding threads of a proxy pair.
#[derive(Debug, Default)]
struct ProxyCounters {
    forwarded: AtomicU64,
    bytes: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
}

/// A snapshot of the work a proxy pair performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Messages forwarded (both directions, data and SYNC).
    pub forwarded: u64,
    /// Wire bytes forwarded (0 for the RDMA-style proxy: no serialization).
    pub bytes: u64,
    /// Number of forwarding batches (writes / placement rounds).
    pub batches: u64,
    /// Largest number of messages coalesced into one batch.
    pub max_batch: u64,
}

impl ProxyStats {
    /// Mean messages per forwarding batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.forwarded as f64 / self.batches as f64
        }
    }
}

/// Handle to a running proxy pair: the forwarding threads plus their shared
/// statistics. Dropping the handle detaches the threads; they exit on their
/// own once both component endpoints are gone.
pub struct ProxyHandle {
    kind: ProxyKind,
    counters: Arc<ProxyCounters>,
    pub threads: Vec<JoinHandle<()>>,
}

impl ProxyHandle {
    pub fn kind(&self) -> ProxyKind {
        self.kind
    }

    /// A point-in-time snapshot of the forwarding counters.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            forwarded: self.counters.forwarded.load(Ordering::Relaxed),
            bytes: self.counters.bytes.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            max_batch: self.counters.max_batch.load(Ordering::Relaxed),
        }
    }

    /// Wait for the forwarding threads to exit (after both components closed
    /// their endpoints).
    pub fn join(self) -> ProxyStats {
        let stats = self.stats();
        for t in self.threads {
            let _ = t.join();
        }
        stats
    }
}

impl ProxyCounters {
    fn record_batch(&self, msgs: u64, bytes: u64) {
        if msgs == 0 {
            return;
        }
        self.forwarded.fetch_add(msgs, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(msgs, Ordering::Relaxed);
    }
}

/// Bridge a channel with a proxy pair of the requested kind. Returns the two
/// channel endpoints the components use plus the [`ProxyHandle`]. The
/// endpoints behave exactly like a directly connected [`channel_pair`]; every
/// message crosses the proxy pair, as in distributed SimBricks simulations.
pub fn proxy_pair(
    kind: ProxyKind,
    params: ChannelParams,
) -> std::io::Result<(ChannelEnd, ChannelEnd, ProxyHandle)> {
    match kind {
        ProxyKind::Tcp => proxy_pair_tcp(params),
        ProxyKind::Rdma => Ok(proxy_pair_rdma(params)),
    }
}

/// Bridge a channel over TCP (sockets proxy). Compatibility wrapper around
/// [`proxy_pair`] returning raw join handles.
pub fn proxy_channel_over_tcp(
    params: ChannelParams,
) -> std::io::Result<(ChannelEnd, ChannelEnd, Vec<JoinHandle<()>>)> {
    let (a, b, handle) = proxy_pair_tcp(params)?;
    Ok((a, b, handle.threads))
}

fn proxy_pair_tcp(
    params: ChannelParams,
) -> std::io::Result<(ChannelEnd, ChannelEnd, ProxyHandle)> {
    // Local channel stubs: component A <-> proxy A, component B <-> proxy B.
    let (for_component_a, proxy_a_local) = channel_pair(params);
    let (for_component_b, proxy_b_local) = channel_pair(params);

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let connect = TcpStream::connect(addr)?;
    let (accepted, _) = listener.accept()?;
    connect.set_nodelay(true)?;
    accepted.set_nodelay(true)?;

    let counters = Arc::new(ProxyCounters::default());
    let h1 = spawn_tcp_proxy("proxy-a", proxy_a_local, connect, counters.clone());
    let h2 = spawn_tcp_proxy("proxy-b", proxy_b_local, accepted, counters.clone());
    Ok((
        for_component_a,
        for_component_b,
        ProxyHandle {
            kind: ProxyKind::Tcp,
            counters,
            threads: vec![h1, h2],
        },
    ))
}

fn spawn_tcp_proxy(
    name: &'static str,
    mut local: ChannelEnd,
    stream: TcpStream,
    counters: Arc<ProxyCounters>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            // Non-blocking reads: the forwarding loop must never stall the
            // local->remote direction while waiting for remote bytes, or the
            // peer simulator blocks on missing SYNC messages.
            stream.set_nonblocking(true).ok();
            let mut tx = stream.try_clone().expect("clone proxy stream");
            let mut rx = stream;
            let mut rx_buf: Vec<u8> = Vec::new();
            let mut tmp = [0u8; 16384];
            loop {
                let mut idle = true;
                // Local -> remote: forward everything queued on the local
                // channel (adaptive batching: drain the whole queue at once).
                let mut batch = Vec::new();
                let mut batch_msgs = 0u64;
                while let Some(msg) = local.recv_raw() {
                    batch.extend_from_slice(&msg.to_wire());
                    batch_msgs += 1;
                }
                if !batch.is_empty() {
                    if tx.write_all(&batch).is_err() {
                        return;
                    }
                    counters.record_batch(batch_msgs, batch.len() as u64);
                    idle = false;
                }
                // Remote -> local.
                match rx.read(&mut tmp) {
                    Ok(0) => return, // peer proxy closed
                    Ok(n) => {
                        rx_buf.extend_from_slice(&tmp[..n]);
                        idle = false;
                    }
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => return,
                }
                let mut consumed = 0;
                while let Some((msg, used)) = OwnedMsg::from_wire(&rx_buf[consumed..]) {
                    // Retry until there is queue space (peer component drains).
                    loop {
                        match local.send_raw(msg.timestamp, msg.ty, &msg.data) {
                            Ok(()) => break,
                            Err(simbricks_base::SendError::Full) => std::thread::yield_now(),
                            Err(_) => return,
                        }
                    }
                    consumed += used;
                }
                if consumed > 0 {
                    rx_buf.drain(..consumed);
                }
                if local.peer_closed() {
                    return;
                }
                if idle {
                    std::thread::yield_now();
                }
            }
        })
        .expect("spawn proxy thread")
}

/// RDMA-style proxy pair: one forwarding thread per direction that places
/// messages straight into the remote component's queue, with no
/// serialization. The extra hop is invisible to the components (identical to
/// the TCP proxy), but per-message overhead is lower — the property the
/// paper's RDMA proxy provides.
fn proxy_pair_rdma(params: ChannelParams) -> (ChannelEnd, ChannelEnd, ProxyHandle) {
    let (for_component_a, proxy_a_local) = channel_pair(params);
    let (for_component_b, proxy_b_local) = channel_pair(params);
    let counters = Arc::new(ProxyCounters::default());
    let h = spawn_rdma_forwarders(proxy_a_local, proxy_b_local, counters.clone());
    (
        for_component_a,
        for_component_b,
        ProxyHandle {
            kind: ProxyKind::Rdma,
            counters,
            threads: vec![h],
        },
    )
}

fn spawn_rdma_forwarders(
    mut a: ChannelEnd,
    mut b: ChannelEnd,
    counters: Arc<ProxyCounters>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("proxy-rdma".into())
        .spawn(move || {
            let mut pending_ab: Option<OwnedMsg> = None;
            let mut pending_ba: Option<OwnedMsg> = None;
            loop {
                let mut idle = true;
                idle &= !forward_direction(&mut a, &mut b, &mut pending_ab, &counters);
                idle &= !forward_direction(&mut b, &mut a, &mut pending_ba, &counters);
                if (a.peer_closed() && pending_ab.is_none())
                    || (b.peer_closed() && pending_ba.is_none())
                {
                    return;
                }
                if idle {
                    std::thread::yield_now();
                }
            }
        })
        .expect("spawn rdma proxy thread")
}

/// Move every available message from `src` to `dst`; returns true if any
/// progress was made. A message that cannot be placed because the destination
/// queue is full is kept in `pending` and retried on the next round, so
/// nothing is ever dropped or reordered.
fn forward_direction(
    src: &mut ChannelEnd,
    dst: &mut ChannelEnd,
    pending: &mut Option<OwnedMsg>,
    counters: &ProxyCounters,
) -> bool {
    let mut moved = 0u64;
    loop {
        let msg = match pending.take() {
            Some(m) => m,
            None => match src.recv_raw() {
                Some(m) => m,
                None => break,
            },
        };
        match dst.send_raw(msg.timestamp, msg.ty, &msg.data) {
            Ok(()) => moved += 1,
            Err(simbricks_base::SendError::Full) => {
                *pending = Some(msg);
                break;
            }
            Err(_) => break,
        }
    }
    counters.record_batch(moved, 0);
    moved > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbricks_base::{SimTime, MSG_SYNC};

    fn exchange_over(kind: ProxyKind) -> (Vec<u64>, bool, ProxyStats) {
        let (mut a, mut b, handle) = proxy_pair(kind, ChannelParams::default_sync()).unwrap();
        for i in 0..50u64 {
            a.send_raw(SimTime::from_ns(i * 10), 5, &i.to_le_bytes())
                .unwrap();
        }
        b.send_raw(SimTime::from_ns(7), MSG_SYNC, &[]).unwrap();

        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while got.len() < 50 && std::time::Instant::now() < deadline {
            while let Some(m) = b.recv_raw() {
                assert_eq!(m.ty, 5);
                got.push(u64::from_le_bytes(m.data.clone().try_into().unwrap()));
            }
            std::thread::yield_now();
        }

        let mut sync_seen = false;
        while std::time::Instant::now() < deadline && !sync_seen {
            while let Some(m) = a.recv_raw() {
                if m.ty == MSG_SYNC {
                    sync_seen = true;
                }
            }
            std::thread::yield_now();
        }
        let stats = handle.stats();
        drop(a);
        drop(b);
        (got, sync_seen, stats)
    }

    #[test]
    fn messages_cross_the_tcp_proxy_in_order_and_both_directions() {
        let (got, sync_seen, stats) = exchange_over(ProxyKind::Tcp);
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "in order, none lost");
        assert!(sync_seen, "reverse direction works too");
        assert_eq!(stats.forwarded, 51, "50 data + 1 sync");
        assert!(stats.bytes > 0, "tcp proxy serializes to wire bytes");
        assert!(stats.batches <= stats.forwarded);
        assert!(stats.mean_batch() >= 1.0);
    }

    #[test]
    fn messages_cross_the_rdma_proxy_in_order_and_both_directions() {
        let (got, sync_seen, stats) = exchange_over(ProxyKind::Rdma);
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "in order, none lost");
        assert!(sync_seen, "reverse direction works too");
        assert_eq!(stats.forwarded, 51);
        assert_eq!(stats.bytes, 0, "rdma-style proxy does not serialize");
    }

    #[test]
    fn legacy_tcp_wrapper_still_works() {
        let (mut a, mut b, _threads) =
            proxy_channel_over_tcp(ChannelParams::default_sync()).unwrap();
        a.send_raw(SimTime::from_ns(1), 9, b"hello").unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut got = None;
        while got.is_none() && std::time::Instant::now() < deadline {
            got = b.recv_raw();
            std::thread::yield_now();
        }
        let msg = got.expect("message crossed the proxy");
        assert_eq!(msg.ty, 9);
        assert_eq!(msg.data, b"hello");
    }

    #[test]
    fn rdma_proxy_survives_destination_backpressure() {
        // Tiny queue on the B side: the forwarder has to keep retrying while
        // the consumer drains slowly; nothing may be lost or reordered.
        let params = ChannelParams::default_sync().with_queue_len(4);
        let (mut a, mut b, handle) = proxy_pair(ProxyKind::Rdma, params).unwrap();
        let total = 200u64;
        let producer = std::thread::spawn(move || {
            for i in 0..total {
                loop {
                    match a.send_raw(SimTime::from_ns(i), 7, &i.to_le_bytes()) {
                        Ok(()) => break,
                        Err(simbricks_base::SendError::Full) => std::thread::yield_now(),
                        Err(e) => panic!("send failed: {e:?}"),
                    }
                }
            }
            a
        });
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while got.len() < total as usize && std::time::Instant::now() < deadline {
            while let Some(m) = b.recv_raw() {
                got.push(u64::from_le_bytes(m.data.clone().try_into().unwrap()));
            }
            std::thread::yield_now();
        }
        assert_eq!(got, (0..total).collect::<Vec<_>>());
        let _a = producer.join().unwrap();
        assert_eq!(handle.stats().forwarded, total);
    }

    #[test]
    fn proxy_stats_mean_batch_math() {
        let s = ProxyStats {
            forwarded: 10,
            bytes: 100,
            batches: 4,
            max_batch: 5,
        };
        assert!((s.mean_batch() - 2.5).abs() < 1e-9);
        assert_eq!(ProxyStats::default().mean_batch(), 0.0);
    }
}
